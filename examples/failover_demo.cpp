// Failover demo — the paper's headline scenario (Figure 1): the server
// transmitting a movie is killed mid-stream and a replica takes over
// transparently; the client's display never freezes and it never learns
// that the provider changed.
#include <iostream>

#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

void report(const char* when, const VodClient& client) {
  const BufferCounters& c = client.counters();
  std::cout << when << ": displayed=" << c.displayed
            << " skipped=" << c.skipped << " late=" << c.late
            << " freezes=" << c.starvation_ticks << " occupancy="
            << static_cast<int>(client.occupancy_fraction() * 100) << "%\n";
}

}  // namespace

int main() {
  std::cout << "ftvod failover demo: movie replicated on two servers; the\n"
            << "transmitting one is killed at t=25 s.\n\n";

  Deployment dep(/*seed=*/7);
  const net::NodeId s0 = dep.add_host("server-0");
  const net::NodeId s1 = dep.add_host("server-1");
  const net::NodeId c0 = dep.add_host("client");

  auto movie = mpeg::Movie::synthetic("casablanca", 180.0);
  dep.start_server(s0).server->add_movie(movie);  // replica 1
  dep.start_server(s1).server->add_movie(movie);  // replica 2
  auto& client_node = dep.start_client(c0);
  dep.run_for(sim::sec(2.0));

  VodClient& client = *client_node.client;
  client.watch("casablanca");
  dep.run_for(sim::sec(25.0));
  report("before crash ", client);

  // Kill whichever server is transmitting. (Silent fail-stop: the heartbeat
  // failure detector must notice.)
  for (auto& sn : dep.servers()) {
    if (sn->server->serves(client.client_id())) {
      std::cout << "\n*** crashing " << dep.network().host_name(sn->node)
                << " (currently transmitting) ***\n\n";
      dep.crash(sn->node);
      break;
    }
  }

  dep.run_for(sim::sec(2.0));
  report("+2 s         ", client);
  dep.run_for(sim::sec(10.0));
  report("+12 s        ", client);

  // Who serves now?
  for (auto& sn : dep.servers()) {
    if (sn->server->serves(client.client_id())) {
      std::cout << "\nclient is now served by "
                << dep.network().host_name(sn->node) << " (takeovers="
                << sn->server->stats().takeovers << ")\n";
    }
  }
  std::cout << "session-group membership changes the client observed: "
            << client.control_stats().session_views
            << " (but it never saw a server identity)\n";

  const BufferCounters& c = client.counters();
  std::cout << "\nverdict: " << (c.starvation_ticks == 0
                                     ? "the display never froze — the crash "
                                       "was invisible to a human observer"
                                     : "the display froze briefly")
            << "\n(duplicate frames from the conservative takeover offset: "
            << c.late << ")\n";
  return 0;
}
