// VCR demo (§3): "The clients have full VCR like control over the
// transmitted material, e.g., pause, restart, and arbitrary random access,
// in accordance with the ATM Forum VoD specs" — plus §4.3's quality
// adjustment for capability-limited clients.
#include <iostream>

#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

void status(const char* what, const VodClient& client) {
  std::cout << what << ": position=frame "
            << (client.buffers() ? client.buffers()->last_displayed() : -1)
            << " displayed=" << client.counters().displayed << " received="
            << client.counters().received << '\n';
}

}  // namespace

int main() {
  std::cout << "ftvod VCR demo: pause / resume / seek / quality control\n\n";

  Deployment dep(/*seed=*/5);
  const net::NodeId s0 = dep.add_host("server");
  const net::NodeId c0 = dep.add_host("client");
  auto movie = mpeg::Movie::synthetic("timecop", 600.0);
  dep.start_server(s0).server->add_movie(movie);
  auto& client_node = dep.start_client(c0);
  dep.run_for(sim::sec(2.0));

  VodClient& client = *client_node.client;
  client.watch("timecop");
  dep.run_for(sim::sec(10.0));
  status("10 s of playback    ", client);

  client.pause();
  dep.run_for(sim::sec(5.0));
  status("paused for 5 s      ", client);

  client.resume();
  dep.run_for(sim::sec(5.0));
  status("resumed, +5 s       ", client);

  // Arbitrary random access: jump to minute 5. The buffers flush; the
  // refill is an "emergency situation" handled by the burst mechanism.
  client.seek(9000);
  dep.run_for(sim::sec(5.0));
  status("seek to frame 9000  ", client);

  client.seek(0);
  dep.run_for(sim::sec(5.0));
  status("seek back to start  ", client);

  // A slow link? Ask for 10 fps: the server keeps every I frame and drops
  // incremental frames ("adjusting the quality to client capabilities").
  const auto received_before = client.counters().received;
  client.set_quality(10.0);
  dep.run_for(sim::sec(10.0));
  status("10 fps quality, +10s", client);
  std::cout << "  reception rate dropped to ~"
            << (client.counters().received - received_before) / 10
            << " fps (full quality would be 30)\n";

  client.set_quality(0.0);  // back to full quality
  dep.run_for(sim::sec(5.0));
  status("full quality, +5 s  ", client);

  client.stop();
  dep.run_for(sim::sec(1.0));
  std::cout << "\nstopped; server sessions now: "
            << dep.servers()[0]->server->session_count() << '\n';
  return 0;
}
