// WAN demo (§6.2): the paper also ran the service between the Hebrew
// University and Tel Aviv University — seven Internet hops, UDP, no QoS
// reservation. Loss degrades the displayed quality gracefully (skipped
// frames), jitter is absorbed by the software re-ordering buffer, and
// failover still works across the wide area.
#include <iostream>

#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

int main() {
  std::cout << "ftvod WAN demo: 7-hop path, ~1% loss, ~12 ms jitter, no QoS "
               "reservation.\n\n";

  Deployment dep(/*seed=*/3, net::wan_quality(/*loss=*/0.01));
  const net::NodeId s0 = dep.add_host("server-huji-0");
  const net::NodeId s1 = dep.add_host("server-huji-1");
  const net::NodeId c0 = dep.add_host("client-tau");

  auto movie = mpeg::Movie::synthetic("sallah-shabati", 180.0);
  dep.start_server(s0).server->add_movie(movie);
  dep.start_server(s1).server->add_movie(movie);
  auto& client_node = dep.start_client(c0);
  dep.run_for(sim::sec(3.0));

  VodClient& client = *client_node.client;
  client.watch("sallah-shabati");
  dep.run_for(sim::sec(30.0));

  const BufferCounters mid = client.counters();  // copy: we diff later
  std::cout << "after 30 s of WAN playback:\n"
            << "  displayed " << mid.displayed << ", skipped " << mid.skipped
            << " (network loss -> missing frames in the stream)\n"
            << "  late/re-ordered " << mid.late << ", display freezes "
            << mid.starvation_ticks << '\n';

  std::cout << "\n*** crashing the transmitting server (failover across "
               "the WAN) ***\n";
  for (auto& sn : dep.servers()) {
    if (sn->server->serves(client.client_id())) {
      dep.crash(sn->node);
      break;
    }
  }
  dep.run_for(sim::sec(15.0));

  const BufferCounters& end = client.counters();
  std::cout << "\nafter failover:\n"
            << "  displayed " << end.displayed << " (+"
            << end.displayed - mid.displayed << ")\n"
            << "  skipped " << end.skipped << ", late " << end.late
            << ", freezes " << end.starvation_ticks << '\n';
  const double skip_pct =
      100.0 * static_cast<double>(end.skipped) /
      static_cast<double>(end.displayed + end.skipped);
  std::cout << "  overall skipped-frame rate: " << skip_pct
            << "% — \"the quality of displayed video is inferior to the "
               "quality observed on a LAN\", but the service survives\n";
  return 0;
}
