// Load-balancing demo (§5.2): a single server carries several clients; a
// new server is brought up on the fly and the movie group deterministically
// re-distributes the clients, migrating some sessions to the newcomer
// without the clients noticing.
#include <iostream>

#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

int main() {
  constexpr int kClients = 4;
  std::cout << "ftvod load-balance demo: " << kClients
            << " clients on one server; a second server is brought up on "
               "the fly at t=20 s.\n\n";

  Deployment dep(/*seed=*/21);
  const net::NodeId s0 = dep.add_host("server-0");
  const net::NodeId s1 = dep.add_host("server-1");  // started later
  std::vector<net::NodeId> client_hosts;
  for (int i = 0; i < kClients; ++i) {
    client_hosts.push_back(dep.add_host("client-" + std::to_string(i)));
  }

  auto movie = mpeg::Movie::synthetic("metropolis", 180.0);
  auto& first = dep.start_server(s0);
  first.server->add_movie(movie);
  for (net::NodeId h : client_hosts) dep.start_client(h);
  dep.run_for(sim::sec(2.0));
  for (auto& cn : dep.clients()) cn->client->watch("metropolis");
  dep.run_for(sim::sec(20.0));

  std::cout << "before: server-0 carries " << first.server->session_count()
            << " sessions\n";

  std::cout << "\n*** starting server-1 (it joins the movie group; the "
               "group re-distributes) ***\n\n";
  auto& second = dep.start_server(s1);
  second.server->add_movie(movie);
  dep.run_for(sim::sec(10.0));

  std::cout << "after:  server-0 carries " << first.server->session_count()
            << " sessions, server-1 carries "
            << second.server->session_count() << " (takeovers="
            << second.server->stats().takeovers << ", migrations out of "
            << "server-0=" << first.server->stats().migrations_out << ")\n\n";

  for (auto& cn : dep.clients()) {
    const BufferCounters& c = cn->client->counters();
    std::cout << dep.network().host_name(cn->node) << ": displayed="
              << c.displayed << " skipped=" << c.skipped
              << " late(dups)=" << c.late << " freezes="
              << c.starvation_ticks << '\n';
  }
  std::cout << "\nmigrated clients saw a short burst of duplicate frames\n"
               "(the new server resumes from the last synchronized offset)\n"
               "but no display freeze.\n";
  return 0;
}
