// Quickstart: the smallest complete deployment — one VoD server, one
// client, one movie. Shows the public API end to end: building a simulated
// network, starting GCS daemons, offering a movie, watching it, and reading
// the playback statistics.
#include <iostream>

#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

int main() {
  std::cout << "ftvod quickstart: one server, one client, one movie\n\n";

  // A Deployment bundles the discrete-event scheduler, the simulated
  // network and the GCS configuration. Register every host first so the
  // GCS peer list covers them all.
  Deployment dep(/*seed=*/1);
  const net::NodeId server_host = dep.add_host("server");
  const net::NodeId client_host = dep.add_host("client");

  // A synthetic MPEG movie: 2 minutes, 30 fps, 1.4 Mbps, GOP IBBPBBPBBPBB.
  auto movie = mpeg::Movie::synthetic("big-lebowski", /*duration_s=*/120.0);

  // Bring up the server and give it the movie (it joins the movie group).
  auto& server_node = dep.start_server(server_host);
  server_node.server->add_movie(movie);

  // Bring up the client and let the control plane converge.
  auto& client_node = dep.start_client(client_host);
  dep.run_for(sim::sec(2.0));

  // The client asks the *anonymous server group* for the movie: it never
  // learns which server answers.
  client_node.client->watch("big-lebowski");

  // Watch for 30 (simulated) seconds.
  dep.run_for(sim::sec(30.0));

  const VodClient& client = *client_node.client;
  const BufferCounters& c = client.counters();
  std::cout << "connected:        " << (client.connected() ? "yes" : "no")
            << '\n'
            << "frames received:  " << c.received << '\n'
            << "frames displayed: " << c.displayed << '\n'
            << "frames skipped:   " << c.skipped << " (startup refill only)\n"
            << "late frames:      " << c.late << '\n'
            << "display freezes:  " << c.starvation_ticks << '\n'
            << "buffer occupancy: "
            << static_cast<int>(client.occupancy_fraction() * 100) << "% of "
            << client.buffers()->total_capacity_frames() << " frames\n"
            << "server sessions:  " << server_node.server->session_count()
            << '\n';

  std::cout << "\nDone. See examples/failover_demo.cpp for the fault "
               "tolerance story.\n";
  return 0;
}
