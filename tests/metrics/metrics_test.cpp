#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "metrics/recorder.hpp"
#include "metrics/report.hpp"

namespace ftvod::metrics {
namespace {

TEST(TimeSeries, AppendAndLast) {
  TimeSeries s("x");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.last(), 0.0);
  s.append(100, 1.5);
  s.append(200, 2.5);
  EXPECT_EQ(s.samples().size(), 2u);
  EXPECT_EQ(s.last(), 2.5);
}

TEST(TimeSeries, WindowIsHalfOpen) {
  TimeSeries s("x");
  for (int i = 0; i < 10; ++i) s.append(i * 100, i);
  const auto w = s.window(200, 500);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.front().value, 2.0);
  EXPECT_EQ(w.back().value, 4.0);
}

TEST(TimeSeries, SummaryStatistics) {
  TimeSeries s("x");
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 7.0, 9.0}) {
    s.append(0, v);
  }
  const Summary sum = s.summary();
  EXPECT_EQ(sum.count, 7u);
  EXPECT_DOUBLE_EQ(sum.min, 2.0);
  EXPECT_DOUBLE_EQ(sum.max, 9.0);
  EXPECT_DOUBLE_EQ(sum.mean, 5.0);
  EXPECT_NEAR(sum.stddev, std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_DOUBLE_EQ(sum.p50, 4.0);  // odd count: unambiguous median
}

TEST(TimeSeries, EmptySummary) {
  TimeSeries s("x");
  const Summary sum = s.summary();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.mean, 0.0);
}

TEST(Recorder, CountersAccumulate) {
  Recorder r;
  EXPECT_EQ(r.counter("a"), 0u);
  r.count("a");
  r.count("a", 4);
  r.count("b");
  EXPECT_EQ(r.counter("a"), 5u);
  EXPECT_EQ(r.counter("b"), 1u);
}

TEST(Recorder, SeriesCreatedOnFirstUse) {
  Recorder r;
  EXPECT_EQ(r.series("x"), nullptr);
  r.sample("x", 10, 1.0);
  ASSERT_NE(r.series("x"), nullptr);
  EXPECT_EQ(r.series("x")->samples().size(), 1u);
  r.clear();
  EXPECT_EQ(r.series("x"), nullptr);
}

TEST(Table, AlignsAndPads) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  t.add_row({"only-one-cell"});  // missing cells padded
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Csv, EmitsHeaderAndRows) {
  TimeSeries s("skipped");
  s.append(sim::sec(1.0), 3);
  s.append(sim::sec(2.5), 7);
  std::ostringstream os;
  print_csv(os, s);
  EXPECT_EQ(os.str(), "t_seconds,skipped\n1,3\n2.5,7\n");
}

TEST(AsciiChart, HandlesEmptyAndConstantSeries) {
  std::ostringstream os;
  TimeSeries empty("nothing");
  print_ascii_chart(os, empty);
  EXPECT_NE(os.str().find("(no samples)"), std::string::npos);

  TimeSeries flat("flat");
  for (int i = 0; i < 5; ++i) flat.append(sim::sec(i), 42.0);
  std::ostringstream os2;
  print_ascii_chart(os2, flat, 40, 8);
  EXPECT_FALSE(os2.str().empty());  // must not divide by zero
}

TEST(AsciiChart, RendersRisingSeries) {
  TimeSeries s("ramp");
  for (int i = 0; i <= 50; ++i) s.append(sim::sec(i), i);
  std::ostringstream os;
  print_ascii_chart(os, s, 50, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("--- ramp ---"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

}  // namespace
}  // namespace ftvod::metrics
