#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftvod::sim {
namespace {

TEST(OneShotTimer, FiresOnce) {
  Scheduler s;
  OneShotTimer t(s);
  int fired = 0;
  t.arm(100, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(OneShotTimer, RearmReplacesDeadline) {
  Scheduler s;
  OneShotTimer t(s);
  Time fired_at = -1;
  t.arm(100, [&] { fired_at = s.now(); });
  t.arm(500, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_EQ(fired_at, 500);
}

TEST(OneShotTimer, CancelStops) {
  Scheduler s;
  OneShotTimer t(s);
  bool fired = false;
  t.arm(100, [&] { fired = true; });
  t.cancel();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(OneShotTimer, DestructionCancels) {
  Scheduler s;
  bool fired = false;
  {
    OneShotTimer t(s);
    t.arm(100, [&] { fired = true; });
  }
  s.run();
  EXPECT_FALSE(fired);
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(450);
  EXPECT_EQ(fires, (std::vector<Time>{100, 200, 300, 400}));
}

TEST(PeriodicTimer, InitialDelayOverride) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  t.start(10);
  s.run_until(250);
  EXPECT_EQ(fires, (std::vector<Time>{10, 110, 210}));
}

TEST(PeriodicTimer, StopFromCallback) {
  Scheduler s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] {
    if (++count == 3) t.stop();
  });
  t.start();
  s.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, SetPeriodTakesEffectNextTick) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] {
    fires.push_back(s.now());
    t.set_period(50);
  });
  t.start();
  s.run_until(300);
  // First fire at 100 (old period); later fires every 50.
  EXPECT_EQ(fires, (std::vector<Time>{100, 200, 250, 300}));
}

TEST(PeriodicTimer, RestartAfterStop) {
  Scheduler s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] { ++count; });
  t.start();
  s.run_until(35);
  EXPECT_EQ(count, 3);
  t.stop();
  s.run_until(100);
  EXPECT_EQ(count, 3);
  t.start();
  s.run_until(125);
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTimer, DestructionCancels) {
  Scheduler s;
  int count = 0;
  {
    PeriodicTimer t(s, 10, [&] { ++count; });
    t.start();
    s.run_until(25);
  }
  s.run_until(100);
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace ftvod::sim
