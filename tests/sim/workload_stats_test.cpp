// Statistical acceptance of the Poisson session workload: inter-arrival
// gaps must be exponential at the configured rate (chi-squared over
// equal-probability quantile bins), the trajectory must be bit-identical
// per seed, and the driver must stay a pure function of (seed, config) —
// independent of whatever else draws from the simulation's own Rng.
//
// The driver records every arrival time even when no pooled client is free
// (the arrival is then counted as rejected), so the arrival *process* can
// be measured without building a single real client.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "mpeg/catalog_gen.hpp"
#include "sim/scheduler.hpp"
#include "vod/service.hpp"
#include "workload/session_workload.hpp"

namespace ftvod::workload {
namespace {

std::vector<sim::Time> arrivals_for(std::uint64_t seed, double rate_per_s,
                                    double sim_seconds,
                                    std::uint64_t sched_noise_seed = 0) {
  sim::Scheduler sched;
  mpeg::CatalogSpec cspec;
  cspec.titles = 50;
  const auto catalog = mpeg::GeneratedCatalog::generate(1, cspec);
  WorkloadConfig cfg;
  cfg.arrival_rate_per_s = rate_per_s;
  cfg.seed = seed;
  SessionWorkload wl(sched, catalog, cfg);
  if (sched_noise_seed != 0) {
    // Unrelated scheduler traffic that must not perturb the trajectory.
    for (int i = 0; i < 500; ++i) {
      sched.at(static_cast<sim::Time>(sched_noise_seed + i) * 1000, [] {});
    }
  }
  wl.start();
  sched.run_until(static_cast<sim::Time>(sim_seconds * 1e6));
  wl.stop();
  EXPECT_EQ(wl.stats().rejected, wl.stats().arrivals);  // empty pool
  return wl.arrival_times();
}

TEST(WorkloadStats, InterArrivalsAreExponential) {
  constexpr double kRate = 20.0;  // sessions per second
  const auto times = arrivals_for(42, kRate, 1000.0);
  ASSERT_GT(times.size(), 15'000u);  // ~20k expected

  std::vector<double> gaps_s;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps_s.push_back(static_cast<double>(times[i] - times[i - 1]) / 1e6);
  }
  // Sample mean within 3% of 1/rate (CLT bound at n~20k is ~1.5%).
  double mean = 0.0;
  for (double g : gaps_s) mean += g;
  mean /= static_cast<double>(gaps_s.size());
  EXPECT_NEAR(mean, 1.0 / kRate, 0.03 / kRate);

  // Chi-squared over 20 equal-probability bins of Exp(rate): bin edges at
  // the distribution's own quantiles, so every bin expects n/20 samples.
  constexpr int kBins = 20;
  std::vector<double> edges;  // upper edges of bins 0..kBins-2
  for (int b = 1; b < kBins; ++b) {
    const double p = static_cast<double>(b) / kBins;
    edges.push_back(-std::log(1.0 - p) / kRate);
  }
  std::vector<std::uint64_t> counts(kBins, 0);
  for (double g : gaps_s) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), g);
    ++counts[static_cast<std::size_t>(it - edges.begin())];
  }
  const double expect =
      static_cast<double>(gaps_s.size()) / static_cast<double>(kBins);
  double chi2 = 0.0;
  for (int b = 0; b < kBins; ++b) {
    const double d = static_cast<double>(counts[b]) - expect;
    chi2 += d * d / expect;
  }
  // df = 19; 99.9th percentile of chi2(19) is ~43.8. Seeded run: this
  // either always passes or the generator's law is actually wrong.
  EXPECT_LT(chi2, 43.8) << "inter-arrival gaps are not Exp(" << kRate << ")";

  // Memorylessness spot check: P(gap > 2/rate) should be e^-2 ~ 13.5%.
  std::size_t long_gaps = 0;
  for (double g : gaps_s) {
    if (g > 2.0 / kRate) ++long_gaps;
  }
  EXPECT_NEAR(static_cast<double>(long_gaps) /
                  static_cast<double>(gaps_s.size()),
              std::exp(-2.0), 0.01);
}

TEST(WorkloadStats, TrajectoryIsBitIdenticalPerSeed) {
  const auto a = arrivals_for(7, 10.0, 200.0);
  const auto b = arrivals_for(7, 10.0, 200.0);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // identical times, to the microsecond
  const auto c = arrivals_for(8, 10.0, 200.0);
  EXPECT_NE(a, c);
}

TEST(WorkloadStats, TrajectoryIgnoresUnrelatedSchedulerTraffic) {
  // The workload owns its Rng: flooding the scheduler with foreign events
  // must not shift a single arrival (this is what lets the macro benchmark
  // compare runs whose network load differs wildly).
  const auto quiet = arrivals_for(7, 10.0, 200.0);
  const auto noisy = arrivals_for(7, 10.0, 200.0, /*sched_noise_seed=*/99);
  EXPECT_EQ(quiet, noisy);
}

TEST(WorkloadStats, FlashCrowdConcentratesActiveSessions) {
  // Real pooled clients this time (no server needed — the demand signal
  // counts watch() intents, not connections): during a 90%-share flash
  // crowd the boosted rank must dominate the active set.
  vod::Deployment dep(5);
  mpeg::CatalogSpec cspec;
  cspec.titles = 10;
  const auto catalog = mpeg::GeneratedCatalog::generate(1, cspec);
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < 16; ++i) {
    hosts.push_back(dep.add_host("c" + std::to_string(i)));
  }
  WorkloadConfig cfg;
  cfg.arrival_rate_per_s = 4.0;
  cfg.mean_hold_s = 60.0;
  SessionWorkload wl(dep.scheduler(), catalog, cfg);
  for (net::NodeId h : hosts) {
    wl.add_client(dep.start_client(h).client.get());
  }
  wl.flash_crowd(3, 0.9, sim::sec(30.0));
  wl.start();
  dep.run_for(sim::sec(8.0));
  ASSERT_GT(wl.active(), 8u);
  EXPECT_GT(wl.active_by_rank()[3] * 2, wl.active());  // majority on rank 3
  std::map<std::string, std::size_t> demand;
  wl.fill_demand(demand);
  EXPECT_EQ(demand[catalog.entry(3).movie->name()], wl.active_by_rank()[3]);
  wl.stop();
  EXPECT_EQ(wl.active(), 0u);
}

}  // namespace
}  // namespace ftvod::workload
