// Reproducibility: the whole stack is deterministic given a seed — two
// identical deployments produce bit-identical event streams and counters,
// and different seeds genuinely differ. This is what makes the benchmark
// harnesses and failure injections trustworthy.
#include <gtest/gtest.h>

#include "vod/service.hpp"

namespace ftvod::vod {
namespace {

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t received = 0;
  std::uint64_t displayed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t late = 0;
  std::uint64_t wire_bytes = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult run_scenario(std::uint64_t seed) {
  Deployment dep(seed);
  const net::NodeId s0 = dep.add_host("s0");
  const net::NodeId s1 = dep.add_host("s1");
  const net::NodeId c0 = dep.add_host("c0");
  auto movie = mpeg::Movie::synthetic("m", 120.0);
  dep.start_server(s0).server->add_movie(movie);
  dep.start_server(s1).server->add_movie(movie);
  auto& client = *dep.start_client(c0).client;
  dep.run_for(sim::sec(2.0));
  client.watch("m");
  dep.run_for(sim::sec(20.0));
  // Inject a crash mid-run to exercise the failover path too.
  for (auto& sn : dep.servers()) {
    if (sn->server->serves(client.client_id())) {
      dep.crash(sn->node);
      break;
    }
  }
  dep.run_for(sim::sec(10.0));

  RunResult r;
  r.events = dep.scheduler().executed_events();
  r.received = client.counters().received;
  r.displayed = client.counters().displayed;
  r.skipped = client.counters().skipped;
  r.late = client.counters().late;
  r.wire_bytes = dep.network().total_wire_bytes();
  return r;
}

TEST(Determinism, SameSeedBitIdentical) {
  const RunResult a = run_scenario(12345);
  const RunResult b = run_scenario(12345);
  EXPECT_EQ(a, b);
}

TEST(Determinism, SameSeedBitIdenticalWan) {
  auto run = [](std::uint64_t seed) {
    Deployment dep(seed, net::wan_quality(0.02));
    const net::NodeId s0 = dep.add_host("s0");
    const net::NodeId c0 = dep.add_host("c0");
    auto movie = mpeg::Movie::synthetic("m", 60.0);
    dep.start_server(s0).server->add_movie(movie);
    auto& client = *dep.start_client(c0).client;
    dep.run_for(sim::sec(2.0));
    client.watch("m");
    dep.run_for(sim::sec(20.0));
    return std::pair{dep.scheduler().executed_events(),
                     client.counters().received};
  };
  EXPECT_EQ(run(777), run(777));
}

TEST(Determinism, DifferentSeedsDiffer) {
  const RunResult a = run_scenario(1);
  const RunResult b = run_scenario(2);
  // The deterministic protocol work is the same; the jitter draws differ,
  // so the runs must differ somewhere (event count, deliveries, or wire
  // volume — any single scalar can coincide by chance).
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ftvod::vod
