// Property tests for the slab scheduler: handle safety across slot
// recycling, tombstone semantics, and counting-allocator proofs that the
// steady-state paths (timer re-arm loop; frame encode + network send) stay
// off the heap once warm. The binary overrides the global allocator to
// count every allocation, including any hidden inside std::function or
// shared_ptr — a regression that reintroduces per-event allocations fails
// these tests, not just the benchmark.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"
#include "vod/wire.hpp"

// Under AddressSanitizer the global allocator belongs to ASan: replacing
// it with raw malloc/free would strip redzones from every heap object in
// the binary. A sanitized build compiles the hooks out; the handle-safety
// and throughput assertions still run, only the allocation counts become
// vacuous (and are skipped).
#if defined(__SANITIZE_ADDRESS__)
#define FTVOD_COUNTING_ALLOC 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FTVOD_COUNTING_ALLOC 0
#endif
#endif
#ifndef FTVOD_COUNTING_ALLOC
#define FTVOD_COUNTING_ALLOC 1
#endif

namespace {
std::uint64_t g_allocs = 0;
constexpr bool kCountingAlloc = FTVOD_COUNTING_ALLOC != 0;
}

#if FTVOD_COUNTING_ALLOC
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // FTVOD_COUNTING_ALLOC

namespace ftvod::sim {
namespace {

TEST(SchedulerSlab, SameTimeFifoPreservedAcrossSlabReuse) {
  Scheduler s;
  // Round 1 populates the slab; later rounds recycle slots in LIFO free-list
  // order, so FIFO among same-time events must come from the sequence
  // number, not from slot indices.
  for (int round = 0; round < 3; ++round) {
    std::vector<int> order;
    const Time t = s.now() + 10;
    for (int i = 0; i < 8; ++i) {
      s.at(t, [&order, i] { order.push_back(i); });
    }
    s.run();
    const std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(order, expected) << "round " << round;
  }
}

TEST(SchedulerSlab, StaleHandleAfterRecyclingIsInert) {
  Scheduler s;
  int a_runs = 0;
  int b_runs = 0;
  auto ha = s.after(5, [&] { ++a_runs; });
  s.run();
  ASSERT_EQ(a_runs, 1);
  // The new event recycles a's slot under a bumped generation; the stale
  // handle must read not-pending and its cancel must not hit b.
  auto hb = s.after(5, [&] { ++b_runs; });
  EXPECT_FALSE(ha.pending());
  ha.cancel();
  EXPECT_TRUE(hb.pending());
  s.run();
  EXPECT_EQ(b_runs, 1);
}

TEST(SchedulerSlab, CancelFromInsideCallback) {
  Scheduler s;
  int b_runs = 0;
  Scheduler::EventHandle hb;
  s.after(1, [&] { hb.cancel(); });
  hb = s.after(2, [&] { ++b_runs; });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(b_runs, 0);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(SchedulerSlab, SelfCancelWhileRunningIsNoOp) {
  Scheduler s;
  int runs = 0;
  Scheduler::EventHandle h;
  h = s.after(1, [&] {
    EXPECT_FALSE(h.pending());  // no longer scheduled while executing
    h.cancel();
    ++runs;
  });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerSlab, RunUntilNotDraggedByTombstoneAtTop) {
  Scheduler s;
  int late_runs = 0;
  auto h = s.after(100, [] {});
  s.after(200, [&] { ++late_runs; });
  h.cancel();
  // The cancelled top event must neither count as executed nor let the
  // beyond-horizon event run early.
  EXPECT_EQ(s.run_until(150), 0u);
  EXPECT_EQ(s.now(), 150);
  EXPECT_EQ(late_runs, 0);
  EXPECT_EQ(s.run_until(250), 1u);
  EXPECT_EQ(late_runs, 1);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(SchedulerSlab, HotPathLambdasFitInline) {
  // The capture sizes the scheduler's 64-byte inline buffer was chosen for:
  // the network delivery closure (~40 B) and timer re-arms (~16 B). If one
  // of these spills to the heap, every scheduled event allocates again.
  Scheduler* sched = nullptr;
  std::uint64_t id = 0;
  void* p1 = nullptr;
  void* p2 = nullptr;
  std::size_t sz = 0;
  auto delivery = [sched, p1, p2, id, sz] {
    (void)sched, (void)p1, (void)p2, (void)id, (void)sz;
  };
  auto rearm = [sched, id] { (void)sched, (void)id; };
  static_assert(Scheduler::Callback::stored_inline<decltype(delivery)>);
  static_assert(Scheduler::Callback::stored_inline<decltype(rearm)>);
  struct Oversized {
    char blob[80];
    void operator()() const {}
  };
  static_assert(!Scheduler::Callback::stored_inline<Oversized>);
}

TEST(SchedulerSlab, SteadyStateTimerLoopAllocationFree) {
  Scheduler sched;
  OneShotTimer timer(sched);
  std::uint64_t fired = 0;
  std::uint64_t payload[4] = {1, 2, 3, 4};
  std::function<void()> tick = [&] {
    payload[0] += payload[1] + payload[2] + payload[3];
    ++fired;
    timer.arm(10, [&] { tick(); });
  };
  timer.arm(10, [&] { tick(); });
  sched.run_until(sched.now() + 10'000);  // warmup: slab + heap high-water
  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t fired_before = fired;
  sched.run_until(sched.now() + 100'000);
  EXPECT_GT(fired, fired_before + 1'000);
  if (kCountingAlloc) EXPECT_EQ(g_allocs - allocs_before, 0u);
}

// The acceptance path of the allocation-free core: scheduler arm -> wire
// encode into a reused writer -> socket send through the pooled network.
// After warmup, a simulated second of frame traffic must not allocate.
TEST(SchedulerSlab, FrameSendPathAllocationFree) {
  Scheduler sched;
  util::Rng rng(7);
  net::Network net(sched, rng);
  const net::NodeId server = net.add_host("server");
  const net::NodeId client = net.add_host("client");
  std::uint64_t frames_received = 0;
  auto client_sock = net.bind(
      client, 2, [&](const net::Endpoint&, std::span<const std::byte> d) {
        if (vod::wire::decode_frame(d)) ++frames_received;
      });
  auto server_sock = net.bind(server, 1, nullptr);

  OneShotTimer timer(sched);
  util::Writer writer;
  std::uint64_t next_frame = 0;
  std::function<void()> tick = [&] {
    const vod::wire::Frame msg{1, next_frame++, mpeg::FrameType::kP, 6000};
    vod::wire::encode_into(msg, writer);
    server_sock->send(net::Endpoint{client, 2}, writer.buffer(),
                      6000 - writer.size());
    timer.arm(33'000, [&] { tick(); });  // ~30 fps
  };
  timer.arm(33'000, [&] { tick(); });

  sched.run_until(sched.now() + sec(5.0));  // warmup: writer + buffer pool
  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t frames_before = frames_received;
  sched.run_until(sched.now() + sec(30.0));
  EXPECT_GT(frames_received, frames_before + 800);
  if (kCountingAlloc) EXPECT_EQ(g_allocs - allocs_before, 0u);
}

}  // namespace
}  // namespace ftvod::sim
