#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftvod::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(300, [&] { order.push_back(3); });
  s.at(100, [&] { order.push_back(1); });
  s.at(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(Scheduler, SameTimeEventsRunInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(50, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  Time fired = -1;
  s.at(100, [&] {
    s.after(50, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 150);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.at(100, [] {});
  s.run();
  Time fired = -1;
  s.at(10, [&] { fired = s.now(); });  // in the past
  s.run();
  EXPECT_EQ(fired, 100);
}

TEST(Scheduler, NegativeDelayClampsToZero) {
  Scheduler s;
  Time fired = -1;
  s.after(-50, [&] { fired = s.now(); });
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  auto h = s.at(10, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, HandleNotPendingAfterRun) {
  Scheduler s;
  auto h = s.at(10, [] {});
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, RunUntilAdvancesClockEvenWithoutEvents) {
  Scheduler s;
  EXPECT_EQ(s.run_until(5000), 0u);
  EXPECT_EQ(s.now(), 5000);
}

TEST(Scheduler, RunUntilRunsOnlyDueEvents) {
  Scheduler s;
  std::vector<int> order;
  s.at(100, [&] { order.push_back(1); });
  s.at(200, [&] { order.push_back(2); });
  s.run_until(150);
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_EQ(s.now(), 150);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunUntilIncludesBoundary) {
  Scheduler s;
  bool ran = false;
  s.at(100, [&] { ran = true; });
  s.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.after(10, recurse);
  };
  s.after(10, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 50);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutedEventsCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Scheduler, CancelledEventsNotCounted) {
  Scheduler s;
  auto h = s.at(1, [] {});
  s.at(2, [] {});
  h.cancel();
  EXPECT_EQ(s.run(), 1u);
}

}  // namespace
}  // namespace ftvod::sim
