// Focused coverage of Scheduler::EventHandle semantics: copy/cancel
// aliasing, pending() transitions across the whole lifecycle, and FIFO
// ordering of same-time events when cancellations are interleaved.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftvod::sim {
namespace {

TEST(EventHandle, DefaultConstructedIsInert) {
  Scheduler::EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
  EXPECT_FALSE(h.pending());
}

TEST(EventHandle, CancelAfterFireIsNoOp) {
  Scheduler s;
  int runs = 0;
  auto h = s.at(10, [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // the event already fired; this must change nothing
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(s.run(), 0u);
  EXPECT_EQ(runs, 1);
}

TEST(EventHandle, DoubleCancelIsNoOp) {
  Scheduler s;
  bool ran = false;
  auto h = s.at(10, [&] { ran = true; });
  h.cancel();
  h.cancel();
  s.run();
  EXPECT_FALSE(ran);
}

TEST(EventHandle, CancellingOneCopyCancelsAllCopies) {
  Scheduler s;
  bool ran = false;
  auto a = s.at(10, [&] { ran = true; });
  Scheduler::EventHandle b = a;  // copy aliases the same event
  Scheduler::EventHandle c;
  c = b;
  EXPECT_TRUE(a.pending());
  EXPECT_TRUE(b.pending());
  EXPECT_TRUE(c.pending());
  b.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  EXPECT_FALSE(c.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST(EventHandle, CopiesObserveFireThroughAnyAlias) {
  Scheduler s;
  auto a = s.at(10, [] {});
  const Scheduler::EventHandle b = a;
  s.run();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
}

TEST(EventHandle, PendingTransitions) {
  Scheduler s;
  auto h = s.at(100, [] {});
  EXPECT_TRUE(h.pending());  // scheduled
  s.run_until(50);
  EXPECT_TRUE(h.pending());  // still in the future
  s.run_until(100);
  EXPECT_FALSE(h.pending());  // fired
}

TEST(EventHandle, HandleOutlivingSchedulerUseIsSafeToQuery) {
  Scheduler s;
  auto h = s.at(5, [] {});
  s.run();
  // The event's control block is shared; querying long after the queue
  // drained keeps working.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(h.pending());
    h.cancel();
  }
}

TEST(EventHandle, FifoOrderPreservedUnderInterleavedCancellation) {
  Scheduler s;
  std::vector<int> order;
  std::vector<Scheduler::EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(s.at(50, [&order, i] { order.push_back(i); }));
  }
  // Cancel every second event; the survivors must still run in the exact
  // schedule order, unaffected by the holes around them.
  for (int i = 0; i < 8; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7}));
}

TEST(EventHandle, CancelDuringSameTimeBatchStopsLaterEvent) {
  Scheduler s;
  std::vector<int> order;
  std::vector<Scheduler::EventHandle> handles;
  handles.push_back(s.at(50, [&] {
    order.push_back(0);
    handles[2].cancel();  // cancels a same-time event not yet run
  }));
  handles.push_back(s.at(50, [&] { order.push_back(1); }));
  handles.push_back(s.at(50, [&] { order.push_back(2); }));
  handles.push_back(s.at(50, [&] { order.push_back(3); }));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
}

TEST(EventHandle, ReschedulingPatternWithCancel) {
  // The timer idiom: cancel the old handle, schedule a new one. The old
  // cancellation must never leak into the replacement event.
  Scheduler s;
  int fired_at = -1;
  auto h = s.at(100, [&] { fired_at = 100; });
  h.cancel();
  h = s.at(200, [&] { fired_at = 200; });
  s.run();
  EXPECT_EQ(fired_at, 200);
  EXPECT_FALSE(h.pending());
}

}  // namespace
}  // namespace ftvod::sim
