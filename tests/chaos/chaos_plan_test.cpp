// ChaosPlan generation is a pure function of (seed, options, topology).
// These tests pin down that purity plus the structural guarantees the
// injector and the soak harness rely on: every fault is paired with a
// later repair, faults only start inside [start, end), and the plan never
// schedules more simultaneous server outages than min_live_servers allows.
#include "testing/chaos.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ftvod::testing {
namespace {

const std::vector<net::NodeId> kServers{0, 1, 2};
const std::vector<net::NodeId> kClients{3, 4};

bool same_event(const ChaosEvent& a, const ChaosEvent& b) {
  return a.at == b.at && a.kind == b.kind && a.a == b.a && a.b == b.b &&
         a.component == b.component &&
         a.quality.base_delay == b.quality.base_delay &&
         a.quality.jitter == b.quality.jitter &&
         a.quality.loss == b.quality.loss;
}

TEST(ChaosPlan, SameSeedSameOptionsSamePlan) {
  const ChaosOptions opts;
  for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
    const ChaosPlan a = ChaosPlan::generate(seed, opts, kServers, kClients);
    const ChaosPlan b = ChaosPlan::generate(seed, opts, kServers, kClients);
    ASSERT_EQ(a.events().size(), b.events().size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.events().size(); ++i) {
      EXPECT_TRUE(same_event(a.events()[i], b.events()[i]))
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(ChaosPlan, DifferentSeedsDiverge) {
  const ChaosOptions opts;
  const ChaosPlan a = ChaosPlan::generate(1, opts, kServers, kClients);
  const ChaosPlan b = ChaosPlan::generate(2, opts, kServers, kClients);
  bool differ = a.events().size() != b.events().size();
  for (std::size_t i = 0; !differ && i < a.events().size(); ++i) {
    differ = !same_event(a.events()[i], b.events()[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(ChaosPlan, PlansAreNonTrivialAndSortedByTime) {
  const ChaosOptions opts;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, opts, kServers, kClients);
    EXPECT_GE(plan.events().size(), 4u) << "seed " << seed;
    for (std::size_t i = 1; i < plan.events().size(); ++i) {
      EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at)
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(ChaosPlan, EveryFaultHasAMatchingLaterRepair) {
  const ChaosOptions opts;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, opts, kServers, kClients);
    // Replay the schedule; counters must pair off and end balanced.
    std::set<net::NodeId> down;
    std::set<net::NodeId> paused;
    std::set<std::pair<net::NodeId, net::NodeId>> degraded;
    int open_partitions = 0;
    for (const ChaosEvent& e : plan.events()) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " t=" << e.at
                                        << " " << to_string(e.kind));
      switch (e.kind) {
        case ChaosEventKind::kCrash:
          EXPECT_TRUE(down.insert(e.a).second);  // no double-crash
          break;
        case ChaosEventKind::kRestart:
          EXPECT_EQ(down.erase(e.a), 1u);  // restart only after a crash
          break;
        case ChaosEventKind::kPauseDaemon:
          EXPECT_TRUE(paused.insert(e.a).second);
          break;
        case ChaosEventKind::kResumeDaemon:
          EXPECT_EQ(paused.erase(e.a), 1u);
          break;
        case ChaosEventKind::kPartition:
          EXPECT_FALSE(e.component.empty());
          EXPECT_LT(e.component.size(), kServers.size() + kClients.size());
          ++open_partitions;
          EXPECT_EQ(open_partitions, 1);  // one partition at a time
          break;
        case ChaosEventKind::kHeal:
          --open_partitions;
          EXPECT_EQ(open_partitions, 0);
          break;
        case ChaosEventKind::kDegradeLink:
        case ChaosEventKind::kCorruptLink:
          EXPECT_NE(e.a, e.b);
          EXPECT_TRUE(degraded.insert({e.a, e.b}).second);
          break;
        case ChaosEventKind::kRestoreLink:
          EXPECT_EQ(degraded.erase({e.a, e.b}), 1u);
          break;
      }
    }
    EXPECT_TRUE(down.empty());
    EXPECT_TRUE(paused.empty());
    EXPECT_TRUE(degraded.empty());
    EXPECT_EQ(open_partitions, 0);
  }
}

TEST(ChaosPlan, FaultsStartInsideTheWindow) {
  ChaosOptions opts;
  opts.start = sim::sec(5.0);
  opts.end = sim::sec(30.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, opts, kServers, kClients);
    for (const ChaosEvent& e : plan.events()) {
      const bool is_repair = e.kind == ChaosEventKind::kRestart ||
                             e.kind == ChaosEventKind::kHeal ||
                             e.kind == ChaosEventKind::kRestoreLink ||
                             e.kind == ChaosEventKind::kResumeDaemon;
      EXPECT_GE(e.at, opts.start);
      if (!is_repair) {
        EXPECT_LT(e.at, opts.end)
            << "seed " << seed << " " << to_string(e.kind);
      }
    }
  }
}

TEST(ChaosPlan, NeverDropsBelowMinLiveServers) {
  ChaosOptions opts;
  opts.min_live_servers = 2;
  opts.mean_gap = sim::sec(1.0);  // dense schedule to stress the guard
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, opts, kServers, kClients);
    std::set<net::NodeId> unhealthy;  // down or paused
    for (const ChaosEvent& e : plan.events()) {
      switch (e.kind) {
        case ChaosEventKind::kCrash:
        case ChaosEventKind::kPauseDaemon:
          unhealthy.insert(e.a);
          break;
        case ChaosEventKind::kRestart:
        case ChaosEventKind::kResumeDaemon:
          unhealthy.erase(e.a);
          break;
        default:
          break;
      }
      EXPECT_GE(kServers.size() - unhealthy.size(), opts.min_live_servers)
          << "seed " << seed << " at t=" << e.at;
    }
  }
}

TEST(ChaosPlan, CorruptLinkFaultsPairUpAndCarryDamage) {
  // The corrupt-link class is opt-in (weight 0 by default); enabling it
  // must produce paired corrupt/restore flaps whose quality actually
  // damages payloads and bursts losses.
  ChaosOptions opts;
  opts.weight_corrupt = 2.0;
  bool saw_corrupt = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, opts, kServers, kClients);
    std::set<std::pair<net::NodeId, net::NodeId>> open;
    for (const ChaosEvent& e : plan.events()) {
      if (e.kind == ChaosEventKind::kCorruptLink) {
        saw_corrupt = true;
        EXPECT_NE(e.a, e.b);
        EXPECT_GT(e.quality.corrupt, 0.0);
        EXPECT_GT(e.quality.truncate, 0.0);
        EXPECT_TRUE(e.quality.bursty());
        EXPECT_GT(e.quality.loss_bad, 0.0);
        EXPECT_TRUE(open.insert({e.a, e.b}).second) << "seed " << seed;
      } else if (e.kind == ChaosEventKind::kDegradeLink) {
        EXPECT_TRUE(open.insert({e.a, e.b}).second) << "seed " << seed;
      } else if (e.kind == ChaosEventKind::kRestoreLink) {
        EXPECT_EQ(open.erase({e.a, e.b}), 1u) << "seed " << seed;
      }
    }
    EXPECT_TRUE(open.empty()) << "seed " << seed;
  }
  EXPECT_TRUE(saw_corrupt);
}

TEST(ChaosPlan, DefaultOptionsNeverCorrupt) {
  // Plans generated before the hostile fault model existed must stay
  // byte-identical for the same seed: the default weight keeps the new
  // class out entirely.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, {}, kServers, kClients);
    for (const ChaosEvent& e : plan.events()) {
      EXPECT_NE(e.kind, ChaosEventKind::kCorruptLink);
    }
  }
}

TEST(ChaosPlan, ZeroWeightDisablesAFaultClass) {
  ChaosOptions opts;
  opts.weight_crash = 0.0;
  opts.weight_pause = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ChaosPlan plan = ChaosPlan::generate(seed, opts, kServers, kClients);
    for (const ChaosEvent& e : plan.events()) {
      EXPECT_NE(e.kind, ChaosEventKind::kCrash);
      EXPECT_NE(e.kind, ChaosEventKind::kRestart);
      EXPECT_NE(e.kind, ChaosEventKind::kPauseDaemon);
      EXPECT_NE(e.kind, ChaosEventKind::kResumeDaemon);
    }
  }
}

TEST(ChaosPlan, DescribeListsSeedAndEveryEvent) {
  const ChaosPlan plan = ChaosPlan::generate(42, {}, kServers, kClients);
  const std::string text = plan.describe();
  EXPECT_NE(text.find("seed=42"), std::string::npos);
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, plan.events().size() + 1);  // header + one per event
}

}  // namespace
}  // namespace ftvod::testing
