// The InvariantMonitor itself must be trustworthy in both directions: quiet
// on a healthy deployment, loud on a genuinely broken one. The positive
// case is a plain run; the negative cases plant real defects — a server
// group whose members disagree on the rebalance policy (so their
// "deterministic" re-distributions diverge), and a server that silently
// stops streaming without ever leaving its groups (a stall no protocol
// machinery repairs).
#include "testing/invariants.hpp"

#include <gtest/gtest.h>

#include "../integration/vod_testbed.hpp"
#include "testing/chaos.hpp"

namespace ftvod::testing {
namespace {

using vod::testing::VodTestBed;

bool any_violation_contains(const InvariantMonitor& monitor,
                            const std::string& needle) {
  for (const Violation& v : monitor.violations()) {
    if (v.what.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(InvariantMonitor, HealthySteadyStateIsViolationFree) {
  VodTestBed bed(/*n_servers=*/2, /*n_clients=*/2);
  InvariantMonitor monitor(bed.deployment());
  monitor.start();
  bed.watch_all();
  bed.run_for(30.0);
  EXPECT_TRUE(monitor.ok()) << monitor.report();
  EXPECT_GT(monitor.checks_run(), 250u);
}

TEST(InvariantMonitor, HealthyRunWithCleanCrashStaysViolationFree) {
  // A crash inside the grace bounds is the system working as designed; the
  // monitor must not cry wolf about the takeover duplication or the brief
  // refill stall.
  VodTestBed bed(/*n_servers=*/3, /*n_clients=*/2);
  InvariantMonitor monitor(bed.deployment());
  monitor.start();
  bed.watch_all();
  bed.run_for(5.0);
  const int victim = bed.serving_server(0);
  ASSERT_GE(victim, 0);
  bed.crash_server(victim);
  bed.run_for(15.0);
  EXPECT_TRUE(monitor.ok()) << monitor.report();
}

TEST(InvariantMonitor, CatchesRebalancePolicyDivergence) {
  // Two kSpread servers serve four clients; a third server joins with a
  // mis-configured kStable policy. All three complete the same table
  // exchange and compute assignments for the same view — but the remainder
  // lands on different servers, violating §5.2's agreement claim. The
  // monitor must flag the divergence.
  vod::VodParams spread;  // default policy: kSpread
  vod::VodParams stable = spread;
  stable.rebalance_policy = vod::RebalancePolicy::kStable;

  vod::Deployment dep(/*seed=*/7, net::lan_quality(), spread);
  std::vector<net::NodeId> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(dep.add_host("server" + std::to_string(i)));
  }
  std::vector<net::NodeId> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(dep.add_host("client" + std::to_string(i)));
  }
  const auto movie = mpeg::Movie::synthetic("feature", 120.0);
  for (int i = 0; i < 2; ++i) {
    dep.start_server(servers[static_cast<std::size_t>(i)]).server->add_movie(
        movie);
  }
  for (net::NodeId c : clients) dep.start_client(c);
  dep.run_for(sim::sec(2.0));
  for (auto& cn : dep.clients()) cn->client->watch("feature");
  dep.run_for(sim::sec(3.0));

  InvariantMonitor monitor(dep);
  monitor.start();
  // The misconfigured server joins the movie group; the resulting view
  // change triggers the diverging re-distribution.
  dep.start_server(servers[2], stable).server->add_movie(movie);
  dep.run_for(sim::sec(6.0));

  EXPECT_FALSE(monitor.ok());
  EXPECT_TRUE(any_violation_contains(monitor, "disagree"))
      << monitor.report();
}

TEST(InvariantMonitor, CatchesUnrepairedStall) {
  // halt() stops a server's streaming without leaving its groups, and its
  // GCS daemon keeps heartbeating — so no peer ever suspects it and no
  // takeover happens. With client-side reconnection disabled, the client
  // starves forever next to a healthy replica: exactly the liveness
  // violation the monitor exists to catch.
  vod::VodParams params;
  params.reconnect_timeout = sim::sec(3600.0);
  VodTestBed bed(/*n_servers=*/2, /*n_clients=*/1, net::lan_quality(),
                 /*seed=*/42, params);
  bed.watch_all();
  bed.run_for(5.0);
  const int victim = bed.serving_server(0);
  ASSERT_GE(victim, 0);

  InvariantOptions opts;
  opts.stall_bound = sim::sec(2.0);
  InvariantMonitor monitor(bed.deployment(), opts);
  monitor.start();
  bed.server(victim).halt();
  bed.run_for(10.0);

  EXPECT_FALSE(monitor.ok());
  EXPECT_TRUE(any_violation_contains(monitor, "stalled")) << monitor.report();
}

}  // namespace
}  // namespace ftvod::testing
