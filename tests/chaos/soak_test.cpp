// Randomized chaos soak (label: soak). Each case builds a 3-server /
// 3-client deployment on a LAN or WAN profile, generates a mixed-fault
// ChaosPlan from the case seed — crashes with reboots, partitions,
// link-quality flaps, daemon pause/resume — replays it through the
// injector, and requires every invariant to hold for the entire run. On
// failure the offending seed and the full event trace are printed, so any
// red case reproduces with a one-line local run:
//
//   ./chaos_soak_test --gtest_filter='*lan_seed7*'
//
// Set FTVOD_LOG=info (or debug) to watch the full takeover / migration /
// reconnect traffic while replaying a seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "testing/chaos.hpp"
#include "testing/invariants.hpp"
#include "util/log.hpp"

namespace ftvod::testing {
namespace {

class ChaosSoak : public ::testing::TestWithParam<std::tuple<int, bool>> {
 public:
  static void SetUpTestSuite() {
    if (const char* lvl = std::getenv("FTVOD_LOG")) {
      const std::string s(lvl);
      if (s == "debug") util::Log::set_level(util::LogLevel::kDebug);
      if (s == "info") util::Log::set_level(util::LogLevel::kInfo);
    }
  }
};

void run_soak(std::uint64_t seed, bool wan, const ChaosOptions& copts) {
  vod::Deployment dep(seed, wan ? net::wan_quality() : net::lan_quality());
  std::vector<net::NodeId> server_nodes;
  std::vector<net::NodeId> client_nodes;
  for (int i = 0; i < 3; ++i) {
    server_nodes.push_back(dep.add_host("server" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    client_nodes.push_back(dep.add_host("client" + std::to_string(i)));
  }
  const auto movie = mpeg::Movie::synthetic("feature", 5 * 60.0);
  for (net::NodeId s : server_nodes) {
    dep.start_server(s).server->add_movie(movie);
  }
  for (net::NodeId c : client_nodes) dep.start_client(c);
  dep.run_for(sim::sec(2.0));
  for (auto& cn : dep.clients()) cn->client->watch("feature");
  dep.run_for(sim::sec(3.0));

  const ChaosPlan plan =
      ChaosPlan::generate(seed, copts, server_nodes, client_nodes);
  ASSERT_FALSE(plan.events().empty());
  ChaosInjector injector(dep, plan);
  injector.arm();
  InvariantMonitor monitor(dep);
  monitor.start();

  // Past the fault window plus every trailing repair, with settle time.
  dep.run_until(sim::sec(80.0));

  EXPECT_EQ(injector.events_applied(), plan.events().size());
  EXPECT_TRUE(monitor.ok())
      << (wan ? "WAN" : "LAN") << " soak violated invariants; reproduce "
      << "with seed " << seed << "\n"
      << plan.describe() << monitor.report();
  EXPECT_GT(monitor.checks_run(), 500u);

  // After the last repair the service must be fully healed: every client
  // saw a substantial share of the movie (75 s of wall time at 30 fps),
  // despite crashes, partitions and lossy links along the way.
  for (auto& cn : dep.clients()) {
    EXPECT_GT(cn->client->counters().displayed, 600u)
        << (wan ? "WAN" : "LAN") << " client on n" << cn->node
        << " starved; seed=" << seed << "\n"
        << plan.describe() << monitor.report();
  }
}

TEST_P(ChaosSoak, InvariantsHoldUnderMixedFaults) {
  const auto [seed_int, wan] = GetParam();
  // Default options: faults drawn in [8 s, 60 s), at least one server
  // always left healthy. Repairs may land a few seconds past the window.
  run_soak(static_cast<std::uint64_t>(seed_int), wan, ChaosOptions{});
}

using CorruptChaosSoak = ChaosSoak;

TEST_P(CorruptChaosSoak, InvariantsHoldUnderCorruptionAndBursts) {
  const auto [seed_int, wan] = GetParam();
  // Same mixed-fault schedule, but with corrupt-link flaps enabled: link
  // pairs transiently flip bits, truncate datagrams, and enter loss-burst
  // regimes. Every damaged datagram must be caught by the integrity
  // framing and handled exactly like loss — same invariants as the plain
  // sweep, no extra allowance.
  ChaosOptions copts;
  copts.weight_corrupt = 1.5;
  run_soak(static_cast<std::uint64_t>(seed_int), wan, copts);
}

const auto kSoakNamer =
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return std::string(std::get<1>(info.param) ? "wan" : "lan") + "_seed" +
             std::to_string(std::get<0>(info.param));
    };

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosSoak,
    ::testing::Combine(::testing::Range(1, 23), ::testing::Bool()),
    kSoakNamer);

// The corrupting sweep runs a subset of the seeds: every plan differs from
// the plain sweep's anyway (the extra fault class changes the whole
// schedule), so a handful of seeds buys coverage without doubling the tier.
INSTANTIATE_TEST_SUITE_P(
    CorruptSweep, CorruptChaosSoak,
    ::testing::Combine(::testing::Values(3, 7, 11, 16, 20), ::testing::Bool()),
    kSoakNamer);

}  // namespace
}  // namespace ftvod::testing
