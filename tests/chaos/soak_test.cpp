// Randomized chaos soak (label: soak). Each case builds a 3-server /
// 3-client deployment on a LAN or WAN profile, generates a mixed-fault
// ChaosPlan from the case seed — crashes with reboots, partitions,
// link-quality flaps, daemon pause/resume — replays it through the
// injector, and requires every invariant to hold for the entire run. On
// failure the offending seed and the full event trace are printed, so any
// red case reproduces with a one-line local run:
//
//   ./chaos_soak_test --gtest_filter='*lan_seed7*'
//
// Set FTVOD_LOG=info (or debug) to watch the full takeover / migration /
// reconnect traffic while replaying a seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "mpeg/catalog_gen.hpp"
#include "testing/chaos.hpp"
#include "testing/invariants.hpp"
#include "util/log.hpp"
#include "vod/placement.hpp"
#include "workload/session_workload.hpp"

namespace ftvod::testing {
namespace {

class ChaosSoak : public ::testing::TestWithParam<std::tuple<int, bool>> {
 public:
  static void SetUpTestSuite() {
    if (const char* lvl = std::getenv("FTVOD_LOG")) {
      const std::string s(lvl);
      if (s == "debug") util::Log::set_level(util::LogLevel::kDebug);
      if (s == "info") util::Log::set_level(util::LogLevel::kInfo);
    }
  }
};

void run_soak(std::uint64_t seed, bool wan, const ChaosOptions& copts) {
  vod::Deployment dep(seed, wan ? net::wan_quality() : net::lan_quality());
  std::vector<net::NodeId> server_nodes;
  std::vector<net::NodeId> client_nodes;
  for (int i = 0; i < 3; ++i) {
    server_nodes.push_back(dep.add_host("server" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    client_nodes.push_back(dep.add_host("client" + std::to_string(i)));
  }
  const auto movie = mpeg::Movie::synthetic("feature", 5 * 60.0);
  for (net::NodeId s : server_nodes) {
    dep.start_server(s).server->add_movie(movie);
  }
  for (net::NodeId c : client_nodes) dep.start_client(c);
  dep.run_for(sim::sec(2.0));
  for (auto& cn : dep.clients()) cn->client->watch("feature");
  dep.run_for(sim::sec(3.0));

  const ChaosPlan plan =
      ChaosPlan::generate(seed, copts, server_nodes, client_nodes);
  ASSERT_FALSE(plan.events().empty());
  ChaosInjector injector(dep, plan);
  injector.arm();
  InvariantMonitor monitor(dep);
  monitor.start();

  // Past the fault window plus every trailing repair, with settle time.
  dep.run_until(sim::sec(80.0));

  EXPECT_EQ(injector.events_applied(), plan.events().size());
  EXPECT_TRUE(monitor.ok())
      << (wan ? "WAN" : "LAN") << " soak violated invariants; reproduce "
      << "with seed " << seed << "\n"
      << plan.describe() << monitor.report();
  EXPECT_GT(monitor.checks_run(), 500u);

  // After the last repair the service must be fully healed: every client
  // saw a substantial share of the movie (75 s of wall time at 30 fps),
  // despite crashes, partitions and lossy links along the way.
  for (auto& cn : dep.clients()) {
    EXPECT_GT(cn->client->counters().displayed, 600u)
        << (wan ? "WAN" : "LAN") << " client on n" << cn->node
        << " starved; seed=" << seed << "\n"
        << plan.describe() << monitor.report();
  }
}

TEST_P(ChaosSoak, InvariantsHoldUnderMixedFaults) {
  const auto [seed_int, wan] = GetParam();
  // Default options: faults drawn in [8 s, 60 s), at least one server
  // always left healthy. Repairs may land a few seconds past the window.
  run_soak(static_cast<std::uint64_t>(seed_int), wan, ChaosOptions{});
}

using CorruptChaosSoak = ChaosSoak;

TEST_P(CorruptChaosSoak, InvariantsHoldUnderCorruptionAndBursts) {
  const auto [seed_int, wan] = GetParam();
  // Same mixed-fault schedule, but with corrupt-link flaps enabled: link
  // pairs transiently flip bits, truncate datagrams, and enter loss-burst
  // regimes. Every damaged datagram must be caught by the integrity
  // framing and handled exactly like loss — same invariants as the plain
  // sweep, no extra allowance.
  ChaosOptions copts;
  copts.weight_corrupt = 1.5;
  run_soak(static_cast<std::uint64_t>(seed_int), wan, copts);
}

// ---------------------------------------------------------------------------
// Catalog-churn soak: a miniature city — Zipf catalog, Poisson session
// churn through gateway-attached clients, the placement controller moving
// replicas as demand moves — under a scripted flash crowd on the top title
// with a server crash landing mid-rebalance. The injector's restart
// delegate hands recovery to the controller (the restarted server rejoins
// with an empty catalog and must be re-registered), and the invariant
// monitor additionally enforces the replication floor for every watched
// title.

class CatalogChurnSoak : public ::testing::TestWithParam<int> {
 public:
  static void SetUpTestSuite() {
    if (const char* lvl = std::getenv("FTVOD_LOG")) {
      const std::string s(lvl);
      if (s == "debug") util::Log::set_level(util::LogLevel::kDebug);
      if (s == "info") util::Log::set_level(util::LogLevel::kInfo);
    }
  }
};

TEST_P(CatalogChurnSoak, PlacementHoldsInvariantsUnderChurnAndCrash) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  vod::Deployment dep(seed);

  std::vector<net::NodeId> server_nodes;
  for (int i = 0; i < 4; ++i) {
    server_nodes.push_back(dep.add_host("server" + std::to_string(i)));
  }
  const net::NodeId gw_node = dep.add_host("gateway");
  std::vector<net::NodeId> edge_nodes;
  for (int i = 0; i < 20; ++i) {
    edge_nodes.push_back(dep.add_edge_host("edge" + std::to_string(i)));
  }
  // Servers start *empty*: the catalog belongs to the placement controller.
  for (net::NodeId s : server_nodes) dep.start_server(s);
  auto& gateway = dep.start_gateway(gw_node);
  for (net::NodeId e : edge_nodes) dep.start_client(e, gateway);

  mpeg::CatalogSpec cspec;
  cspec.titles = 24;
  cspec.min_duration_s = 120.0;
  cspec.max_duration_s = 300.0;
  const auto catalog = mpeg::GeneratedCatalog::generate(seed, cspec);

  vod::PlacementConfig pcfg;
  pcfg.replication_floor = 2;
  pcfg.viewers_per_replica = 4;
  pcfg.control_period = sim::msec(500);
  vod::PlacementController controller(dep, pcfg);
  for (const auto& entry : catalog.entries()) controller.manage(entry.movie);

  workload::WorkloadConfig wcfg;
  wcfg.arrival_rate_per_s = 1.0;
  wcfg.mean_hold_s = 20.0;
  wcfg.seed = seed;
  workload::SessionWorkload workload(dep.scheduler(), catalog, wcfg);
  for (auto& cn : dep.clients()) workload.add_client(cn->client.get());
  controller.set_demand_source(
      [&](std::map<std::string, std::size_t>& out) {
        workload.fill_demand(out);
      });

  dep.run_for(sim::sec(2.0));  // GCS convergence
  controller.tick_now();       // initial (idle) placement
  controller.start();
  workload.start();
  // Flash crowd on the most popular title from t=20 s to t=40 s.
  dep.scheduler().at(sim::sec(20.0), [&] {
    workload.flash_crowd(0, 0.7, sim::sec(40.0));
  });

  // Crash one replica of the flash-crowd title mid-rebalance (the boost is
  // 5 s old — adds are in flight), reboot it 6 s later.
  const net::NodeId victim = server_nodes[1];
  const vod::PlacementStats& pstats = controller.stats();
  ChaosEvent crash;
  crash.at = sim::sec(25.0);
  crash.kind = ChaosEventKind::kCrash;
  crash.a = victim;
  ChaosEvent reboot;
  reboot.at = sim::sec(31.0);
  reboot.kind = ChaosEventKind::kRestart;
  reboot.a = victim;
  const ChaosPlan plan = ChaosPlan::from_events({crash, reboot});
  ChaosInjector injector(dep, plan);
  injector.set_restart_delegate(
      [&](net::NodeId n, vod::Deployment::ServerNode&) {
        controller.handle_restart(n);
      });
  injector.arm();

  InvariantOptions iopts;
  iopts.replication_floor = pcfg.replication_floor;
  InvariantMonitor monitor(dep, iopts);
  monitor.start();

  dep.run_until(sim::sec(70.0));

  EXPECT_EQ(injector.events_applied(), plan.events().size());
  EXPECT_TRUE(monitor.ok())
      << "churn soak violated invariants; seed " << seed << "\n"
      << monitor.report();
  EXPECT_GT(monitor.checks_run(), 500u);
  // The workload actually churned and the controller actually worked.
  EXPECT_GT(workload.stats().arrivals, 40u);
  EXPECT_GT(workload.stats().departures, 20u);
  EXPECT_GT(pstats.adds, 24u);  // beyond the initial one-copy placement
  // The rebooted server rejoined empty and was re-registered by the
  // controller (it held a share of a 24-title catalog — some title wants it
  // back immediately, via the delegate or the next reconcile tick).
  EXPECT_GE(pstats.reregistrations, 1u) << "restart recovery never ran";
  // The flash-crowd title ended the run at or above its floor and, during
  // the crowd, demanded more than the floor's worth of replicas.
  const std::string& hot = catalog.entry(0).movie->name();
  EXPECT_GE(controller.model().replicas(hot).size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CatalogChurnSoak, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

const auto kSoakNamer =
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return std::string(std::get<1>(info.param) ? "wan" : "lan") + "_seed" +
             std::to_string(std::get<0>(info.param));
    };

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosSoak,
    ::testing::Combine(::testing::Range(1, 23), ::testing::Bool()),
    kSoakNamer);

// The corrupting sweep runs a subset of the seeds: every plan differs from
// the plain sweep's anyway (the extra fault class changes the whole
// schedule), so a handful of seeds buys coverage without doubling the tier.
INSTANTIATE_TEST_SUITE_P(
    CorruptSweep, CorruptChaosSoak,
    ::testing::Combine(::testing::Values(3, 7, 11, 16, 20), ::testing::Bool()),
    kSoakNamer);

}  // namespace
}  // namespace ftvod::testing
