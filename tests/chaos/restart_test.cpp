// Directed crash → restart → re-crash scenario, driven through the chaos
// injector with a hand-scripted plan. The paper's claim under test: a
// server rebooted after a crash rejoins the movie group as a fresh member,
// the kSpread re-distribution hands it load again, and clients ride
// through both crashes without a visible glitch beyond the takeover bound.
#include <gtest/gtest.h>

#include "../integration/vod_testbed.hpp"
#include "testing/chaos.hpp"
#include "testing/invariants.hpp"

namespace ftvod::testing {
namespace {

using vod::testing::VodTestBed;

TEST(ChaosRestart, RestartedServerAttractsLoadAndSurvivesRecrash) {
  VodTestBed bed(/*n_servers=*/3, /*n_clients=*/3);
  bed.watch_all();
  bed.run_for(5.0);

  const int victim = bed.serving_server(0);
  ASSERT_GE(victim, 0);
  const net::NodeId vnode = bed.server_host(victim);
  const sim::Time t0 = bed.deployment().scheduler().now();

  const auto scripted = [vnode](sim::Time at, ChaosEventKind kind) {
    ChaosEvent e;
    e.at = at;
    e.kind = kind;
    e.a = vnode;
    return e;
  };
  std::vector<ChaosEvent> events;
  events.push_back(scripted(t0 + sim::sec(1.0), ChaosEventKind::kCrash));
  events.push_back(scripted(t0 + sim::sec(7.0), ChaosEventKind::kRestart));
  events.push_back(scripted(t0 + sim::sec(17.0), ChaosEventKind::kCrash));
  events.push_back(scripted(t0 + sim::sec(23.0), ChaosEventKind::kRestart));

  ChaosInjector injector(bed.deployment(), ChaosPlan::from_events(events));
  injector.arm();
  InvariantMonitor monitor(bed.deployment());
  monitor.start();

  // Through the first crash and restart; let the rebalance settle.
  bed.run_for(12.0);
  ASSERT_EQ(injector.events_applied(), 2u);
  vod::Deployment::ServerNode* sn = bed.deployment().find_server(vnode);
  ASSERT_NE(sn, nullptr);
  ASSERT_TRUE(sn->server != nullptr);
  // 3 clients / 3 servers under kSpread: the rejoined (empty) server must
  // be pulled back into service, not left idle.
  EXPECT_GE(sn->server->session_count(), 1u)
      << "restarted server attracted no load";

  // The takeover machinery really ran (twice: crash, then rejoin).
  std::uint64_t takeovers = 0;
  for (int i = 0; i < bed.server_count(); ++i) {
    if (i == victim) continue;  // the victim's stats died with it
    takeovers += bed.server(i).stats().takeovers;
  }
  EXPECT_GE(takeovers, 1u);

  // Re-crash the same server and let the second restart land.
  std::vector<std::uint64_t> displayed_before;
  for (auto& cn : bed.deployment().clients()) {
    displayed_before.push_back(cn->client->counters().displayed);
  }
  bed.run_for(13.0);
  EXPECT_EQ(injector.events_applied(), 4u);

  // Every client kept streaming through the whole sequence: ~13 s of video
  // at 30 fps, allowing for the takeover refills.
  std::size_t i = 0;
  for (auto& cn : bed.deployment().clients()) {
    const std::uint64_t gained =
        cn->client->counters().displayed - displayed_before[i];
    EXPECT_GE(gained, 250u) << "client " << i << " glitched";
    ++i;
  }

  // And the monitor agrees nothing exceeded the configured bounds.
  EXPECT_TRUE(monitor.ok()) << monitor.report();
}

}  // namespace
}  // namespace ftvod::testing
