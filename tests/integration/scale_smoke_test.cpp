// Tier-1 scale regression guard. A ~500-client city slice — Zipf catalog,
// two gateway daemons fanning out to edge hosts, demand-driven placement,
// Poisson churn on part of the pool — runs for a few simulated seconds and
// the test fails if the per-frame allocation count or the per-client event
// rate regresses past the committed thresholds. This is the cheap canary
// for the full 10k-client macro run in bench/city_scale.cpp: an O(clients)
// periodic scan or a new per-frame allocation sneaks in, this trips in the
// default ctest tier rather than in a benchmark nobody re-runs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "mpeg/catalog_gen.hpp"
#include "util/rng.hpp"
#include "vod/placement.hpp"
#include "vod/service.hpp"
#include "workload/session_workload.hpp"

// Counting allocator, same contract as scheduler_slab_test: under ASan the
// global allocator belongs to the sanitizer, so the hooks compile out and
// the allocation assertions are skipped (throughput assertions still run).
#if defined(__SANITIZE_ADDRESS__)
#define FTVOD_COUNTING_ALLOC 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FTVOD_COUNTING_ALLOC 0
#endif
#endif
#ifndef FTVOD_COUNTING_ALLOC
#define FTVOD_COUNTING_ALLOC 1
#endif

namespace {
std::uint64_t g_allocs = 0;
constexpr bool kCountingAlloc = FTVOD_COUNTING_ALLOC != 0;
}  // namespace

#if FTVOD_COUNTING_ALLOC
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // FTVOD_COUNTING_ALLOC

namespace ftvod::vod {
namespace {

// Committed regression thresholds. Measured steady state at commit time
// (release build, 500 clients, ~430 watching): 9.8 allocs/frame — all of
// it session churn and control-loop bookkeeping; the frame send path
// itself is proven allocation-free by scheduler_slab_test — and 160
// events/(client*sim-s). The event rate is fully deterministic (same seed,
// same count), so its headroom is pure regression budget; the allocation
// headroom additionally absorbs stdlib drift. An O(clients) periodic scan
// or a per-event allocation blows past either bound immediately.
constexpr double kMaxAllocsPerFrame = 20.0;
constexpr double kMaxEventsPerClientSimSecond = 200.0;

TEST(ScaleSmoke, FiveHundredClientsStayWithinPerFrameBudgets) {
  constexpr int kServers = 4;
  constexpr int kGateways = 2;
  constexpr int kClients = 500;
  constexpr int kChurnPool = 150;  // tail of the pool churns via Poisson
  constexpr double kMeasureSimSeconds = 4.0;

  const auto wall0 = std::chrono::steady_clock::now();
  Deployment dep(20260808);
  std::vector<net::NodeId> server_nodes;
  for (int i = 0; i < kServers; ++i) {
    server_nodes.push_back(dep.add_host("server" + std::to_string(i)));
  }
  std::vector<net::NodeId> gw_nodes;
  for (int i = 0; i < kGateways; ++i) {
    gw_nodes.push_back(dep.add_host("gw" + std::to_string(i)));
  }
  std::vector<net::NodeId> edge_nodes;
  for (int i = 0; i < kClients; ++i) {
    edge_nodes.push_back(dep.add_edge_host("edge" + std::to_string(i)));
  }
  for (net::NodeId s : server_nodes) dep.start_server(s);
  std::vector<Deployment::GatewayNode*> gws;
  for (net::NodeId g : gw_nodes) gws.push_back(&dep.start_gateway(g));
  for (int i = 0; i < kClients; ++i) {
    dep.start_client(edge_nodes[i], *gws[i % kGateways]);
  }

  mpeg::CatalogSpec cspec;
  cspec.titles = 40;
  cspec.min_duration_s = 300.0;
  cspec.max_duration_s = 600.0;
  const auto catalog = mpeg::GeneratedCatalog::generate(1, cspec);

  PlacementConfig pcfg;
  pcfg.replication_floor = 2;
  pcfg.viewers_per_replica = 50;
  PlacementController controller(dep, pcfg);
  for (const auto& e : catalog.entries()) controller.manage(e.movie);

  dep.run_for(sim::sec(2.0));  // GCS convergence
  controller.tick_now();
  controller.start();

  // The bulk of the pool watches steadily (ranks drawn from the catalog's
  // own law); the tail churns through the Poisson driver. Watches are
  // staggered so session-open traffic ramps rather than detonates.
  util::Rng pick(99);
  for (int i = 0; i < kClients - kChurnPool; ++i) {
    const std::size_t rank = catalog.sample_rank(pick.uniform());
    VodClient* c = dep.clients()[static_cast<std::size_t>(i)]->client.get();
    dep.scheduler().at(
        dep.scheduler().now() + static_cast<sim::Duration>(i) * 10'000,
        [c, &catalog, rank] { c->watch(catalog.entry(rank).movie->name()); });
  }
  workload::WorkloadConfig wcfg;
  wcfg.arrival_rate_per_s = 20.0;
  wcfg.mean_hold_s = 5.0;
  workload::SessionWorkload churn(dep.scheduler(), catalog, wcfg);
  for (int i = kClients - kChurnPool; i < kClients; ++i) {
    churn.add_client(dep.clients()[static_cast<std::size_t>(i)]->client.get());
  }
  churn.start();

  dep.run_for(sim::sec(8.0));  // opens complete, buffers fill, rates settle

  std::size_t watching = 0;
  for (auto& cn : dep.clients()) {
    if (cn->client->watching()) ++watching;
  }
  ASSERT_GT(watching, 350u) << "steady state never formed";

  auto frames_sent = [&] {
    std::uint64_t sum = 0;
    for (auto& sn : dep.servers()) {
      if (sn->server) sum += sn->server->stats().frames_sent;
    }
    return sum;
  };

  const std::uint64_t allocs0 = g_allocs;
  const std::uint64_t events0 = dep.scheduler().executed_events();
  const std::uint64_t frames0 = frames_sent();
  dep.run_for(sim::sec(kMeasureSimSeconds));
  const std::uint64_t allocs = g_allocs - allocs0;
  const std::uint64_t events = dep.scheduler().executed_events() - events0;
  const std::uint64_t frames = frames_sent() - frames0;

  ASSERT_GT(frames, 10'000u);  // ~440 clients x 30 fps x 4 s
  const double allocs_per_frame =
      static_cast<double>(allocs) / static_cast<double>(frames);
  const double events_per_client_s =
      static_cast<double>(events) /
      (static_cast<double>(kClients) * kMeasureSimSeconds);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();

  RecordProperty("watching", static_cast<int>(watching));
  RecordProperty("frames", static_cast<int>(frames));
  RecordProperty("events", static_cast<int>(events));
  std::printf(
      "[scale_smoke] watching=%zu frames=%llu events=%llu "
      "allocs/frame=%.3f events/(client*sim-s)=%.1f wall=%.1fs\n",
      watching, static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(events), allocs_per_frame,
      events_per_client_s, wall_s);

  if (kCountingAlloc) {
    EXPECT_LT(allocs_per_frame, kMaxAllocsPerFrame)
        << "per-frame allocation regression (steady state must stay on the "
           "slabs/pools)";
  }
  EXPECT_LT(events_per_client_s, kMaxEventsPerClientSimSecond)
      << "per-client event-rate regression (an O(clients) or O(titles) "
         "periodic scan crept into the hot path?)";
  // Generous wall cap below the CTest TIMEOUT: catches runaway slowness
  // with a readable message before ctest kills the binary.
  EXPECT_LT(wall_s, 90.0);
}

}  // namespace
}  // namespace ftvod::vod
