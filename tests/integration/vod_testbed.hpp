// End-to-end test bed: a Deployment with N server hosts and M client hosts,
// all GCS daemons started at t=0 (so the daemon view converges once), a
// shared movie replicated on every server, and helpers to locate the server
// currently transmitting to a client.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "vod/service.hpp"

namespace ftvod::vod::testing {

class VodTestBed {
 public:
  /// `defer_last_n` server hosts are registered but not started; use
  /// start_deferred() to bring them up mid-test ("a new server is brought
  /// up on the fly").
  VodTestBed(int n_servers, int n_clients,
             net::LinkQuality quality = net::lan_quality(),
             std::uint64_t seed = 42, VodParams params = {},
             double movie_minutes = 5.0, int defer_last_n = 0)
      : dep_(seed, quality, params) {
    for (int i = 0; i < n_servers; ++i) {
      server_hosts_.push_back(dep_.add_host("server" + std::to_string(i)));
    }
    for (int i = 0; i < n_clients; ++i) {
      client_hosts_.push_back(dep_.add_host("client" + std::to_string(i)));
    }
    movie_ = mpeg::Movie::synthetic("feature", movie_minutes * 60.0);
    for (int i = 0; i < n_servers - defer_last_n; ++i) {
      auto& sn = dep_.start_server(server_hosts_[i]);
      sn.server->add_movie(movie_);
    }
    for (int i = 0; i < n_clients; ++i) {
      dep_.start_client(client_hosts_[i]);
    }
    // Let the daemon views and movie groups converge.
    dep_.run_for(sim::sec(2.0));
  }

  /// Starts a previously deferred server host and gives it the movie.
  VodServer& start_deferred(int i) {
    auto& sn = dep_.start_server(server_hosts_[i]);
    sn.server->add_movie(movie_);
    return *sn.server;
  }

  VodClient& client(int i = 0) { return *dep_.clients()[i]->client; }
  VodServer& server(int i) { return *dep_.servers()[i]->server; }
  int server_count() {
    return static_cast<int>(dep_.servers().size());
  }

  void watch_all(double capability_fps = 0.0) {
    for (auto& cn : dep_.clients()) {
      cn->client->watch(movie_->name(), capability_fps);
    }
  }

  /// Index of the server currently transmitting to client i, or -1.
  int serving_server(int i = 0) {
    const std::uint64_t id = client(i).client_id();
    for (std::size_t s = 0; s < dep_.servers().size(); ++s) {
      if (dep_.servers()[s]->server->serves(id)) return static_cast<int>(s);
    }
    return -1;
  }

  void crash_server(int i) { dep_.crash(server_hosts_[i]); }

  /// Brings up a brand-new server host (pre-registered in the GCS peer
  /// list is not possible post-hoc, so the bed pre-allocates one spare).
  Deployment& deployment() { return dep_; }
  std::shared_ptr<const mpeg::Movie> movie() const { return movie_; }
  net::NodeId server_host(int i) const { return server_hosts_[i]; }

  void run_for(double seconds) { dep_.run_for(sim::sec(seconds)); }

 private:
  Deployment dep_;
  std::vector<net::NodeId> server_hosts_;
  std::vector<net::NodeId> client_hosts_;
  std::shared_ptr<const mpeg::Movie> movie_;
};

}  // namespace ftvod::vod::testing
