// Scale and partition integration: many clients, multiple movies across
// overlapping replica sets, and network partitions between servers.
#include <gtest/gtest.h>

#include "vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(Scale, NineClientsThreeServers) {
  VodTestBed bed(3, 9);
  bed.watch_all();
  bed.run_for(15.0);
  std::size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    const std::size_t n = bed.server(s).session_count();
    EXPECT_EQ(n, 3u) << "server " << s;  // perfectly balanced
    total += n;
  }
  EXPECT_EQ(total, 9u);
  for (int c = 0; c < 9; ++c) {
    EXPECT_TRUE(bed.client(c).connected()) << c;
    EXPECT_GT(bed.client(c).counters().displayed, 300u) << c;
  }
}

TEST(Scale, CrashWithManyClientsRedistributesAll) {
  VodTestBed bed(3, 6);
  bed.watch_all();
  bed.run_for(15.0);
  bed.crash_server(0);
  bed.run_for(8.0);
  // All six clients still served, balanced 3/3 across the survivors.
  std::size_t s1 = bed.server(1).session_count();
  std::size_t s2 = bed.server(2).session_count();
  EXPECT_EQ(s1 + s2, 6u);
  EXPECT_LE(s1 > s2 ? s1 - s2 : s2 - s1, 1u);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(bed.client(c).counters().starvation_ticks, 0u) << c;
  }
}

TEST(Scale, TwoMoviesOverlappingReplicaSets) {
  // Servers 0,1 hold "feature" (from the bed); server 1 additionally gets
  // "indie". Clients split across the titles; failures of server 1 move
  // its "feature" clients to 0 but leave "indie" clients orphaned until…
  // there is no other replica, which is exactly k-1 = 0 tolerance.
  VodTestBed bed(2, 2);
  auto indie = mpeg::Movie::synthetic("indie", 300.0);
  bed.server(1).add_movie(indie);
  bed.run_for(1.0);
  bed.client(0).watch("feature");
  bed.client(1).watch("indie");
  bed.run_for(8.0);
  ASSERT_TRUE(bed.client(0).connected());
  ASSERT_TRUE(bed.client(1).connected());
  EXPECT_TRUE(bed.server(1).serves(bed.client(1).client_id()));

  bed.crash_server(1);
  bed.run_for(8.0);
  // "feature" is replicated: its client survives regardless of who served.
  EXPECT_TRUE(bed.server(0).serves(bed.client(0).client_id()) ||
              bed.client(0).counters().displayed > 200);
  // "indie" had one replica: its client starves (k-1 = 0 failures).
  EXPECT_GT(bed.client(1).counters().starvation_ticks, 0u);
}

TEST(Scale, ServerPartitionHealsAndRebalances) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(12.0);
  const int serving = bed.serving_server();
  // Partition the two servers from each other; the client stays with its
  // server's side, so playback continues.
  const auto& dep_servers = bed.deployment().servers();
  bed.deployment().network().partition(
      {{dep_servers[serving]->node,
        bed.deployment().clients()[0]->node},
       {dep_servers[1 - serving]->node}});
  const auto before = bed.client().counters().displayed;
  bed.run_for(8.0);
  EXPECT_GT(bed.client().counters().displayed - before, 200u);

  bed.deployment().network().heal();
  bed.run_for(8.0);
  // After healing, exactly one server serves the client.
  int owners = 0;
  for (int s = 0; s < 2; ++s) {
    if (bed.server(s).serves(bed.client().client_id())) ++owners;
  }
  EXPECT_EQ(owners, 1);
  EXPECT_EQ(bed.client().counters().starvation_ticks, 0u);
}

TEST(Scale, ClientCutOffFromAllServersStarvesThenRecovers) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(12.0);
  // Isolate the client from everything for 4 s: longer than its buffers.
  bed.deployment().network().partition(
      {{bed.deployment().clients()[0]->node}});
  bed.run_for(4.0);
  EXPECT_GT(bed.client().counters().starvation_ticks, 10u);

  bed.deployment().network().heal();
  bed.run_for(18.0);  // GCS merge + reconnect timeout + refill
  const auto before = bed.client().counters().displayed;
  bed.run_for(5.0);
  // Display is running again at full rate.
  EXPECT_GT(bed.client().counters().displayed - before, 120u);
}

TEST(Scale, ManyClientsSurviveSequentialCrashes) {
  VodTestBed bed(3, 4);
  bed.watch_all();
  bed.run_for(15.0);
  bed.crash_server(2);
  bed.run_for(10.0);
  bed.crash_server(1);
  bed.run_for(10.0);
  EXPECT_EQ(bed.server(0).session_count(), 4u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(bed.client(c).playing()) << c;
    // Two takeovers each at worst; the display never froze.
    EXPECT_EQ(bed.client(c).counters().starvation_ticks, 0u) << c;
  }
}

}  // namespace
}  // namespace ftvod::vod
