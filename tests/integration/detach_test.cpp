// Graceful detach (§3: "when a server crashes or detaches"): the server
// leaves its groups in an orderly way, so migration happens without the
// failure-detection delay and with a fresh final state sync.
#include <gtest/gtest.h>

#include "vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(Detach, ClientsMigrateToSurvivor) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(15.0);
  const int serving = bed.serving_server();
  const int other = 1 - serving;

  bed.server(serving).detach();
  bed.run_for(4.0);
  EXPECT_TRUE(bed.server(other).serves(bed.client().client_id()));
  EXPECT_GE(bed.server(other).stats().takeovers, 1u);
  EXPECT_TRUE(bed.server(serving).halted());
  EXPECT_EQ(bed.server(serving).session_count(), 0u);
}

TEST(Detach, SmootherThanCrash) {
  // A graceful detach sends a final fresh sync and skips failure
  // detection: the transition costs fewer duplicates and a shallower
  // buffer dip than a crash of the same server.
  auto measure = [](bool graceful) {
    VodTestBed bed(2, 1, net::lan_quality(), 31);
    bed.watch_all();
    bed.run_for(20.0);
    const auto before = bed.client().counters();
    const int serving = bed.serving_server();
    if (graceful) {
      bed.server(serving).detach();
    } else {
      bed.crash_server(serving);
    }
    bed.run_for(12.0);
    const auto after = bed.client().counters();
    return after.late - before.late;
  };
  const auto dups_detach = measure(true);
  const auto dups_crash = measure(false);
  EXPECT_LT(dups_detach, dups_crash);
}

TEST(Detach, NoStarvationOrSkips) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const auto before = bed.client().counters();
  bed.server(bed.serving_server()).detach();
  bed.run_for(12.0);
  const auto after = bed.client().counters();
  EXPECT_EQ(after.starvation_ticks - before.starvation_ticks, 0u);
  EXPECT_LE(after.skipped - before.skipped, 8u);
  EXPECT_GT(after.displayed - before.displayed, 300u);
}

TEST(Detach, LastReplicaDetachingStrandsClients) {
  // Detaching the only replica is still a service loss — detach is
  // graceful, not magical. The client starves until nothing else helps.
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.server(0).detach();
  bed.run_for(10.0);
  EXPECT_GT(bed.client().counters().starvation_ticks, 0u);
}

TEST(Detach, IdempotentAndAfterCrashSafe) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.server(0).detach();
  bed.server(0).detach();  // no-op
  EXPECT_TRUE(bed.server(0).halted());
  bed.crash_server(1);     // crash the other; nothing to serve, no crash
  bed.run_for(2.0);
  SUCCEED();
}

}  // namespace
}  // namespace ftvod::vod
