// End-to-end integration: a client watches a movie through the full stack
// (GCS + network + server + client) with no failures.
#include <gtest/gtest.h>

#include "vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(EndToEnd, ClientConnectsAndPlays) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_TRUE(bed.client().playing());
  EXPECT_EQ(bed.serving_server(), 0);
  EXPECT_GT(bed.client().counters().displayed, 200u);
}

TEST(EndToEnd, SteadyPlaybackIsSmooth) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(30.0);
  const BufferCounters& c = bed.client().counters();
  // ~28 s of playback at 30 fps.
  EXPECT_GT(c.displayed, 800u);
  // The paper's Fig 4(a): only a handful of frames skipped, all from the
  // startup emergency overflow, none after the buffers settle.
  EXPECT_LT(c.skipped, 15u);
  // On a clean LAN nothing arrives out of order or twice.
  EXPECT_EQ(c.late, 0u);
  EXPECT_EQ(c.starvation_ticks, 0u);
}

TEST(EndToEnd, OccupancySettlesBetweenWaterMarks) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(20.0);  // fill phase (the paper reports ~14 s)
  const auto* buffers = bed.client().buffers();
  ASSERT_NE(buffers, nullptr);
  // Sample for another 20 s: occupancy must stay around the band.
  double min_occ = 1.0, max_occ = 0.0;
  for (int i = 0; i < 200; ++i) {
    bed.run_for(0.1);
    const double occ = buffers->occupancy_fraction();
    min_occ = std::min(min_occ, occ);
    max_occ = std::max(max_occ, occ);
  }
  const VodParams p;
  EXPECT_GT(min_occ, p.low_water_frac - 0.15);
  EXPECT_LT(max_occ, 1.0);
  EXPECT_GT(max_occ, p.low_water_frac);  // it did reach the band
}

TEST(EndToEnd, HardwareBufferFillsAndStaysFull) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const auto* buffers = bed.client().buffers();
  ASSERT_NE(buffers, nullptr);
  // Fig 4(d): the decoder buffer fills within ~10 s and stays near full.
  EXPECT_GT(buffers->hw_bytes(), buffers->hw_capacity_bytes() * 8 / 10);
}

TEST(EndToEnd, StartupEmergencyRampsRate) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(6.0);
  // The startup emergency (empty buffers) must have been requested and the
  // burst must have delivered more frames than the display consumed.
  EXPECT_GE(bed.client().control_stats().emergencies_sent, 1u);
  const auto* buffers = bed.client().buffers();
  ASSERT_NE(buffers, nullptr);
  EXPECT_GT(buffers->total_frames(), 20u);
}

TEST(EndToEnd, FlowControlKeepsRateNearDisplayRate) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(40.0);
  const BufferCounters& c = bed.client().counters();
  // Over a long run, received ~= displayed + buffered: the feedback loop
  // neither drains nor floods the client.
  const double received = static_cast<double>(c.received);
  const double consumed =
      static_cast<double>(c.displayed + bed.client().buffers()->total_frames());
  EXPECT_NEAR(received / consumed, 1.0, 0.05);
  // And both increase and decrease requests were exercised.
  EXPECT_GT(bed.client().control_stats().increases_sent, 0u);
  EXPECT_GT(bed.client().control_stats().decreases_sent, 0u);
}

TEST(EndToEnd, SyncOverheadIsNegligible) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(30.0);
  // Paper: state synchronization consumes less than 1/1000 of the video
  // bandwidth. Compare GCS control bytes of the serving server against the
  // video bytes it pushed.
  const int s = bed.serving_server();
  ASSERT_GE(s, 0);
  const auto video = bed.server(s).data_socket_stats().bytes_sent;
  // Only an upper bound on all control traffic (heartbeats + syncs).
  const auto control =
      bed.deployment().servers()[s]->daemon->socket_stats().bytes_sent;
  EXPECT_GT(video, 0u);
  EXPECT_LT(static_cast<double>(control), 0.05 * static_cast<double>(video));
}

TEST(EndToEnd, TwoClientsSplitAcrossTwoServers) {
  VodTestBed bed(2, 2);
  bed.watch_all();
  bed.run_for(10.0);
  EXPECT_TRUE(bed.client(0).connected());
  EXPECT_TRUE(bed.client(1).connected());
  // Deterministic least-loaded placement: one client per server.
  EXPECT_EQ(bed.server(0).session_count(), 1u);
  EXPECT_EQ(bed.server(1).session_count(), 1u);
}

TEST(EndToEnd, ThreeClientsBalanceTwoOne) {
  VodTestBed bed(2, 3);
  bed.watch_all();
  bed.run_for(10.0);
  const std::size_t s0 = bed.server(0).session_count();
  const std::size_t s1 = bed.server(1).session_count();
  EXPECT_EQ(s0 + s1, 3u);
  EXPECT_LE(s0 > s1 ? s0 - s1 : s1 - s0, 1u);
}

TEST(EndToEnd, MovieAddedOnTheFlyIsServable) {
  VodTestBed bed(1, 1);
  auto late_movie = mpeg::Movie::synthetic("late-addition", 120.0);
  bed.server(0).add_movie(late_movie);
  bed.run_for(1.0);
  bed.client().watch("late-addition");
  bed.run_for(5.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_GT(bed.client().counters().displayed, 50u);
}

TEST(EndToEnd, UnknownMovieNeverConnects) {
  VodTestBed bed(1, 1);
  bed.client().watch("does-not-exist");
  bed.run_for(5.0);
  EXPECT_FALSE(bed.client().connected());
  // Retries back off exponentially (1s, ~2s, ~4s...), so 5 s of asking for
  // a nonexistent movie yields at least two of them.
  EXPECT_GE(bed.client().control_stats().open_retries, 2u);
}

TEST(EndToEnd, ClientStopClosesServerSession) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(8.0);
  ASSERT_EQ(bed.server(0).session_count(), 1u);
  bed.client().stop();
  bed.run_for(3.0);
  EXPECT_EQ(bed.server(0).session_count(), 0u);
}

TEST(EndToEnd, MultipleMoviesOnDisjointServers) {
  // Server 0 holds "feature" (from the bed) plus "indie"; server 1 holds
  // only "feature". A client asking for "indie" must land on server 0.
  VodTestBed bed(2, 2);
  auto indie = mpeg::Movie::synthetic("indie", 120.0);
  bed.server(0).add_movie(indie);
  bed.run_for(1.0);
  bed.client(0).watch("indie");
  bed.client(1).watch("feature");
  bed.run_for(8.0);
  EXPECT_TRUE(bed.client(0).connected());
  EXPECT_TRUE(bed.client(1).connected());
  EXPECT_TRUE(bed.server(0).serves(bed.client(0).client_id()));
}

TEST(EndToEnd, NoIFramesLostOnCleanLan) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(30.0);
  // Fig 4(a): "none of the skipped frames was an I frame".
  EXPECT_EQ(bed.client().counters().overflow_discarded_i_frames, 0u);
}

}  // namespace
}  // namespace ftvod::vod
