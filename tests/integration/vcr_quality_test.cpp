// VCR control (§3) and quality adaptation (§4.3) through the full stack,
// plus WAN behaviour (§6.2).
#include <gtest/gtest.h>

#include "vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(Vcr, PauseStopsDisplayAndTransmission) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.client().pause();
  bed.run_for(1.0);  // let the pause propagate
  const auto displayed = bed.client().counters().displayed;
  const auto sent = bed.server(0).stats().frames_sent;
  bed.run_for(10.0);
  EXPECT_EQ(bed.client().counters().displayed, displayed);
  // Transmission stops too (a few in-flight frames allowed).
  EXPECT_LE(bed.server(0).stats().frames_sent - sent, 3u);
}

TEST(Vcr, ResumeContinuesWhereItPaused) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.client().pause();
  bed.run_for(5.0);
  const std::int64_t at = bed.client().buffers()->last_displayed();
  bed.client().resume();
  bed.run_for(5.0);
  const std::int64_t now = bed.client().buffers()->last_displayed();
  EXPECT_GT(now, at);
  EXPECT_LT(now, at + 200);  // no jump
  // Nothing skipped beyond the usual startup overflow handful.
  EXPECT_LT(bed.client().counters().skipped, 10u);
}

TEST(Vcr, SeekJumpsForward) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.client().seek(6000);  // jump to minute 3+
  bed.run_for(8.0);
  const std::int64_t shown = bed.client().buffers()->last_displayed();
  EXPECT_GE(shown, 6000);
  EXPECT_LT(shown, 6000 + 400);
  EXPECT_TRUE(bed.client().playing());
}

TEST(Vcr, SeekBackward) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(15.0);
  ASSERT_GT(bed.client().buffers()->last_displayed(), 200);
  bed.client().seek(0);
  bed.run_for(8.0);
  const std::int64_t shown = bed.client().buffers()->last_displayed();
  EXPECT_LT(shown, 400);  // re-watching from the start
}

TEST(Vcr, SeekTriggersEmergencyRefill) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const auto before = bed.client().control_stats().emergencies_sent;
  bed.client().seek(8000);
  bed.run_for(5.0);
  // §4.1: random access empties the buffers -> an emergency situation.
  EXPECT_GT(bed.client().control_stats().emergencies_sent, before);
  EXPECT_GT(bed.client().buffers()->total_frames(), 10u);
}

TEST(Vcr, PauseWhileMigrating) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(15.0);
  bed.client().pause();
  bed.run_for(1.0);
  bed.crash_server(bed.serving_server());
  bed.run_for(5.0);
  // The takeover server restores the paused state from the synced record.
  const auto displayed = bed.client().counters().displayed;
  bed.run_for(5.0);
  EXPECT_EQ(bed.client().counters().displayed, displayed);
  bed.client().resume();
  bed.run_for(8.0);
  EXPECT_GT(bed.client().counters().displayed, displayed + 100);
}

TEST(Quality, ReducedRateClientGetsAllIFrames) {
  VodTestBed bed(1, 1);
  bed.watch_all(/*capability_fps=*/10.0);
  bed.run_for(20.0);
  ASSERT_TRUE(bed.client().connected());
  // Steady state (after the startup burst decays): ~10 frames per second.
  const auto at_20s = bed.client().counters().received;
  bed.run_for(10.0);
  const auto received = bed.client().counters().received - at_20s;
  EXPECT_NEAR(static_cast<double>(received), 100.0, 30.0);
  // The server never skipped an I frame: at 10/30 fps the filter keeps the
  // I and P frames; displayed indices must include every GOP's I frame.
  EXPECT_GT(bed.client().counters().displayed, 100u);
}

TEST(Quality, MidStreamQualityChange) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  const auto full_rate_received = bed.client().counters().received;
  bed.client().set_quality(10.0);
  bed.run_for(10.0);
  const auto after = bed.client().counters().received;
  // Reception rate drops to roughly a third.
  EXPECT_LT(after - full_rate_received, full_rate_received / 2 + 80);
}

TEST(Wan, PlaybackWorksWithLoss) {
  VodTestBed bed(1, 1, net::wan_quality(0.01), 7);
  bed.watch_all();
  bed.run_for(30.0);
  const BufferCounters& c = bed.client().counters();
  EXPECT_TRUE(bed.client().connected());
  EXPECT_GT(c.displayed, 700u);
  // Fig 5(a): a steady trickle of skipped frames from network loss.
  EXPECT_GT(c.skipped, 3u);
  // Quality inferior to the LAN but the stream survives.
  const double skip_rate = static_cast<double>(c.skipped) /
                           static_cast<double>(c.displayed + c.skipped);
  EXPECT_LT(skip_rate, 0.08);
}

TEST(Wan, JitterReorderingAbsorbedBySoftwareBuffer) {
  net::LinkQuality q = net::wan_quality(0.0);  // jitter only, no loss
  VodTestBed bed(1, 1, q, 11);
  bed.watch_all();
  bed.run_for(30.0);
  const BufferCounters& c = bed.client().counters();
  // With no loss, re-ordering alone must not cost (non-startup) frames:
  // the software buffer re-orders them (small startup overflow allowed).
  EXPECT_LT(c.late, 10u);
  EXPECT_GT(c.displayed, 700u);
}

TEST(Wan, CrashRecoveryOnWan) {
  VodTestBed bed(2, 1, net::wan_quality(0.01), 13);
  bed.watch_all();
  bed.run_for(25.0);
  const auto before = bed.client().counters();
  bed.crash_server(bed.serving_server());
  bed.run_for(15.0);
  const auto after = bed.client().counters();
  EXPECT_GT(after.displayed - before.displayed, 350u);
  // Fig 5(b): bursts of overflow discards accompany the refill.
  EXPECT_GE(after.overflow_discards, before.overflow_discards);
}

}  // namespace
}  // namespace ftvod::vod
