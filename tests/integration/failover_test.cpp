// Fault tolerance and migration integration tests: the paper's headline
// claims — transparent takeover on crash, load-balancing migration to a
// freshly started server, and k-1 failure tolerance with k replicas.
#include <gtest/gtest.h>

#include "vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(Failover, CrashMigratesClientToSurvivor) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const int serving = bed.serving_server();
  ASSERT_GE(serving, 0);
  const int other = 1 - serving;

  bed.crash_server(serving);
  bed.run_for(5.0);
  EXPECT_TRUE(bed.server(other).serves(bed.client().client_id()));
  EXPECT_GE(bed.server(other).stats().takeovers, 1u);
}

TEST(Failover, PlaybackContinuesAcrossCrash) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const auto before = bed.client().counters();
  bed.crash_server(bed.serving_server());
  bed.run_for(10.0);
  const auto after = bed.client().counters();
  // ~10 s of further playback at 30 fps, minus at most the irregularity.
  EXPECT_GT(after.displayed - before.displayed, 250u);
}

TEST(Failover, CrashIrregularityIsSmall) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const auto before = bed.client().counters();
  bed.crash_server(bed.serving_server());
  bed.run_for(15.0);
  const auto after = bed.client().counters();
  // Fig 4(a): no more than about six frames skipped per emergency; allow
  // slack for the overflow burst after the refill.
  EXPECT_LT(after.skipped - before.skipped, 15u);
  // The buffers absorbed the outage: display never starved.
  EXPECT_EQ(after.starvation_ticks - before.starvation_ticks, 0u);
  // Duplicates from the conservative resume offset show up as late frames
  // (Fig 4(b)).
  EXPECT_GT(after.late - before.late, 0u);
}

TEST(Failover, ClientObliviousToMigration) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(20.0);
  bed.crash_server(bed.serving_server());
  bed.run_for(5.0);
  // The client still believes in the same session; it merely saw the
  // session-group membership change.
  EXPECT_TRUE(bed.client().connected());
  EXPECT_TRUE(bed.client().playing());
  EXPECT_GE(bed.client().control_stats().session_views, 2u);
}

TEST(Failover, SoftwareBufferDrainsToNearZeroOnCrash) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(25.0);
  bed.crash_server(bed.serving_server());
  // Fig 4(c): during the takeover the software buffer empties...
  std::size_t min_sw = SIZE_MAX;
  for (int i = 0; i < 40; ++i) {
    bed.run_for(0.1);
    min_sw = std::min(min_sw, bed.client().buffers()->sw_frames());
  }
  EXPECT_LT(min_sw, 5u);
  // ...and refills once the emergency burst kicks in.
  bed.run_for(15.0);
  EXPECT_GT(bed.client().buffers()->sw_frames(), 10u);
}

TEST(Failover, HardwareBufferDipsToRoughlyThreeQuarters) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(25.0);
  bed.crash_server(bed.serving_server());
  std::size_t min_hw = SIZE_MAX;
  for (int i = 0; i < 40; ++i) {
    bed.run_for(0.1);
    min_hw = std::min(min_hw, bed.client().buffers()->hw_bytes());
  }
  // Fig 4(d): the decoder buffer drops to ~3/4 of capacity, never empty.
  const std::size_t cap = bed.client().buffers()->hw_capacity_bytes();
  EXPECT_GT(min_hw, cap / 2);
  EXPECT_LT(min_hw, cap);
}

TEST(Failover, NewServerTriggersLoadBalanceMigration) {
  // One server carries two clients; a second server is brought up on the
  // fly and must relieve it of one.
  VodTestBed bed(2, 2, net::lan_quality(), 42, VodParams{}, 5.0,
                 /*defer_last_n=*/1);
  bed.watch_all();
  bed.run_for(15.0);
  ASSERT_EQ(bed.server(0).session_count(), 2u);

  VodServer& fresh = bed.start_deferred(1);
  bed.run_for(8.0);
  EXPECT_EQ(bed.server(0).session_count(), 1u);
  EXPECT_EQ(fresh.session_count(), 1u);
  EXPECT_GE(bed.server(0).stats().migrations_out, 1u);
  EXPECT_GE(fresh.stats().takeovers, 1u);
}

TEST(Failover, LoadBalanceMigrationIsSmooth) {
  VodTestBed bed(2, 1, net::lan_quality(), 42, VodParams{}, 5.0,
                 /*defer_last_n=*/1);
  bed.watch_all();
  bed.run_for(20.0);
  const auto before = bed.client().counters();
  bed.start_deferred(1);
  bed.run_for(12.0);
  const auto after = bed.client().counters();
  // The single client may or may not migrate (both placements are balanced
  // for one client); if it did, the transition must have been smooth.
  EXPECT_EQ(after.starvation_ticks - before.starvation_ticks, 0u);
  EXPECT_LT(after.skipped - before.skipped, 15u);
  EXPECT_GT(after.displayed - before.displayed, 300u);
}

TEST(Failover, KReplicasTolerateKMinusOneFailures) {
  // Four servers: crash three, one after another. The paper: "If a movie is
  // replicated k times, then up to k-1 failures are tolerated."
  VodTestBed bed(4, 1);
  bed.watch_all();
  bed.run_for(15.0);
  std::uint64_t displayed_before = bed.client().counters().displayed;
  for (int round = 0; round < 3; ++round) {
    const int victim = bed.serving_server();
    ASSERT_GE(victim, 0) << "round " << round;
    bed.crash_server(victim);
    bed.run_for(12.0);
    const std::uint64_t now_displayed = bed.client().counters().displayed;
    EXPECT_GT(now_displayed - displayed_before, 250u)
        << "stalled after failure " << round + 1;
    displayed_before = now_displayed;
  }
  EXPECT_TRUE(bed.client().playing());
  EXPECT_GE(bed.serving_server(), 0);
}

TEST(Failover, TwoConcurrentCrashes) {
  VodTestBed bed(3, 1);
  bed.watch_all();
  bed.run_for(15.0);
  // Crash both non-serving servers at once; the serving one is untouched,
  // then crash it too — the last survivor must pick the client up.
  const int serving = bed.serving_server();
  for (int s = 0; s < 3; ++s) {
    if (s != serving) bed.crash_server(s);
  }
  bed.run_for(5.0);
  EXPECT_TRUE(bed.server(serving).serves(bed.client().client_id()));
  EXPECT_GT(bed.client().counters().displayed, 300u);
}

TEST(Failover, CrashOfIdleServerIsInvisible) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(22.0);  // past the startup-refill settle
  const int serving = bed.serving_server();
  const auto before = bed.client().counters();
  bed.crash_server(1 - serving);  // the spare dies
  bed.run_for(10.0);
  const auto after = bed.client().counters();
  EXPECT_EQ(after.skipped, before.skipped);
  EXPECT_EQ(after.late, before.late);
}

TEST(Failover, MigrationPreservesOffsetRoughly) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(20.0);
  const std::int64_t before = bed.client().buffers()->last_displayed();
  bed.crash_server(bed.serving_server());
  bed.run_for(10.0);
  const std::int64_t after = bed.client().buffers()->last_displayed();
  // 10 s at 30 fps = 300 frames of progress, modulo the irregularity.
  EXPECT_NEAR(static_cast<double>(after - before), 300.0, 45.0);
}

class FailoverSeeds : public ::testing::TestWithParam<unsigned> {};

// The failover path must be robust across timing variations (different
// seeds shift jitter, heartbeat phases, crash instants).
TEST_P(FailoverSeeds, CrashRecoveryAlwaysSmooth) {
  VodTestBed bed(2, 1, net::lan_quality(), GetParam() * 1000 + 17);
  bed.watch_all();
  bed.run_for(22.0 + (GetParam() % 7) * 0.13);  // settled; vary crash phase
  const auto before = bed.client().counters();
  const int victim = bed.serving_server();
  ASSERT_GE(victim, 0);
  bed.crash_server(victim);
  bed.run_for(15.0);
  const auto after = bed.client().counters();
  EXPECT_EQ(after.starvation_ticks - before.starvation_ticks, 0u)
      << "display starved";
  EXPECT_LT(after.skipped - before.skipped, 20u);
  EXPECT_GT(after.displayed - before.displayed, 400u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverSeeds, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace ftvod::vod
