#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <random>
#include <deque>

namespace ftvod::util {
namespace {

TEST(RingBuffer, BasicFifo) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), 3u);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));  // dropped
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_TRUE(rb.push(5));
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 5);
  EXPECT_EQ(rb.pop(), std::nullopt);
}

TEST(RingBuffer, FrontAndAt) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(1), 20);
  EXPECT_EQ(rb.at(2), 30);
  rb.pop();
  rb.push(40);
  rb.push(50);  // wraps
  EXPECT_EQ(rb.at(0), 20);
  EXPECT_EQ(rb.at(3), 50);
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(3));
  EXPECT_EQ(rb.front(), 3);
}

TEST(RingBuffer, ZeroCapacityClampsToOne) {
  RingBuffer<int> rb(0);
  EXPECT_EQ(rb.capacity(), 1u);
  EXPECT_TRUE(rb.push(1));
  EXPECT_FALSE(rb.push(2));
}

TEST(RingBuffer, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(7));
  auto p = rb.pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(**p, 7);
}

class RingBufferProperty : public ::testing::TestWithParam<unsigned> {};

// Model-based check against std::deque under random push/pop sequences.
TEST_P(RingBufferProperty, MatchesDequeModel) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> op(0, 2);
  RingBuffer<int> rb(8);
  std::deque<int> model;
  int next = 0;
  for (int i = 0; i < 2000; ++i) {
    switch (op(gen)) {
      case 0:
      case 1: {  // push biased 2:1
        const bool ok = rb.push(next);
        if (model.size() < 8) {
          EXPECT_TRUE(ok);
          model.push_back(next);
        } else {
          EXPECT_FALSE(ok);
        }
        ++next;
        break;
      }
      case 2: {
        auto v = rb.pop();
        if (model.empty()) {
          EXPECT_EQ(v, std::nullopt);
        } else {
          ASSERT_TRUE(v.has_value());
          EXPECT_EQ(*v, model.front());
          model.pop_front();
        }
        break;
      }
    }
    ASSERT_EQ(rb.size(), model.size());
    for (std::size_t k = 0; k < model.size(); ++k) {
      ASSERT_EQ(rb.at(k), model[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingBufferProperty, ::testing::Range(0u, 6u));

}  // namespace
}  // namespace ftvod::util
