#include "util/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftvod::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() {
    Log::reset();
    Log::set_sink([this](std::string_view line) {
      lines.emplace_back(line);
    });
  }
  ~LogTest() override { Log::reset(); }
  std::vector<std::string> lines;
};

TEST_F(LogTest, LevelFiltering) {
  Log::set_level(LogLevel::kWarn);
  log_debug("t", "hidden");
  log_info("t", "hidden too");
  log_warn("t", "visible");
  log_error("t", "also visible");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("visible"), std::string::npos);
  EXPECT_NE(lines[1].find("ERROR"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  log_error("t", "nope");
  EXPECT_TRUE(lines.empty());
}

TEST_F(LogTest, ComponentAndMessageFormatted) {
  Log::set_level(LogLevel::kInfo);
  log_info("gcs", "view ", 42, " installed");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("gcs: view 42 installed"), std::string::npos);
}

TEST_F(LogTest, TimeSourceStampsSimSeconds) {
  Log::set_level(LogLevel::kInfo);
  Log::set_time_source([] { return std::int64_t{1'500'000}; });  // 1.5 s
  log_info("t", "stamped");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[1.500000s]"), std::string::npos);
}

TEST_F(LogTest, EnabledMatchesLevel) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
}

}  // namespace
}  // namespace ftvod::util
