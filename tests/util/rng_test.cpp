#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace ftvod::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdges) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

}  // namespace
}  // namespace ftvod::util
