#include "util/codec.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace ftvod::util {
namespace {

TEST(Codec, RoundTripPrimitives) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1'000'000'000'000);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  const Bytes bytes = w.buffer();

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1'000'000'000'000);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Codec, RoundTripStringsAndBlobs) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string(10'000, 'x'));
  Bytes blob{std::byte{1}, std::byte{2}, std::byte{3}};
  w.blob(blob);
  w.blob({});
  const Bytes bytes = w.buffer();

  Reader r(bytes);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(10'000, 'x'));
  EXPECT_EQ(r.blob(), blob);
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReaderOverrunSetsError) {
  Writer w;
  w.u16(7);
  const Bytes bytes = w.buffer();
  Reader r(bytes);
  EXPECT_EQ(r.u16(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // overrun
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  // Error is sticky.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedStringFailsSafely) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  const Bytes bytes = w.buffer();
  Reader r(bytes);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Codec, EmptyBufferReads) {
  Reader r(std::span<const std::byte>{});
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Codec, ExtremeValues) {
  Writer w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i32(std::numeric_limits<std::int32_t>::min());
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  const Bytes bytes = w.buffer();
  Reader r(bytes);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -0.0);
}

class CodecFuzz : public ::testing::TestWithParam<unsigned> {};

// Random byte strings must never crash the reader and must preserve the
// invariant: consumed bytes + remaining == total.
TEST_P(CodecFuzz, RandomBytesNeverCrash) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> len(0, 64);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes data;
    const int n = len(gen);
    data.reserve(n);
    for (int i = 0; i < n; ++i) {
      data.push_back(static_cast<std::byte>(byte(gen)));
    }
    Reader r(data);
    // A pseudo-random decode schedule.
    for (int op = 0; op < 16; ++op) {
      switch (byte(gen) % 6) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u16(); break;
        case 2: (void)r.u32(); break;
        case 3: (void)r.u64(); break;
        case 4: (void)r.str(); break;
        case 5: (void)r.blob(); break;
      }
    }
    EXPECT_LE(r.remaining(), data.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(0u, 8u));

// Round-trip property over random structured payloads.
class CodecProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecProperty, StructuredRoundTrip) {
  std::mt19937 gen(GetParam() * 7919 + 13);
  std::uniform_int_distribution<std::uint64_t> u64d;
  std::uniform_int_distribution<int> strlen_d(0, 300);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t a = u64d(gen);
    const std::uint32_t b = static_cast<std::uint32_t>(u64d(gen));
    std::string s(static_cast<std::size_t>(strlen_d(gen)), ' ');
    for (char& c : s) c = static_cast<char>('a' + (u64d(gen) % 26));

    Writer w;
    w.u64(a);
    w.str(s);
    w.u32(b);
    const Bytes bytes = w.buffer();
    Reader r(bytes);
    EXPECT_EQ(r.u64(), a);
    EXPECT_EQ(r.str(), s);
    EXPECT_EQ(r.u32(), b);
    EXPECT_TRUE(r.done());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range(0u, 6u));

}  // namespace
}  // namespace ftvod::util
