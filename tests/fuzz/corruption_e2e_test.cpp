// Full-stack proof that in-flight damage behaves exactly like loss: a
// 30-second run over a LAN whose links flip bits in 0.5 % of datagrams,
// truncate a few more, and fall into Gilbert–Elliott loss bursts. The
// service must hold every invariant, keep the client within 2x of the
// stall budget of an equally lossy (but damage-free) link, and account
// for every damaged datagram it discarded.
#include <gtest/gtest.h>

#include "../integration/vod_testbed.hpp"
#include "testing/invariants.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

net::LinkQuality bursty_lan() {
  net::LinkQuality q = net::lan_quality();
  q.p_good_to_bad = 0.002;
  q.p_bad_to_good = 0.25;
  q.loss_bad = 0.4;
  return q;
}

struct RunOutcome {
  std::uint64_t displayed = 0;
  std::uint64_t starvation_ticks = 0;
  std::uint64_t skipped = 0;
  std::uint64_t corrupt_dropped = 0;      // integrity-failed datagrams
  std::uint64_t corrupted_in_flight = 0;  // damage the network injected
  bool connected = false;
  bool invariants_ok = false;
  std::string report;
};

RunOutcome run(const net::LinkQuality& q, std::uint64_t seed) {
  VodTestBed bed(2, 1, q, seed);
  ftvod::testing::InvariantMonitor monitor(bed.deployment());
  monitor.start();
  bed.watch_all();
  bed.run_for(30.0);

  RunOutcome out;
  out.connected = bed.client().connected();
  out.displayed = bed.client().counters().displayed;
  out.starvation_ticks = bed.client().counters().starvation_ticks;
  out.skipped = bed.client().counters().skipped;
  out.corrupt_dropped = bed.client().data_socket_stats().corrupt_dropped;
  for (auto& sn : bed.deployment().servers()) {
    if (sn->daemon) {
      out.corrupt_dropped += sn->daemon->socket_stats().corrupt_dropped;
    }
    if (sn->server) {
      out.corrupt_dropped += sn->server->data_socket_stats().corrupt_dropped;
    }
  }
  for (auto& sn : bed.deployment().servers()) {
    out.corrupted_in_flight +=
        bed.deployment().network().stats(sn->node).corrupted +
        bed.deployment().network().stats(sn->node).truncated;
  }
  for (auto& cn : bed.deployment().clients()) {
    out.corrupted_in_flight +=
        bed.deployment().network().stats(cn->node).corrupted +
        bed.deployment().network().stats(cn->node).truncated;
  }
  out.invariants_ok = monitor.ok();
  out.report = monitor.report();
  return out;
}

TEST(CorruptionEndToEnd, DamageBehavesLikeLoss) {
  // The damage-free control: the same burst regime, with the corruption
  // and truncation probabilities converted into plain i.i.d. loss.
  net::LinkQuality loss_only = bursty_lan();
  loss_only.loss = 0.006;

  net::LinkQuality hostile = bursty_lan();
  hostile.corrupt = 0.005;
  hostile.corrupt_bits = 3;
  hostile.truncate = 0.001;

  const RunOutcome base = run(loss_only, 42);
  const RunOutcome dmg = run(hostile, 42);

  ASSERT_TRUE(base.connected);
  ASSERT_TRUE(base.invariants_ok) << base.report;

  // The run completes and plays essentially the whole 30 s.
  ASSERT_TRUE(dmg.connected);
  EXPECT_TRUE(dmg.invariants_ok) << dmg.report;
  EXPECT_GT(dmg.displayed, 700u);

  // Damage was actually injected, and every datagram it reached was
  // caught by the integrity framing — none crashed a decoder, none
  // produced a message nobody sent, all were dropped and counted. (The
  // in-flight count is larger: some damaged datagrams are lost to bursts
  // or queue drops before reaching a socket.)
  EXPECT_GT(dmg.corrupted_in_flight, 0u);
  EXPECT_GT(dmg.corrupt_dropped, 0u);
  EXPECT_LE(dmg.corrupt_dropped, dmg.corrupted_in_flight);

  // "Exactly like loss": the stall budget of the damaged run stays within
  // 2x the loss-only control (plus one display tick of slack for the
  // zero-baseline case).
  EXPECT_LE(dmg.starvation_ticks, 2 * base.starvation_ticks + 30);
}

TEST(CorruptionEndToEnd, DeterministicUnderDamage) {
  net::LinkQuality hostile = bursty_lan();
  hostile.corrupt = 0.005;
  hostile.truncate = 0.001;
  const RunOutcome a = run(hostile, 7);
  const RunOutcome b = run(hostile, 7);
  EXPECT_EQ(a.displayed, b.displayed);
  EXPECT_EQ(a.starvation_ticks, b.starvation_ticks);
  EXPECT_EQ(a.corrupt_dropped, b.corrupt_dropped);
  EXPECT_EQ(a.corrupted_in_flight, b.corrupted_in_flight);
}

}  // namespace
}  // namespace ftvod::vod
