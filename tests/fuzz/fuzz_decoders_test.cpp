// Structure-aware decoder fuzzing: every wire decoder (GCS and VoD) is
// hammered with seeded mutations of valid encodings — bit flips,
// truncations, cross-message splices, and random-chunk overwrites. The
// contract under fuzz is absolute:
//
//  1. no decoder may crash, hang, or trip UB (run this binary under
//     -DFTVOD_SANITIZE=address;undefined for the full proof);
//  2. no decoder may *accept* a damaged datagram: if decode returns a
//     value, re-encoding that value must reproduce the input bytes
//     exactly. Anything else means corruption slipped past the integrity
//     header and produced a message nobody sent.
//
// The default tier-1 run mutates each decoder 10'000 times from one seed;
// the soak build (-DFTVOD_FUZZ_SOAK) sweeps eight seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "gcs/wire.hpp"
#include "util/frame.hpp"
#include "util/rng.hpp"
#include "vod/wire.hpp"

namespace ftvod {
namespace {

#ifdef FTVOD_FUZZ_SOAK
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};
#else
constexpr std::uint64_t kSeeds[] = {1};
#endif
constexpr int kMutationsPerSeed = 10'000;

// ---------------------------------------------------------------- inputs --

std::string rand_str(util::Rng& rng, int max_len) {
  std::string s;
  const auto n = rng.uniform_int(0, max_len);
  for (std::int64_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(' ', '~')));
  }
  return s;
}

util::Bytes rand_payload(util::Rng& rng, int max_len) {
  util::Bytes b;
  const auto n = rng.uniform_int(0, max_len);
  for (std::int64_t i = 0; i < n; ++i) {
    b.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
  }
  return b;
}

net::NodeId rand_node(util::Rng& rng) {
  return static_cast<net::NodeId>(rng.uniform_int(0, 1000));
}

gcs::ViewId rand_view(util::Rng& rng) {
  return {static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
          rand_node(rng)};
}

gcs::GcsEndpoint rand_gep(util::Rng& rng) {
  return {rand_node(rng), static_cast<std::uint32_t>(rng.uniform_int(0, 99))};
}

net::Endpoint rand_ep(util::Rng& rng) {
  return {rand_node(rng), static_cast<net::Port>(rng.uniform_int(0, 65535))};
}

std::uint64_t rand_u64(util::Rng& rng) {
  return static_cast<std::uint64_t>(rng.engine()());
}

// ----------------------------------------------------------- fuzz targets --

/// One decoder under test: a generator of valid encodings plus a checker
/// that decodes arbitrary bytes and, on success, demands byte-exact
/// re-encoding.
struct FuzzTarget {
  std::string name;
  std::function<util::Bytes(util::Rng&)> make_valid;
  std::function<void(std::span<const std::byte>)> check;
};

template <typename Decode, typename Encode>
std::function<void(std::span<const std::byte>)> checker(Decode decode,
                                                        Encode encode) {
  return [decode, encode](std::span<const std::byte> data) {
    const auto m = decode(data);
    if (!m) return;
    const util::Bytes re = encode(*m);
    ASSERT_EQ(re.size(), data.size())
        << "decoder accepted a datagram nobody could have sent";
    ASSERT_TRUE(std::equal(re.begin(), re.end(), data.begin()))
        << "decoder accepted a damaged datagram";
  };
}

std::vector<FuzzTarget> gcs_targets() {
  using namespace gcs::wire;
  std::vector<FuzzTarget> t;
  t.push_back({"gcs.heartbeat",
               [](util::Rng& rng) {
                 Heartbeat m;
                 m.view = rand_view(rng);
                 const auto n = rng.uniform_int(0, 6);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.members.push_back(rand_node(rng));
                 }
                 m.delivered_upto = rand_u64(rng);
                 m.safe_upto = rand_u64(rng);
                 return encode(m);
               },
               checker(decode_heartbeat,
                       [](const Heartbeat& m) { return encode(m); })});
  t.push_back({"gcs.submit",
               [](util::Rng& rng) {
                 Submit m;
                 m.view = rand_view(rng);
                 m.sender_seq = rand_u64(rng);
                 m.kind = static_cast<PayloadKind>(rng.uniform_int(0, 2));
                 m.group = rand_str(rng, 24);
                 m.origin = rand_gep(rng);
                 m.payload = rand_payload(rng, 64);
                 return encode(m);
               },
               checker(decode_submit,
                       [](const Submit& m) { return encode(m); })});
  t.push_back({"gcs.ordered",
               [](util::Rng& rng) {
                 Ordered m;
                 m.view = rand_view(rng);
                 m.gseq = rand_u64(rng);
                 m.sender = rand_node(rng);
                 m.sender_seq = rand_u64(rng);
                 m.kind = static_cast<PayloadKind>(rng.uniform_int(0, 2));
                 m.group = rand_str(rng, 24);
                 m.origin = rand_gep(rng);
                 m.payload = rand_payload(rng, 64);
                 return encode(m);
               },
               checker(decode_ordered,
                       [](const Ordered& m) { return encode(m); })});
  t.push_back({"gcs.retrans_req",
               [](util::Rng& rng) {
                 RetransReq m;
                 m.view = rand_view(rng);
                 m.from_gseq = rand_u64(rng);
                 m.to_gseq = rand_u64(rng);
                 return encode(m);
               },
               checker(decode_retrans_req,
                       [](const RetransReq& m) { return encode(m); })});
  t.push_back({"gcs.propose",
               [](util::Rng& rng) {
                 Propose m;
                 m.pv = rand_view(rng);
                 const auto n = rng.uniform_int(0, 6);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.members.push_back(rand_node(rng));
                 }
                 return encode(m);
               },
               checker(decode_propose,
                       [](const Propose& m) { return encode(m); })});
  t.push_back({"gcs.propose_ack",
               [](util::Rng& rng) {
                 ProposeAck m;
                 m.pv = rand_view(rng);
                 m.old_view = rand_view(rng);
                 m.delivered_upto = rand_u64(rng);
                 m.next_submit_seq = rand_u64(rng);
                 const auto n = rng.uniform_int(0, 4);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.regs.push_back({rand_str(rng, 16), rand_gep(rng)});
                 }
                 return encode(m);
               },
               checker(decode_propose_ack,
                       [](const ProposeAck& m) { return encode(m); })});
  t.push_back({"gcs.flush_target",
               [](util::Rng& rng) {
                 FlushTarget m;
                 m.pv = rand_view(rng);
                 const auto n = rng.uniform_int(0, 4);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.entries.push_back(
                       {rand_view(rng), rand_u64(rng), rand_node(rng)});
                 }
                 return encode(m);
               },
               checker(decode_flush_target,
                       [](const FlushTarget& m) { return encode(m); })});
  t.push_back({"gcs.flush_done",
               [](util::Rng& rng) {
                 FlushDone m;
                 m.pv = rand_view(rng);
                 m.delivered_upto = rand_u64(rng);
                 return encode(m);
               },
               checker(decode_flush_done,
                       [](const FlushDone& m) { return encode(m); })});
  t.push_back({"gcs.install",
               [](util::Rng& rng) {
                 Install m;
                 m.pv = rand_view(rng);
                 auto n = rng.uniform_int(0, 6);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.members.push_back(rand_node(rng));
                 }
                 n = rng.uniform_int(0, 4);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.group_table.push_back({rand_str(rng, 16), rand_gep(rng)});
                 }
                 n = rng.uniform_int(0, 4);
                 for (std::int64_t i = 0; i < n; ++i) {
                   m.submit_seqs.push_back({rand_node(rng), rand_u64(rng)});
                 }
                 return encode(m);
               },
               checker(decode_install,
                       [](const Install& m) { return encode(m); })});
  return t;
}

std::vector<FuzzTarget> vod_targets() {
  using namespace vod::wire;
  std::vector<FuzzTarget> t;
  t.push_back({"vod.open_request",
               [](util::Rng& rng) {
                 OpenRequest m;
                 m.client_id = rand_u64(rng);
                 m.movie = rand_str(rng, 24);
                 m.data_endpoint = rand_ep(rng);
                 m.capability_fps = rng.uniform(0.0, 120.0);
                 return encode(m);
               },
               checker(decode_open_request,
                       [](const OpenRequest& m) { return encode(m); })});
  t.push_back({"vod.open_reply",
               [](util::Rng& rng) {
                 OpenReply m;
                 m.client_id = rand_u64(rng);
                 m.movie = rand_str(rng, 24);
                 m.fps = rng.uniform(0.0, 120.0);
                 m.frame_count = rand_u64(rng);
                 m.avg_frame_bytes =
                     static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
                 return encode(m);
               },
               checker(decode_open_reply,
                       [](const OpenReply& m) { return encode(m); })});
  t.push_back({"vod.flow",
               [](util::Rng& rng) {
                 Flow m;
                 m.client_id = rand_u64(rng);
                 m.delta = rng.bernoulli(0.5) ? 1 : -1;
                 return encode(m);
               },
               checker(decode_flow, [](const Flow& m) { return encode(m); })});
  t.push_back({"vod.emergency",
               [](util::Rng& rng) {
                 Emergency m;
                 m.client_id = rand_u64(rng);
                 m.tier = rng.bernoulli(0.5) ? 1 : 2;
                 return encode(m);
               },
               checker(decode_emergency,
                       [](const Emergency& m) { return encode(m); })});
  t.push_back({"vod.vcr",
               [](util::Rng& rng) {
                 Vcr m;
                 m.client_id = rand_u64(rng);
                 m.op = static_cast<VcrOp>(rng.uniform_int(1, 4));
                 m.seek_frame = rand_u64(rng);
                 return encode(m);
               },
               checker(decode_vcr, [](const Vcr& m) { return encode(m); })});
  t.push_back({"vod.set_quality",
               [](util::Rng& rng) {
                 SetQuality m;
                 m.client_id = rand_u64(rng);
                 m.fps = rng.uniform(0.0, 120.0);
                 return encode(m);
               },
               checker(decode_set_quality,
                       [](const SetQuality& m) { return encode(m); })});
  t.push_back({"vod.state_sync",
               [](util::Rng& rng) {
                 StateSync m;
                 m.movie = rand_str(rng, 24);
                 m.exchange_tag = rand_u64(rng);
                 const auto n = rng.uniform_int(0, 4);
                 for (std::int64_t i = 0; i < n; ++i) {
                   ClientRecord c;
                   c.client_id = rand_u64(rng);
                   c.data_endpoint = rand_ep(rng);
                   c.next_frame = rand_u64(rng);
                   c.rate_fps = rng.uniform(0.0, 120.0);
                   c.quality_fps = rng.uniform(0.0, 120.0);
                   c.capability_fps = rng.uniform(0.0, 120.0);
                   c.paused = rng.bernoulli(0.3);
                   m.clients.push_back(c);
                 }
                 return encode(m);
               },
               checker(decode_state_sync,
                       [](const StateSync& m) { return encode(m); })});
  t.push_back({"vod.frame",
               [](util::Rng& rng) {
                 Frame m;
                 m.client_id = rand_u64(rng);
                 m.frame_index = rand_u64(rng);
                 m.type = static_cast<mpeg::FrameType>(rng.uniform_int(0, 2));
                 m.size_bytes =
                     static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
                 return encode(m);
               },
               checker(decode_frame,
                       [](const Frame& m) { return encode(m); })});
  return t;
}

std::vector<FuzzTarget> all_targets() {
  auto t = gcs_targets();
  auto v = vod_targets();
  t.insert(t.end(), std::make_move_iterator(v.begin()),
           std::make_move_iterator(v.end()));
  return t;
}

// ------------------------------------------------------------- mutations --

/// One seeded mutation of `a`, sometimes splicing in bytes of `b` (a valid
/// encoding of a possibly different message type).
util::Bytes mutate(util::Rng& rng, const util::Bytes& a, const util::Bytes& b) {
  util::Bytes m = a;
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // flip 1..8 bits anywhere (header, tag, or body)
      if (m.empty()) break;
      const auto flips = rng.uniform_int(1, 8);
      for (std::int64_t i = 0; i < flips; ++i) {
        const auto bit = rng.uniform_int(
            0, static_cast<std::int64_t>(m.size()) * 8 - 1);
        m[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::byte>(1u << (bit % 8));
      }
      break;
    }
    case 1: {  // truncate (possibly to nothing)
      if (m.empty()) break;
      m.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 1)));
      break;
    }
    case 2: {  // splice: prefix of a + suffix of b
      const auto cut_a =
          rng.uniform_int(0, static_cast<std::int64_t>(a.size()));
      const auto cut_b =
          rng.uniform_int(0, static_cast<std::int64_t>(b.size()));
      m.assign(a.begin(), a.begin() + cut_a);
      m.insert(m.end(), b.begin() + cut_b, b.end());
      break;
    }
    case 3: {  // overwrite a random run with random bytes
      if (m.empty()) break;
      const auto at =
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 1);
      const auto len = std::min<std::int64_t>(
          rng.uniform_int(1, 16), static_cast<std::int64_t>(m.size()) - at);
      for (std::int64_t i = 0; i < len; ++i) {
        m[static_cast<std::size_t>(at + i)] =
            static_cast<std::byte>(rng.uniform_int(0, 255));
      }
      break;
    }
  }
  return m;
}

// ----------------------------------------------------------------- tests --

class DecoderFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecoderFuzz, MutatedDatagramsNeverCrashAndNeverPass) {
  const auto targets = all_targets();
  const FuzzTarget& target = targets[GetParam()];
  SCOPED_TRACE(target.name);

  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed);
    std::uint64_t accepted = 0;
    for (int i = 0; i < kMutationsPerSeed; ++i) {
      const util::Bytes valid = target.make_valid(rng);
      // Sanity: the unmutated encoding must round-trip (and every
      // decoder must reject every *other* target's valid encoding).
      target.check(valid);

      const FuzzTarget& donor =
          targets[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(targets.size()) - 1))];
      const util::Bytes other = donor.make_valid(rng);
      const util::Bytes mutant = mutate(rng, valid, other);
      target.check(mutant);
      if (mutant.size() == valid.size() &&
          std::equal(mutant.begin(), mutant.end(), valid.begin())) {
        ++accepted;  // a no-op splice; not a damaged datagram
      }

      // The type peekers must survive the mutant too (both stacks, since
      // a datagram can be misrouted to either port).
      (void)gcs::wire::peek_type(mutant);
      (void)vod::wire::peek_type(mutant);
    }
    // Mutations are near-always destructive: no-op splices exist but must
    // be rare, or the fuzzer is not exercising the decoders at all.
    EXPECT_LT(accepted, kMutationsPerSeed / 10) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecoders, DecoderFuzz,
    ::testing::Range<std::size_t>(0, 17),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = all_targets()[info.param].name;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

TEST(DecoderFuzz, TargetCountMatchesInstantiation) {
  // Keep the Range above honest when a new message type is added.
  EXPECT_EQ(all_targets().size(), 17u);
}

TEST(FrameFuzz, RawGarbageNeverOpens) {
  // Pure random bytes against the integrity layer itself: frame_open must
  // reject everything that was never sealed (the CRC makes an accidental
  // pass a ~2^-32 event; with 50k trials one would fail this run).
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng(seed + 1000);
    for (int i = 0; i < 50'000; ++i) {
      const util::Bytes junk =
          rand_payload(rng, i % 64);  // heavy on short datagrams
      EXPECT_FALSE(util::frame_open(junk).has_value());
    }
  }
}

}  // namespace
}  // namespace ftvod
