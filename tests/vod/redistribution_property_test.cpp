// Seeded randomized property tests for the deterministic re-distribution
// (§5.2). The correctness of transparent failover rests on every surviving
// server computing the *same* assignment from the same inputs, so the
// properties are checked across many random tables and view changes:
//   * determinism: identical inputs -> identical output, at every "member";
//   * membership: nobody is ever assigned to a non-member;
//   * balance: loads within one of each other;
//   * stability: kStable never moves more sessions than kSpread for the
//     same view change.
#include "vod/redistribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace ftvod::vod {
namespace {

struct Scenario {
  Assignment current;
  std::vector<net::NodeId> old_servers;
  std::vector<net::NodeId> new_servers;
};

/// A random fleet, a random client table consistent with it, and a random
/// view change (some servers crash, some join).
Scenario random_scenario(util::Rng& rng) {
  Scenario sc;
  const auto n_pool = static_cast<net::NodeId>(rng.uniform_int(1, 8));
  std::vector<net::NodeId> pool;
  for (net::NodeId i = 0; i < n_pool; ++i) pool.push_back(i);

  for (net::NodeId s : pool) {
    if (rng.bernoulli(0.7)) sc.old_servers.push_back(s);
  }
  if (sc.old_servers.empty()) sc.old_servers.push_back(pool.front());

  const std::int64_t n_clients = rng.uniform_int(0, 24);
  for (std::int64_t c = 0; c < n_clients; ++c) {
    // Most clients sit on a current member; some are already orphaned
    // (their owner crashed before this round) or brand-new (unserved).
    net::NodeId owner = net::kInvalidNode;
    if (rng.bernoulli(0.85)) {
      owner = sc.old_servers[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sc.old_servers.size()) - 1))];
    }
    sc.current[static_cast<std::uint64_t>(1000 + c)] = owner;
  }

  // The view change: each pool server is in the new view with p=0.6.
  for (net::NodeId s : pool) {
    if (rng.bernoulli(0.6)) sc.new_servers.push_back(s);
  }
  std::sort(sc.new_servers.begin(), sc.new_servers.end());
  return sc;
}

std::size_t moved_sessions(const Assignment& before, const Assignment& after) {
  std::size_t moved = 0;
  for (const auto& [client, owner] : after) {
    auto it = before.find(client);
    const net::NodeId old_owner = it == before.end() ? net::kInvalidNode
                                                     : it->second;
    if (owner != old_owner) ++moved;
  }
  return moved;
}

class RedistributionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RedistributionProperty, HoldsForRandomScenarios) {
  util::Rng rng(GetParam() * 7919 + 13);
  for (int round = 0; round < 200; ++round) {
    const Scenario sc = random_scenario(rng);
    for (const RebalancePolicy policy :
         {RebalancePolicy::kSpread, RebalancePolicy::kStable}) {
      const Assignment a = rebalance(sc.current, sc.new_servers, policy);
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << GetParam() << " round=" << round
                   << " policy="
                   << (policy == RebalancePolicy::kSpread ? "spread"
                                                          : "stable")
                   << " clients=" << sc.current.size()
                   << " servers=" << sc.new_servers.size());

      // Determinism: every "member" computing independently agrees. The
      // second computation stands in for any other server running the same
      // pure function on the same agreed inputs.
      const Assignment again = rebalance(sc.current, sc.new_servers, policy);
      EXPECT_EQ(a, again);

      // Every client is covered, none invented.
      EXPECT_EQ(a.size(), sc.current.size());

      if (sc.new_servers.empty()) {
        for (const auto& [client, owner] : a) {
          EXPECT_EQ(owner, net::kInvalidNode);
        }
        continue;
      }

      // Membership + balance-to-within-one.
      std::map<net::NodeId, std::size_t> load;
      for (net::NodeId s : sc.new_servers) load[s] = 0;
      for (const auto& [client, owner] : a) {
        ASSERT_TRUE(std::binary_search(sc.new_servers.begin(),
                                       sc.new_servers.end(), owner))
            << "client " << client << " assigned to non-member n" << owner;
        ++load[owner];
      }
      std::size_t lo = SIZE_MAX;
      std::size_t hi = 0;
      for (const auto& [server, n] : load) {
        lo = std::min(lo, n);
        hi = std::max(hi, n);
      }
      EXPECT_LE(hi - lo, 1u);
    }

    // Stability: for the same view change, kStable moves no more sessions
    // than kSpread (it is the minimal-movement remainder policy).
    if (!sc.new_servers.empty()) {
      const Assignment spread =
          rebalance(sc.current, sc.new_servers, RebalancePolicy::kSpread);
      const Assignment stable =
          rebalance(sc.current, sc.new_servers, RebalancePolicy::kStable);
      EXPECT_LE(moved_sessions(sc.current, stable),
                moved_sessions(sc.current, spread))
          << "seed=" << GetParam() << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistributionProperty,
                         ::testing::Range(0u, 5u));

// A freshly joined (empty) server must attract work under kSpread whenever
// the remainder allows — the paper's "brought up on the fly" behavior.
TEST(RedistributionProperty, SpreadGivesRemainderToEmptyServer) {
  util::Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    const auto n_old = static_cast<net::NodeId>(rng.uniform_int(1, 5));
    std::vector<net::NodeId> servers;
    for (net::NodeId s = 0; s < n_old; ++s) servers.push_back(s);
    Assignment current;
    const std::int64_t n_clients =
        rng.uniform_int(n_old, 6 * static_cast<std::int64_t>(n_old));
    for (std::int64_t c = 0; c < n_clients; ++c) {
      current[static_cast<std::uint64_t>(c)] = servers[static_cast<
          std::size_t>(rng.uniform_int(0, n_old - 1))];
    }
    const net::NodeId fresh = n_old;  // joins empty
    servers.push_back(fresh);
    const Assignment next =
        rebalance(current, servers, RebalancePolicy::kSpread);
    std::size_t fresh_load = 0;
    for (const auto& [client, owner] : next) {
      if (owner == fresh) ++fresh_load;
    }
    // With at least one client per old server, the fresh server's fair
    // share (floor) is at least 1 under kSpread.
    EXPECT_GE(fresh_load,
              static_cast<std::size_t>(n_clients) / servers.size())
        << "round " << round;
  }
}

}  // namespace
}  // namespace ftvod::vod
