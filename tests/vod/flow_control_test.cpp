// Verifies the client flow-control policy against Figure 2 of the paper,
// row by row, plus the request-frequency rules. The emergency thresholds
// watch the software-stage occupancy; the water marks watch the total.
#include "vod/flow_control.hpp"

#include <gtest/gtest.h>

namespace ftvod::vod {
namespace {

VodParams paper_params() { return VodParams{}; }

/// In these tests the software stage is healthy unless stated otherwise.
constexpr double kHealthySw = 0.6;

// --- the policy table (Figure 2 + §4.1 tiers) ------------------------------

TEST(FlowPolicy, SoftwareBelowCriticalIsEmergencyTier1) {
  FlowController fc(paper_params());
  EXPECT_EQ(fc.classify(0.40, 0.00), FlowAction::kEmergencyTier1);
  EXPECT_EQ(fc.classify(0.40, 0.10), FlowAction::kEmergencyTier1);
  EXPECT_EQ(fc.classify(0.40, 0.149), FlowAction::kEmergencyTier1);
}

TEST(FlowPolicy, SoftwareBelowSeriousIsEmergencyTier2) {
  FlowController fc(paper_params());
  EXPECT_EQ(fc.classify(0.40, 0.15), FlowAction::kEmergencyTier2);
  EXPECT_EQ(fc.classify(0.40, 0.25), FlowAction::kEmergencyTier2);
  EXPECT_EQ(fc.classify(0.40, 0.299), FlowAction::kEmergencyTier2);
}

TEST(FlowPolicy, PaperScenarioTiers) {
  // Crash: software drains to zero -> critical. Load balance: software dips
  // to about a quarter of its capacity -> the "less serious" tier.
  FlowController fc(paper_params());
  EXPECT_EQ(fc.classify(0.40, 0.0), FlowAction::kEmergencyTier1);
  EXPECT_EQ(fc.classify(0.60, 0.25), FlowAction::kEmergencyTier2);
}

TEST(FlowPolicy, BelowLowWaterIsIncrease) {
  FlowController fc(paper_params());
  // prev starts at 0: occupancy is flat-or-falling relative to it only
  // when <= prev, so prime prev high first (8 frames: in-band frequency).
  for (int i = 0; i < 8; ++i) (void)fc.on_frame_received(0.80, kHealthySw);
  EXPECT_EQ(fc.classify(0.30, kHealthySw), FlowAction::kIncrease);
  EXPECT_EQ(fc.classify(0.50, kHealthySw), FlowAction::kIncrease);
  EXPECT_EQ(fc.classify(0.729, kHealthySw), FlowAction::kIncrease);
}

TEST(FlowPolicy, BelowLowWaterButRecoveringStaysQuiet) {
  // Trend damping: once the occupancy is climbing back toward the band,
  // further increase requests would overshoot.
  FlowController fc(paper_params());
  for (int i = 0; i < 4; ++i) (void)fc.on_frame_received(0.40, kHealthySw);
  EXPECT_EQ(fc.classify(0.50, kHealthySw), std::nullopt);  // rising
  EXPECT_EQ(fc.classify(0.35, kHealthySw), FlowAction::kIncrease);  // falling
}

TEST(FlowPolicy, AboveHighWaterIsDecrease) {
  FlowController fc(paper_params());
  for (int i = 0; i < 4; ++i) (void)fc.on_frame_received(0.50, kHealthySw);
  EXPECT_EQ(fc.classify(0.88, kHealthySw), FlowAction::kDecrease);
  EXPECT_EQ(fc.classify(0.95, 0.9), FlowAction::kDecrease);
  EXPECT_EQ(fc.classify(1.00, 1.0), FlowAction::kDecrease);
}

TEST(FlowPolicy, AboveHighWaterButDrainingStaysQuiet) {
  FlowController fc(paper_params());
  for (int i = 0; i < 4; ++i) (void)fc.on_frame_received(0.98, 1.0);
  EXPECT_EQ(fc.classify(0.92, 1.0), std::nullopt);  // already falling
  EXPECT_EQ(fc.classify(0.99, 1.0), FlowAction::kDecrease);  // still rising
}

TEST(FlowPolicy, EmergencyOutranksWaterMarks) {
  // Even with a full-looking total (hardware full), a starved software
  // stage is an emergency, not an "increase".
  FlowController fc(paper_params());
  EXPECT_EQ(fc.classify(0.55, 0.05), FlowAction::kEmergencyTier1);
}

TEST(FlowPolicy, InBandFollowsTrend) {
  VodParams p = paper_params();
  FlowController fc(p);
  // Establish prev occupancy = 0.80 by driving a request through.
  for (int i = 0; i < p.flow_normal_every; ++i) {
    (void)fc.on_frame_received(0.80, kHealthySw);
  }
  EXPECT_DOUBLE_EQ(fc.prev_occupancy(), 0.80);
  // Falling inside the band -> increase; rising -> decrease; flat -> none.
  EXPECT_EQ(fc.classify(0.78, kHealthySw), FlowAction::kIncrease);
  EXPECT_EQ(fc.classify(0.82, kHealthySw), FlowAction::kDecrease);
  EXPECT_EQ(fc.classify(0.80, kHealthySw), std::nullopt);
}

// --- request frequencies ----------------------------------------------------

TEST(FlowFrequency, NormalZoneEveryEighthFrame) {
  VodParams p = paper_params();
  FlowController fc(p);
  int requests = 0;
  // Stay in-band with a falling trend so every due check emits a request.
  double occ = 0.87;
  for (int i = 0; i < 64; ++i) {
    occ -= 0.001;
    if (fc.on_frame_received(occ, kHealthySw)) ++requests;
  }
  EXPECT_EQ(requests, 64 / p.flow_normal_every);
}

TEST(FlowFrequency, UrgentZoneEveryFourthFrame) {
  VodParams p = paper_params();
  FlowController fc(p);
  // Prime prev so the flat trend counts as "not recovering".
  for (int i = 0; i < p.flow_urgent_every; ++i) {
    (void)fc.on_frame_received(0.50, kHealthySw);
  }
  int requests = 0;
  for (int i = 0; i < 64; ++i) {
    // Below low water: urgent.
    if (fc.on_frame_received(0.50, kHealthySw)) ++requests;
  }
  EXPECT_EQ(requests, 64 / p.flow_urgent_every);
}

TEST(FlowFrequency, StarvedSoftwareIsUrgentEvenInBand) {
  VodParams p = paper_params();
  FlowController fc(p);
  int requests = 0;
  for (int i = 0; i < 64; ++i) {
    if (fc.on_frame_received(0.80, 0.05)) ++requests;
  }
  EXPECT_EQ(requests, 64 / p.flow_urgent_every);
}

TEST(FlowFrequency, UrgentIsTwiceNormal) {
  VodParams p = paper_params();
  EXPECT_EQ(p.flow_normal_every, 2 * p.flow_urgent_every);
}

TEST(FlowFrequency, NoRequestWhenOccupancyFlatInBand) {
  VodParams p = paper_params();
  FlowController fc(p);
  // Prime prev = 0.80.
  for (int i = 0; i < p.flow_normal_every; ++i) {
    (void)fc.on_frame_received(0.80, kHealthySw);
  }
  int requests = 0;
  for (int i = 0; i < 32; ++i) {
    if (fc.on_frame_received(0.80, kHealthySw)) ++requests;
  }
  EXPECT_EQ(requests, 0);
}

TEST(FlowFrequency, ResetClearsCounter) {
  VodParams p = paper_params();
  FlowController fc(p);
  for (int i = 0; i < p.flow_urgent_every - 1; ++i) {
    EXPECT_EQ(fc.on_frame_received(0.5, kHealthySw), std::nullopt);
  }
  fc.reset();
  // Counter restarted: still no request for another urgent-1 frames, and
  // the first due check is damped (prev was reset to 0, so 0.5 looks like
  // a recovery); the second due check fires on the flat trend.
  for (int i = 0; i < p.flow_urgent_every; ++i) {
    EXPECT_EQ(fc.on_frame_received(0.5, kHealthySw), std::nullopt);
  }
  for (int i = 0; i < p.flow_urgent_every - 1; ++i) {
    EXPECT_EQ(fc.on_frame_received(0.5, kHealthySw), std::nullopt);
  }
  EXPECT_EQ(fc.on_frame_received(0.5, kHealthySw), FlowAction::kIncrease);
}

// --- parameterized: the classify function is monotone in severity ----------

class FlowSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowSweep, SeverityMonotone) {
  FlowController fc(paper_params());
  const double occ = GetParam() / 100.0;
  // Prime prev to the probe value so the trend is flat (worst case: the
  // out-of-band rules must still fire on a flat trend).
  for (int i = 0; i < 8; ++i) (void)fc.on_frame_received(occ, kHealthySw);
  const auto action = fc.classify(occ, kHealthySw);
  if (occ < 0.73) {
    EXPECT_EQ(action, FlowAction::kIncrease);
  } else if (occ >= 0.88) {
    EXPECT_EQ(action, FlowAction::kDecrease);
  }
}

INSTANTIATE_TEST_SUITE_P(Occupancies, FlowSweep, ::testing::Range(0, 101, 2));

class SwSweep : public ::testing::TestWithParam<int> {};

TEST_P(SwSweep, EmergencyTiersBySoftwareOccupancy) {
  FlowController fc(paper_params());
  for (int i = 0; i < 4; ++i) (void)fc.on_frame_received(0.50, kHealthySw);
  const double sw = GetParam() / 100.0;
  const auto action = fc.classify(0.50, sw);
  if (sw < 0.15) {
    EXPECT_EQ(action, FlowAction::kEmergencyTier1);
  } else if (sw < 0.30) {
    EXPECT_EQ(action, FlowAction::kEmergencyTier2);
  } else {
    EXPECT_EQ(action, FlowAction::kIncrease);  // total 0.5 < low water
  }
}

INSTANTIATE_TEST_SUITE_P(SwOccupancies, SwSweep, ::testing::Range(0, 101, 2));

}  // namespace
}  // namespace ftvod::vod
