// Verifies the emergency transmission quantity of §4.1: base quantities,
// truncated multiplicative decay, and the burst totals the paper reports.
#include "vod/emergency.hpp"

#include <gtest/gtest.h>

namespace ftvod::vod {
namespace {

TEST(Emergency, PaperDecaySequenceQ12) {
  // "we set the base emergency quantity q to 12. We use a decay factor f of
  //  .8, so the resulting sequence sum is 43 frames."
  EmergencyQuantity eq(0.8);
  eq.trigger(12);
  std::vector<int> seq;
  while (eq.active()) {
    seq.push_back(eq.quantity());
    eq.decay_step();
  }
  EXPECT_EQ(seq, (std::vector<int>{12, 9, 7, 5, 4, 3, 2, 1}));
  EXPECT_EQ(EmergencyQuantity::burst_total(12, 0.8), 43u);
}

TEST(Emergency, PaperBurstTotalsTier2) {
  // Tier 2 (below 30% but not 15%): q=6; the paper reports ~15 extra
  // frames; the truncated geometric sum gives 16.
  EXPECT_EQ(EmergencyQuantity::burst_total(6, 0.8), 16u);
}

TEST(Emergency, PeakOverheadIsFortyPercentAt30Fps) {
  // q=12 on a 30 fps stream = 40% extra bandwidth at the burst's peak.
  EXPECT_DOUBLE_EQ(12.0 / 30.0, 0.4);
}

TEST(Emergency, BurstDurations) {
  EXPECT_EQ(EmergencyQuantity::burst_duration_s(12, 0.8), 8);
  EXPECT_EQ(EmergencyQuantity::burst_duration_s(6, 0.8), 5);
  EXPECT_EQ(EmergencyQuantity::burst_duration_s(0, 0.8), 0);
}

TEST(Emergency, TriggerNeverShrinksActiveBurst) {
  EmergencyQuantity eq(0.8);
  eq.trigger(12);
  eq.trigger(6);  // a weaker concurrent emergency
  EXPECT_EQ(eq.quantity(), 12);
  eq.decay_step();
  EXPECT_EQ(eq.quantity(), 9);
  eq.trigger(12);  // escalation is allowed
  EXPECT_EQ(eq.quantity(), 12);
}

TEST(Emergency, InactiveAfterFullDecay) {
  EmergencyQuantity eq(0.8);
  EXPECT_FALSE(eq.active());
  eq.trigger(6);
  EXPECT_TRUE(eq.active());
  for (int i = 0; i < 10; ++i) eq.decay_step();
  EXPECT_FALSE(eq.active());
  EXPECT_EQ(eq.quantity(), 0);
}

TEST(Emergency, ResetClears) {
  EmergencyQuantity eq(0.8);
  eq.trigger(12);
  eq.reset();
  EXPECT_FALSE(eq.active());
}

class EmergencySweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

// Properties over the (q, f) parameter space the paper discusses trading
// off: total extra frames grows with both q and f, and the burst always
// terminates.
TEST_P(EmergencySweep, BurstTerminatesAndBoundsHold) {
  const auto [q, f] = GetParam();
  const std::uint64_t total = EmergencyQuantity::burst_total(q, f);
  const int dur = EmergencyQuantity::burst_duration_s(q, f);
  EXPECT_GE(total, static_cast<std::uint64_t>(q));  // at least the first second
  EXPECT_LE(total, static_cast<std::uint64_t>(
                       static_cast<double>(q) / (1.0 - f) + q));
  EXPECT_GT(dur, 0);
  EXPECT_LT(dur, 200);
}

INSTANTIATE_TEST_SUITE_P(
    Params, EmergencySweep,
    ::testing::Combine(::testing::Values(1, 3, 6, 12, 24, 48),
                       ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9)));

}  // namespace
}  // namespace ftvod::vod
