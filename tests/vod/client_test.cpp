// Client-side behaviour through the stack: connection lifecycle, stats
// surfaces, reconnect logic, and robustness against malformed traffic.
#include <gtest/gtest.h>

#include "../integration/vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(Client, StatsBeforeConnectionAreEmpty) {
  VodTestBed bed(1, 1);
  const VodClient& c = bed.client();
  EXPECT_FALSE(c.connected());
  EXPECT_FALSE(c.playing());
  EXPECT_EQ(c.buffers(), nullptr);
  EXPECT_EQ(c.counters().received, 0u);
  EXPECT_EQ(c.occupancy_fraction(), 0.0);
}

TEST(Client, WaterMarkAccessors) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(5.0);
  const VodClient& c = bed.client();
  ASSERT_TRUE(c.connected());
  const double total = static_cast<double>(
      c.buffers()->total_capacity_frames());
  EXPECT_DOUBLE_EQ(c.low_water_frames(), 0.73 * total);
  EXPECT_DOUBLE_EQ(c.high_water_frames(), 0.88 * total);
  EXPECT_GT(c.low_water_frames(), 50.0);
}

TEST(Client, OpenRetriesUntilServerExists) {
  // The movie appears only after the client has been asking for a while.
  VodTestBed bed(1, 1);
  bed.client().watch("late-movie");
  bed.run_for(4.0);
  EXPECT_FALSE(bed.client().connected());
  const auto retries = bed.client().control_stats().open_retries;
  EXPECT_GE(retries, 2u);

  bed.server(0).add_movie(mpeg::Movie::synthetic("late-movie", 120.0));
  // The third retry can land up to ~8.75 s in (backed-off delay 4 s plus
  // jitter on top of the first two); leave room for it plus some playback.
  bed.run_for(8.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_GT(bed.client().counters().displayed, 50u);
}

TEST(Client, OpenRetrySpacingGrowsGeometricallyToTheCap) {
  // Asking for a movie nobody serves: retry k fires after base * 2^k plus
  // a jitter of at most a quarter of the delay, capped at open_retry_cap.
  VodTestBed bed(1, 1);
  bed.client().watch("does-not-exist");
  const sim::Time t0 = bed.deployment().scheduler().now();
  std::vector<sim::Time> retry_at;
  std::uint64_t seen = 0;
  for (int step = 0; step < 1200 && retry_at.size() < 6; ++step) {
    bed.run_for(0.05);
    const std::uint64_t n = bed.client().control_stats().open_retries;
    if (n > seen) {
      seen = n;
      retry_at.push_back(bed.deployment().scheduler().now());
    }
  }
  ASSERT_GE(retry_at.size(), 5u);

  const VodParams p;
  sim::Duration expected = p.open_retry;
  sim::Time prev = t0;
  for (std::size_t k = 0; k < retry_at.size(); ++k) {
    const sim::Duration gap = retry_at[k] - prev;
    prev = retry_at[k];
    // Each gap is the nominal (doubling, capped) delay plus up to 25 %
    // jitter, measured to one 50 ms sampling step of slack either way.
    EXPECT_GE(gap, expected - sim::msec(60)) << "retry " << k;
    EXPECT_LE(gap, expected + expected / 4 + sim::msec(60)) << "retry " << k;
    expected = std::min(2 * expected, p.open_retry_cap);
  }
  // The spacing genuinely grew: the last observed gap is several times
  // the first (geometric, not linear, growth).
  EXPECT_GE(retry_at[4] - retry_at[3], 4 * (retry_at[0] - t0));
}

TEST(Client, ReconnectsAfterSessionLoss) {
  // Cut the client off long enough for the servers to give up on it, then
  // heal: the client must notice the dead stream and re-request.
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.deployment().network().partition(
      {{bed.deployment().clients()[0]->node}});
  bed.run_for(6.0);
  bed.deployment().network().heal();
  bed.run_for(20.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_EQ(bed.server(0).session_count(), 1u);
  const auto before = bed.client().counters().displayed;
  bed.run_for(5.0);
  EXPECT_GT(bed.client().counters().displayed - before, 100u);
}

TEST(Client, GarbageDatagramsIgnored) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(5.0);
  // Fire junk at the client's data port from a foreign socket.
  auto& dep = bed.deployment();
  auto junk = dep.network().bind(dep.servers()[0]->node, 4444, nullptr);
  const net::Endpoint client_data{dep.clients()[0]->node, 9100};
  junk->send(client_data, util::Bytes{std::byte{0xFF}, std::byte{0x00}});
  junk->send(client_data, util::Bytes{});  // empty datagram
  util::Writer w;  // a frame for some *other* client id
  w.u8(8);         // kFrame tag
  w.u64(999999);
  w.u64(1);
  w.u8(0);
  w.u32(100);
  junk->send(client_data, w.take());
  bed.run_for(2.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_TRUE(bed.client().playing());
}

TEST(Client, DisplayedIndicesMonotone) {
  VodTestBed bed(1, 1, net::wan_quality(0.02), 17);
  bed.watch_all();
  bed.run_for(20.0);
  // last_displayed advances with wall clock: sample strictly increasing.
  std::int64_t prev = -1;
  for (int i = 0; i < 20; ++i) {
    bed.run_for(0.5);
    const std::int64_t now = bed.client().buffers()->last_displayed();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Client, PlaybackSpeedIsRealTime) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(10.0);
  const std::int64_t p0 = bed.client().buffers()->last_displayed();
  bed.run_for(20.0);
  const std::int64_t p1 = bed.client().buffers()->last_displayed();
  // 20 s at 30 fps = 600 frames of movie time (display-order gaps from
  // startup-overflow skips let the index run slightly ahead).
  EXPECT_NEAR(static_cast<double>(p1 - p0), 600.0, 25.0);
}

TEST(Client, TwoClientsOnDifferentHostsIndependent) {
  VodTestBed bed(1, 2);
  bed.client(0).watch("feature");
  bed.run_for(5.0);
  EXPECT_TRUE(bed.client(0).connected());
  EXPECT_FALSE(bed.client(1).connected());  // never asked
  bed.client(1).watch("feature");
  bed.run_for(5.0);
  EXPECT_TRUE(bed.client(1).connected());
  // Pausing one must not affect the other.
  bed.client(0).pause();
  const auto d1 = bed.client(1).counters().displayed;
  bed.run_for(5.0);
  EXPECT_GT(bed.client(1).counters().displayed, d1 + 100);
}

TEST(Client, StopThenRewatch) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(8.0);
  bed.client().stop();
  bed.run_for(2.0);
  EXPECT_FALSE(bed.client().connected());
  EXPECT_EQ(bed.server(0).session_count(), 0u);
  // A fresh client instance on the same host can watch again (the old
  // client released its data port only at destruction, so use client 0's
  // own re-watch path instead: watch() after stop()).
  bed.client().watch("feature");
  bed.run_for(6.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_EQ(bed.server(0).session_count(), 1u);
}

TEST(Client, LateFramesAfterStopDoNotResurrectTheDisplay) {
  // Regression (caught by the catalog-churn soak): the server keeps
  // streaming for a round trip after a Stop, and those in-flight frames
  // used to land in still-live buffers and re-arm the display loop — a
  // zombie session with no session-group membership that "stalls" forever
  // once its buffer tail drained. After stop(), the decoder state is gone
  // and stragglers are discarded at the door.
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(8.0);
  ASSERT_TRUE(bed.client().playing());
  bed.client().stop();
  bed.run_for(5.0);
  EXPECT_FALSE(bed.client().playing());
  EXPECT_FALSE(bed.client().watching());
  EXPECT_EQ(bed.client().buffers(), nullptr);
  EXPECT_EQ(bed.client().counters().received, 0u);  // back to the empty set
}

TEST(Client, RewatchStartsFromAFullyFreshSession) {
  // Regression for the pooled-reuse path the workload driver leans on:
  // watch() after stop() (or even mid-session) must behave like a brand-new
  // client — no stale pause flag, buffer position, flow state or pending
  // open retry may leak into the next session. Park the first session in
  // the nastiest state we can reach, then re-watch a different title.
  VodTestBed bed(1, 1);
  auto indie = mpeg::Movie::synthetic("indie", 300.0);
  bed.server(0).add_movie(indie);
  bed.run_for(1.0);

  bed.client().watch("feature");
  bed.run_for(10.0);
  ASSERT_TRUE(bed.client().playing());
  bed.client().seek(4000);  // deep into the movie
  bed.run_for(2.0);
  bed.client().pause();     // and paused
  bed.run_for(1.0);
  const auto old_pos = bed.client().buffers()->last_displayed();
  EXPECT_GT(old_pos, 3000);
  bed.client().stop();
  bed.run_for(1.0);
  EXPECT_FALSE(bed.client().watching());

  bed.client().watch("indie");
  EXPECT_TRUE(bed.client().watching());
  EXPECT_EQ(bed.client().movie(), "indie");
  bed.run_for(6.0);
  ASSERT_TRUE(bed.client().connected());
  EXPECT_TRUE(bed.client().playing());
  EXPECT_FALSE(bed.client().paused());  // the pause did not leak
  // Fresh counters and a position near the start of the new title — not
  // the previous session's seek offset.
  const auto pos = bed.client().buffers()->last_displayed();
  EXPECT_GT(pos, 0);
  EXPECT_LT(pos, 400);
  EXPECT_EQ(bed.server(0).session_count("indie"), 1u);
  EXPECT_EQ(bed.server(0).session_count("feature"), 0u);
}

TEST(Client, WatchWhileWatchingSwitchesTitlesCleanly) {
  // watch() with a session already live is the same reset path minus the
  // stop(): the old session group is left, the new one joined.
  VodTestBed bed(1, 1);
  auto indie = mpeg::Movie::synthetic("indie", 300.0);
  bed.server(0).add_movie(indie);
  bed.run_for(1.0);
  bed.client().watch("feature");
  bed.run_for(8.0);
  ASSERT_TRUE(bed.client().playing());

  bed.client().watch("indie");
  bed.run_for(8.0);
  EXPECT_TRUE(bed.client().connected());
  EXPECT_TRUE(bed.client().playing());
  EXPECT_EQ(bed.client().movie(), "indie");
  EXPECT_EQ(bed.server(0).session_count("indie"), 1u);
  EXPECT_EQ(bed.server(0).session_count("feature"), 0u);
}

}  // namespace
}  // namespace ftvod::vod
