// Client buffer mechanics (§3): two-stage buffering, re-ordering window,
// late/duplicate handling, the I-frame-preserving overflow policy, and
// skip accounting at display time.
#include "vod/client_buffer.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ftvod::vod {
namespace {

mpeg::FrameInfo frame(std::uint64_t index,
                      mpeg::FrameType type = mpeg::FrameType::kP,
                      std::uint32_t bytes = 5000) {
  return mpeg::FrameInfo{index, type, bytes};
}

/// Small buffers for focused tests: 4 software slots, 3 frames of hardware.
ClientBuffers small() { return ClientBuffers(4, 3 * 5000, 5000); }

TEST(ClientBuffers, FramesFlowThroughToDisplay) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  EXPECT_EQ(b.hw_frames(), 3u);  // streamed straight into the decoder
  EXPECT_EQ(b.sw_frames(), 0u);
  auto f = b.consume();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->index, 0u);
  EXPECT_EQ(b.counters().displayed, 1u);
  EXPECT_EQ(b.counters().skipped, 0u);
}

TEST(ClientBuffers, SoftwareFillsWhenHardwareFull) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 6; ++i) b.insert(frame(i));
  EXPECT_EQ(b.hw_frames(), 3u);
  EXPECT_EQ(b.sw_frames(), 3u);
  EXPECT_EQ(b.total_frames(), 6u);
  EXPECT_EQ(b.hw_bytes(), 15'000u);
}

TEST(ClientBuffers, ConsumeRefillsHardwareFromSoftware) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 6; ++i) b.insert(frame(i));
  (void)b.consume();
  EXPECT_EQ(b.hw_frames(), 3u);  // topped up from software
  EXPECT_EQ(b.sw_frames(), 2u);
}

TEST(ClientBuffers, OutOfOrderReorderedInSoftware) {
  ClientBuffers b = small();
  // Fill hardware so subsequent arrivals stay in the software window.
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  b.insert(frame(5));
  b.insert(frame(3));
  b.insert(frame(4));
  // Drain: display order must be 0..5 with no skips.
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 6; ++i) {
    auto f = b.consume();
    ASSERT_TRUE(f.has_value());
    order.push_back(f->index);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(b.counters().skipped, 0u);
  EXPECT_EQ(b.counters().late, 0u);
}

TEST(ClientBuffers, DuplicateCountsAsLate) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  b.insert(frame(4));
  b.insert(frame(4));  // duplicate while still in the software buffer
  EXPECT_EQ(b.counters().late, 1u);
}

TEST(ClientBuffers, ArrivalBehindDecoderHorizonIsLate) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  // Frames 0..2 are already in the decoder; a late copy of 1 is useless.
  b.insert(frame(1));
  EXPECT_EQ(b.counters().late, 1u);
  // Consuming past it doesn't re-display it.
  (void)b.consume();
  (void)b.consume();
  EXPECT_EQ(b.counters().displayed, 2u);
}

TEST(ClientBuffers, GapCountsSkippedAtDisplayTime) {
  ClientBuffers b = small();
  b.insert(frame(0));
  b.insert(frame(1));
  b.insert(frame(4));  // 2 and 3 lost in the network
  (void)b.consume();
  (void)b.consume();
  auto f = b.consume();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->index, 4u);
  EXPECT_EQ(b.counters().skipped, 2u);
}

TEST(ClientBuffers, StarvationCounted) {
  ClientBuffers b = small();
  EXPECT_EQ(b.consume(), std::nullopt);
  EXPECT_EQ(b.consume(), std::nullopt);
  EXPECT_EQ(b.counters().starvation_ticks, 2u);
}

TEST(ClientBuffers, OverflowDiscardsIncrementalNotI) {
  ClientBuffers b = small();
  // Fill hardware (3) + software (4).
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  b.insert(frame(3, mpeg::FrameType::kB));
  b.insert(frame(4, mpeg::FrameType::kI));
  b.insert(frame(5, mpeg::FrameType::kB));
  b.insert(frame(6, mpeg::FrameType::kI));
  EXPECT_EQ(b.sw_frames(), 4u);
  // Overflow: frame 7 arrives; the furthest *incremental* frame (5) must be
  // discarded, never the I frames.
  b.insert(frame(7, mpeg::FrameType::kP));
  EXPECT_EQ(b.counters().overflow_discards, 1u);
  EXPECT_EQ(b.counters().overflow_discarded_i_frames, 0u);
  std::vector<std::uint64_t> displayed;
  while (auto f = b.consume()) displayed.push_back(f->index);
  EXPECT_EQ(displayed, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 6, 7}));
}

TEST(ClientBuffers, OverflowAllIFramesDropsIncomingIncremental) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  for (std::uint64_t i = 3; i < 7; ++i) b.insert(frame(i, mpeg::FrameType::kI));
  // Software holds four I frames; an incoming B is the preferred victim.
  b.insert(frame(7, mpeg::FrameType::kB));
  EXPECT_EQ(b.counters().overflow_discards, 1u);
  EXPECT_EQ(b.counters().overflow_discarded_i_frames, 0u);
  EXPECT_EQ(b.sw_frames(), 4u);
}

TEST(ClientBuffers, OverflowAllIFramesEvictsFurthestIForIncomingI) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 3; ++i) b.insert(frame(i));
  for (std::uint64_t i = 3; i < 7; ++i) b.insert(frame(i, mpeg::FrameType::kI));
  b.insert(frame(7, mpeg::FrameType::kI));
  EXPECT_EQ(b.counters().overflow_discards, 1u);
  EXPECT_EQ(b.counters().overflow_discarded_i_frames, 1u);
}

TEST(ClientBuffers, HardwareRespectsByteBudgetNotFrameCount) {
  // 10 KB hardware budget with 4 KB frames: only 2 fit (8 KB), not 3.
  ClientBuffers b(4, 10'000, 4000);
  b.insert(frame(0, mpeg::FrameType::kP, 4000));
  b.insert(frame(1, mpeg::FrameType::kP, 4000));
  b.insert(frame(2, mpeg::FrameType::kP, 4000));
  EXPECT_EQ(b.hw_frames(), 2u);
  EXPECT_EQ(b.sw_frames(), 1u);
}

TEST(ClientBuffers, OversizedFrameStillEntersEmptyHardware) {
  ClientBuffers b(4, 3000, 3000);
  b.insert(frame(0, mpeg::FrameType::kI, 20'000));  // larger than the buffer
  EXPECT_EQ(b.hw_frames(), 1u);  // admitted rather than wedged forever
}

TEST(ClientBuffers, FlushRepositionsWithoutCountingSkips) {
  ClientBuffers b = small();
  for (std::uint64_t i = 0; i < 5; ++i) b.insert(frame(i));
  (void)b.consume();
  b.flush_to(1000);
  EXPECT_EQ(b.total_frames(), 0u);
  EXPECT_EQ(b.hw_bytes(), 0u);
  b.insert(frame(1000));
  b.insert(frame(1001));
  auto f = b.consume();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->index, 1000u);
  EXPECT_EQ(b.counters().skipped, 0u);  // the jump is not "skipped frames"
}

TEST(ClientBuffers, FlushMakesOlderFramesLate) {
  ClientBuffers b = small();
  b.flush_to(1000);
  b.insert(frame(999));  // pre-seek stragglers
  EXPECT_EQ(b.counters().late, 1u);
  EXPECT_EQ(b.total_frames(), 0u);
}

TEST(ClientBuffers, OccupancyFraction) {
  ClientBuffers b(10, 10 * 5000, 5000);  // 20 frames total capacity
  EXPECT_EQ(b.total_capacity_frames(), 20u);
  for (std::uint64_t i = 0; i < 5; ++i) b.insert(frame(i));
  EXPECT_DOUBLE_EQ(b.occupancy_fraction(), 0.25);
}

TEST(ClientBuffers, PaperSizedBuffersHoldAbout2Point4Seconds) {
  // 37 software frames + 240 KB hardware at 5833-byte frames ~ 79 frames
  // ~ 2.6 s at 30 fps — the paper's "approximately 2.4 seconds of video".
  ClientBuffers b(37, 240 * 1024, 5833);
  const double seconds =
      static_cast<double>(b.total_capacity_frames()) / 30.0;
  EXPECT_NEAR(seconds, 2.4, 0.3);
}

class BufferFuzz : public ::testing::TestWithParam<unsigned> {};

// Random arrival orders with drops and duplicates: displayed indices are
// strictly increasing, counters are consistent, capacity is never exceeded.
TEST_P(BufferFuzz, InvariantsUnderRandomTraffic) {
  std::mt19937 gen(GetParam() * 1299709 + 11);
  ClientBuffers b(8, 6 * 5000, 5000);
  std::uniform_int_distribution<int> jitter(-3, 3);
  std::uniform_int_distribution<int> action(0, 9);
  std::uint64_t next = 0;
  std::int64_t last_shown = -1;
  for (int step = 0; step < 5000; ++step) {
    if (action(gen) < 7) {
      // Arrival with jittered index; occasionally skip ahead (loss) or
      // repeat (duplicate).
      const std::int64_t idx = static_cast<std::int64_t>(next) + jitter(gen);
      if (idx >= 0) {
        const auto type = idx % 12 == 0 ? mpeg::FrameType::kI
                                        : mpeg::FrameType::kB;
        b.insert(frame(static_cast<std::uint64_t>(idx), type));
      }
      ++next;
    } else {
      if (auto f = b.consume()) {
        ASSERT_GT(static_cast<std::int64_t>(f->index), last_shown);
        last_shown = static_cast<std::int64_t>(f->index);
      }
    }
    ASSERT_LE(b.sw_frames(), 8u);
    ASSERT_LE(b.hw_bytes(), 6u * 5000u + 20'000u);  // one oversized allowance
  }
  // Conservation: every received frame is either displayed, still buffered,
  // dropped as late, or discarded on overflow.
  const BufferCounters& c = b.counters();
  ASSERT_EQ(c.displayed + b.total_frames() + c.late + c.overflow_discards,
            c.received);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferFuzz, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace ftvod::vod
