// Property tests for the replica-placement layer.
//
// Model level (pure PlacementModel, no deployment): over randomized demand
// trajectories with random server crashes/revivals,
//   * safety  — a watched title never sits below its k-tolerance floor of
//               live replicas for more than the cooldown window, and never
//               below it at all while the live set is stable;
//   * stability — once demand and the live set freeze, the model goes
//               quiet within a bounded number of periods and stays quiet
//               forever (no add/drop oscillation — the hysteresis dead
//               band at work);
//   * determinism — the op sequence is a pure function of the trajectory.
//
// Controller level (real Deployment): a crashed-and-restarted server
// rejoins with an empty catalog; reconciliation must re-register every
// title the model still wants there — the restart-recovery path the chaos
// tier leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "testing/chaos.hpp"
#include "util/rng.hpp"
#include "vod/placement.hpp"

namespace ftvod::vod {
namespace {

std::string title_of(int i) { return "t" + std::to_string(i); }

// How many of `replicas` are in the sorted `live` set.
std::size_t live_held(const std::vector<net::NodeId>& replicas,
                      const std::vector<net::NodeId>& live) {
  std::size_t n = 0;
  for (net::NodeId r : replicas) {
    if (std::binary_search(live.begin(), live.end(), r)) ++n;
  }
  return n;
}

std::string describe_ops(const std::vector<PlacementOp>& ops) {
  std::ostringstream os;
  for (const PlacementOp& op : ops) {
    os << (op.kind == PlacementOp::Kind::kAdd ? "+" : "-") << op.title << "@n"
       << op.node << " ";
  }
  return os.str();
}

// One randomized trajectory: demand per title performs a clamped random
// walk, servers crash and revive (at least one always live). Checks the
// floor property after every step.
void run_trajectory(std::uint64_t seed) {
  util::Rng rng(seed);
  PlacementConfig cfg;
  cfg.replication_floor = 2;
  cfg.viewers_per_replica = 20;
  cfg.cooldown_periods = 2;
  PlacementModel model(cfg);

  constexpr int kTitles = 12;
  constexpr int kServers = 6;
  constexpr int kSteps = 300;
  for (int i = 0; i < kTitles; ++i) model.add_title(title_of(i));

  std::vector<net::NodeId> all_servers;
  for (int i = 0; i < kServers; ++i) {
    all_servers.push_back(static_cast<net::NodeId>(i));
  }
  std::vector<bool> up(kServers, true);
  std::map<std::string, std::size_t> viewers;
  for (int i = 0; i < kTitles; ++i) viewers[title_of(i)] = 0;

  // Consecutive steps a watched title ended below its floor. Reset when the
  // live set changes (a fresh dip is legitimate); must never exceed the
  // cooldown window (the only thing that may delay a repair).
  std::map<std::string, int> below_floor_steps;

  for (int step = 0; step < kSteps; ++step) {
    // Random-walk the demand.
    for (auto& [title, v] : viewers) {
      const double r = rng.uniform();
      if (r < 0.25 && v > 0) v -= std::min<std::size_t>(v, 5);
      if (r > 0.75) v += static_cast<std::size_t>(rng.uniform_int(1, 8));
      if (rng.uniform() < 0.02) v += 60;  // occasional flash crowd
    }
    // Crash / revive servers, keeping at least one up.
    bool live_changed = false;
    if (rng.uniform() < 0.15) {
      const int s = static_cast<int>(rng.uniform_int(0, kServers - 1));
      if (up[s]) {
        const int live_now =
            static_cast<int>(std::count(up.begin(), up.end(), true));
        if (live_now > 1) {
          up[s] = false;
          live_changed = true;
        }
      } else {
        up[s] = true;
        live_changed = true;
      }
    }
    std::vector<net::NodeId> live;
    for (int i = 0; i < kServers; ++i) {
      if (up[i]) live.push_back(all_servers[i]);
    }
    if (live_changed) below_floor_steps.clear();

    const auto ops = model.step(viewers, live);

    for (const auto& [title, v] : viewers) {
      if (v == 0) continue;
      const std::size_t floor =
          std::min<std::size_t>(cfg.replication_floor, live.size());
      const std::size_t held = live_held(model.replicas(title), live);
      if (held >= floor) {
        below_floor_steps[title] = 0;
        continue;
      }
      const int dip = ++below_floor_steps[title];
      ASSERT_LE(dip, cfg.cooldown_periods)
          << "seed " << seed << " step " << step << ": '" << title << "' ("
          << v << " viewers) held " << held << " < floor " << floor
          << " live replicas beyond the cooldown window; ops this step: "
          << describe_ops(ops);
    }
  }
}

TEST(PlacementProperty, FloorHeldAcrossRandomTrajectories) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) run_trajectory(seed);
}

TEST(PlacementProperty, StableLiveSetNeverDipsBelowFloor) {
  // With no crashes and every title continuously watched, the floor must
  // hold after *every* step: shrink never retires below the floor, growth
  // reaches the target within one period, and the cooldown window only
  // matters for dips that crashes (or idle decay to idle_replicas < floor)
  // caused — neither can happen here.
  util::Rng rng(7);
  PlacementConfig cfg;
  cfg.replication_floor = 2;
  cfg.viewers_per_replica = 25;
  PlacementModel model(cfg);
  constexpr int kTitles = 8;
  for (int i = 0; i < kTitles; ++i) model.add_title(title_of(i));
  const std::vector<net::NodeId> live = {0, 1, 2, 3};
  std::map<std::string, std::size_t> viewers;
  for (int step = 0; step < 200; ++step) {
    for (int i = 0; i < kTitles; ++i) {
      viewers[title_of(i)] =
          static_cast<std::size_t>(rng.uniform_int(1, 120));
    }
    model.step(viewers, live);
    for (const auto& [title, v] : viewers) {
      EXPECT_GE(live_held(model.replicas(title), live), 2u)
          << title << " at step " << step;
    }
  }
}

TEST(PlacementProperty, ConvergesAndStaysQuietUnderConstantDemand) {
  // Freeze demand and the live set at random levels; after the cooldown
  // flushes, the model must go quiet and *stay* quiet — the add threshold
  // (v > vpr*n) and the drop threshold (v <= margin*vpr*(n-1)) are
  // separated by the dead band, so no demand level can flap.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed);
    PlacementConfig cfg;
    cfg.viewers_per_replica = 30;
    PlacementModel model(cfg);
    constexpr int kTitles = 10;
    std::map<std::string, std::size_t> viewers;
    for (int i = 0; i < kTitles; ++i) {
      model.add_title(title_of(i));
      viewers[title_of(i)] =
          static_cast<std::size_t>(rng.uniform_int(0, 200));
    }
    const std::vector<net::NodeId> live = {0, 1, 2, 3, 4};

    // Settle: first placement plus one full cooldown, with margin.
    int settle = 0;
    for (; settle < 2 * (cfg.cooldown_periods + 1); ++settle) {
      if (model.step(viewers, live).empty()) break;
    }
    EXPECT_LE(settle, cfg.cooldown_periods + 1) << "seed " << seed;
    for (int step = 0; step < 50; ++step) {
      const auto ops = model.step(viewers, live);
      ASSERT_TRUE(ops.empty())
          << "seed " << seed << " oscillated " << step
          << " steps after convergence: " << describe_ops(ops);
    }
  }
}

TEST(PlacementProperty, InitialPlacementBalancesLoad) {
  // Equal demand on every title from an empty model: the least-loaded add
  // rule must spread replicas evenly (max/min desired load differ by <= 1).
  PlacementConfig cfg;
  cfg.replication_floor = 2;
  PlacementModel model(cfg);
  constexpr int kTitles = 20;
  std::map<std::string, std::size_t> viewers;
  for (int i = 0; i < kTitles; ++i) {
    model.add_title(title_of(i));
    viewers[title_of(i)] = 10;
  }
  const std::vector<net::NodeId> live = {0, 1, 2, 3, 4};
  model.step(viewers, live);
  std::size_t lo = kTitles * 2, hi = 0, total = 0;
  for (net::NodeId n : live) {
    lo = std::min(lo, model.load(n));
    hi = std::max(hi, model.load(n));
    total += model.load(n);
  }
  EXPECT_LE(hi - lo, 1u);
  EXPECT_EQ(total, 2u * kTitles);  // floor(=2) replicas for each title
}

TEST(PlacementProperty, OpSequenceIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    util::Rng rng(seed);
    PlacementConfig cfg;
    PlacementModel model(cfg);
    std::map<std::string, std::size_t> viewers;
    for (int i = 0; i < 10; ++i) model.add_title(title_of(i));
    const std::vector<net::NodeId> live = {0, 1, 2, 3};
    std::string trace;
    for (int step = 0; step < 100; ++step) {
      for (int i = 0; i < 10; ++i) {
        viewers[title_of(i)] =
            static_cast<std::size_t>(rng.uniform_int(0, 150));
      }
      trace += describe_ops(model.step(viewers, live));
      trace += "|";
    }
    return trace;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

// ---------------------------------------------------------------------------
// Controller-level regression: restart re-registration.

TEST(PlacementController, RestartedServerGetsItsCatalogBack) {
  Deployment dep(20260808);
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(dep.add_host("server" + std::to_string(i)));
  }
  const net::NodeId client_host = dep.add_host("viewer");
  for (net::NodeId h : hosts) dep.start_server(h);
  dep.start_client(client_host);

  PlacementConfig cfg;
  cfg.replication_floor = 2;
  PlacementController ctl(dep, cfg);
  for (int i = 0; i < 4; ++i) {
    ctl.manage(mpeg::Movie::synthetic("m" + std::to_string(i), 600.0));
  }
  ctl.start();
  dep.run_for(sim::sec(3.0));  // GCS convergence + first placements
  dep.clients()[0]->client->watch("m0");
  dep.run_for(sim::sec(3.0));

  // The watched title sits at its floor (=2); idle titles keep the single
  // archival copy.
  EXPECT_EQ(ctl.model().replicas("m0").size(), 2u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(ctl.model().replicas("m" + std::to_string(i)).size(), 1u) << i;
  }

  // Pick a server the model wants at least one title on, reboot it.
  const net::NodeId victim = ctl.model().replicas("m0").front();
  const std::size_t wanted_here = ctl.model().load(victim);
  ASSERT_GT(wanted_here, 0u);
  dep.crash(victim);
  dep.run_for(sim::sec(2.0));
  Deployment::ServerNode* sn = dep.restart_server(victim);
  ASSERT_NE(sn, nullptr);
  ASSERT_TRUE(sn->server->catalog().titles().empty());  // fresh reboot

  const std::uint64_t before = ctl.stats().reregistrations;
  ctl.handle_restart(victim);
  EXPECT_EQ(ctl.stats().reregistrations - before, wanted_here);
  for (int i = 0; i < 4; ++i) {
    const std::string title = "m" + std::to_string(i);
    const auto& want = ctl.model().replicas(title);
    if (std::find(want.begin(), want.end(), victim) != want.end()) {
      EXPECT_TRUE(sn->server->catalog().contains(title)) << title;
    }
  }
  // And the stream still works end to end after the reboot.
  dep.run_for(sim::sec(6.0));
  EXPECT_TRUE(dep.clients()[0]->client->playing());
}

TEST(PlacementController, PeriodicTickRepairsRestartWithoutDelegate) {
  // Even with nobody calling handle_restart, the periodic reconcile pass
  // must repair the empty catalog within a few control periods.
  Deployment dep(424242);
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(dep.add_host("s" + std::to_string(i)));
  }
  for (net::NodeId h : hosts) dep.start_server(h);
  PlacementConfig cfg;
  cfg.replication_floor = 2;
  cfg.control_period = sim::msec(500);
  PlacementController ctl(dep, cfg);
  ctl.manage(mpeg::Movie::synthetic("solo", 600.0));
  ctl.start();
  dep.run_for(sim::sec(3.0));

  const net::NodeId victim = ctl.model().replicas("solo").front();
  dep.crash(victim);
  dep.run_for(sim::sec(1.0));
  Deployment::ServerNode* sn = dep.restart_server(victim);
  ASSERT_NE(sn, nullptr);
  dep.run_for(sim::sec(2.0));  // a few control periods
  if (std::binary_search(ctl.model().replicas("solo").begin(),
                         ctl.model().replicas("solo").end(), victim)) {
    EXPECT_TRUE(sn->server->catalog().contains("solo"));
  } else {
    // The model may have re-homed the title while the victim was down; it
    // must then live on enough *other* servers instead.
    EXPECT_GE(ctl.model().replicas("solo").size(), 2u);
  }
  EXPECT_GT(ctl.stats().ticks, 0u);
}

}  // namespace
}  // namespace ftvod::vod
