#include "vod/wire.hpp"

#include <gtest/gtest.h>

namespace ftvod::vod::wire {
namespace {

TEST(VodWire, OpenRequestRoundTrip) {
  OpenRequest m{42, "casablanca", {3, 9100}, 15.0};
  auto d = decode_open_request(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->client_id, 42u);
  EXPECT_EQ(d->movie, "casablanca");
  EXPECT_EQ(d->data_endpoint, (net::Endpoint{3, 9100}));
  EXPECT_DOUBLE_EQ(d->capability_fps, 15.0);
}

TEST(VodWire, OpenReplyRoundTrip) {
  OpenReply m{42, "casablanca", 30.0, 180'000, 5833};
  auto d = decode_open_reply(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->frame_count, 180'000u);
  EXPECT_EQ(d->avg_frame_bytes, 5833u);
}

TEST(VodWire, FlowRoundTripBothDirections) {
  for (std::int8_t delta : {std::int8_t{+1}, std::int8_t{-1}}) {
    Flow m{7, delta};
    auto d = decode_flow(encode(m));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->delta, delta);
  }
}

TEST(VodWire, EmergencyTiers) {
  for (std::uint8_t tier : {1, 2}) {
    Emergency m{7, tier};
    auto d = decode_emergency(encode(m));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->tier, tier);
  }
}

TEST(VodWire, VcrOps) {
  for (VcrOp op : {VcrOp::kPause, VcrOp::kResume, VcrOp::kSeek, VcrOp::kStop}) {
    Vcr m{9, op, 12345};
    auto d = decode_vcr(encode(m));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->op, op);
    EXPECT_EQ(d->seek_frame, 12345u);
  }
}

TEST(VodWire, StateSyncRoundTrip) {
  StateSync m;
  m.movie = "m";
  m.clients = {
      {1, {2, 9100}, 555, 31.0, 0.0, 0.0, false},
      {2, {3, 9100}, 777, 29.0, 15.0, 15.0, true},
  };
  auto d = decode_state_sync(encode(m));
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->clients.size(), 2u);
  EXPECT_EQ(d->clients[0].next_frame, 555u);
  EXPECT_DOUBLE_EQ(d->clients[1].quality_fps, 15.0);
  EXPECT_TRUE(d->clients[1].paused);
}

TEST(VodWire, EmptyStateSync) {
  StateSync m;
  m.movie = "empty";
  auto d = decode_state_sync(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->clients.empty());
}

TEST(VodWire, FrameRoundTripAndHeaderSize) {
  Frame m{88, 4242, mpeg::FrameType::kB, 2800};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes);
  auto d = decode_frame(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->frame_index, 4242u);
  EXPECT_EQ(d->type, mpeg::FrameType::kB);
  EXPECT_EQ(d->size_bytes, 2800u);
}

TEST(VodWire, CrossDecodeRejected) {
  Flow m{7, +1};
  const auto bytes = encode(m);
  EXPECT_EQ(decode_vcr(bytes), std::nullopt);
  EXPECT_EQ(decode_frame(bytes), std::nullopt);
  EXPECT_EQ(peek_type(bytes), MsgType::kFlow);
}

TEST(VodWire, TruncationRejected) {
  StateSync m;
  m.movie = "m";
  m.clients.resize(3);
  auto bytes = encode(m);
  bytes.resize(bytes.size() / 2);
  EXPECT_EQ(decode_state_sync(bytes), std::nullopt);
}

TEST(VodWire, GarbageRejected) {
  util::Bytes junk{std::byte{99}, std::byte{1}, std::byte{2}};
  EXPECT_EQ(peek_type(junk), std::nullopt);
  EXPECT_EQ(decode_open_request(junk), std::nullopt);
}

}  // namespace
}  // namespace ftvod::vod::wire
