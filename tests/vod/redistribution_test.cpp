// Deterministic client re-distribution (§5.2): balance, stability,
// orphan adoption, and agreement across independent runs.
#include "vod/redistribution.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ftvod::vod {
namespace {

std::map<net::NodeId, std::size_t> load_of(const Assignment& a) {
  std::map<net::NodeId, std::size_t> load;
  for (const auto& [client, server] : a) ++load[server];
  return load;
}

TEST(Redistribution, EmptyInputs) {
  EXPECT_TRUE(rebalance({}, {1, 2}).empty());
  const Assignment a = rebalance({{100, 1}}, {});
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.at(100), net::kInvalidNode);
}

TEST(Redistribution, SingleServerTakesAll) {
  Assignment cur{{1, 9}, {2, 9}, {3, 9}};  // owner 9 is gone
  const Assignment a = rebalance(cur, {5});
  for (const auto& [client, server] : a) EXPECT_EQ(server, 5u);
}

TEST(Redistribution, OrphansOfDeadServerAdopted) {
  // Clients 1-4 on server 10, clients 5-6 on server 20; server 10 dies.
  Assignment cur{{1, 10}, {2, 10}, {3, 10}, {4, 10}, {5, 20}, {6, 20}};
  const Assignment a = rebalance(cur, {20, 30});
  auto load = load_of(a);
  EXPECT_EQ(load[20], 3u);
  EXPECT_EQ(load[30], 3u);
  // The stable clients stayed put.
  EXPECT_EQ(a.at(5), 20u);
  EXPECT_EQ(a.at(6), 20u);
}

TEST(Redistribution, BalancedWithinOne) {
  Assignment cur;
  for (std::uint64_t c = 0; c < 17; ++c) cur[c] = 99;  // all orphaned
  const Assignment a = rebalance(cur, {1, 2, 3, 4, 5});
  auto load = load_of(a);
  std::size_t lo = 17, hi = 0;
  for (const auto& [server, n] : load) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Redistribution, StableWhenAlreadyBalanced) {
  Assignment cur{{1, 10}, {2, 10}, {3, 20}, {4, 20}};
  const Assignment a = rebalance(cur, {10, 20});
  EXPECT_EQ(a, cur);  // nothing moves
}

TEST(Redistribution, NewServerRelievesLoad) {
  // The paper's load-balancing scenario: a server is brought up and takes a
  // share of existing clients.
  Assignment cur{{1, 10}, {2, 10}, {3, 10}, {4, 10}};
  const Assignment a = rebalance(cur, {10, 20});
  auto load = load_of(a);
  EXPECT_EQ(load[10], 2u);
  EXPECT_EQ(load[20], 2u);
  // Minimal movement: exactly two clients migrated.
  int moved = 0;
  for (const auto& [c, s] : a) {
    if (cur.at(c) != s) ++moved;
  }
  EXPECT_EQ(moved, 2);
}

TEST(Redistribution, MinimalMovesOnCrash) {
  // 3 servers x 2 clients; one server dies: only its 2 clients move.
  Assignment cur{{1, 10}, {2, 10}, {3, 20}, {4, 20}, {5, 30}, {6, 30}};
  const Assignment a = rebalance(cur, {10, 20});
  int moved = 0;
  for (const auto& [c, s] : a) {
    if (cur.at(c) != s) ++moved;
  }
  EXPECT_EQ(moved, 2);
  EXPECT_EQ(a.at(1), 10u);
  EXPECT_EQ(a.at(3), 20u);
}

TEST(Redistribution, SpreadPolicyMigratesToNewEmptyServer) {
  // The paper's load-balance run: one client, and a new server appears.
  Assignment cur{{1, 10}};
  const Assignment a = rebalance(cur, {10, 20}, RebalancePolicy::kSpread);
  EXPECT_EQ(a.at(1), 20u);  // the empty newcomer attracts the client
}

TEST(Redistribution, StablePolicyKeepsClientOnCurrentServer) {
  Assignment cur{{1, 10}};
  const Assignment a = rebalance(cur, {10, 20}, RebalancePolicy::kStable);
  EXPECT_EQ(a.at(1), 10u);  // balanced either way: nothing moves
}

TEST(Redistribution, StablePolicyStillBalancesRealImbalance) {
  Assignment cur{{1, 10}, {2, 10}, {3, 10}, {4, 10}};
  const Assignment a = rebalance(cur, {10, 20}, RebalancePolicy::kStable);
  auto load = load_of(a);
  EXPECT_EQ(load[10], 2u);
  EXPECT_EQ(load[20], 2u);
}

TEST(Redistribution, DeterministicAcrossCalls) {
  Assignment cur;
  for (std::uint64_t c = 0; c < 50; ++c) cur[c] = (c % 3) * 10;
  const std::vector<net::NodeId> servers{0, 10, 20, 30};
  EXPECT_EQ(rebalance(cur, servers), rebalance(cur, servers));
}

TEST(ChooseForNewClient, LeastLoadedWins) {
  Assignment cur{{1, 10}, {2, 10}, {3, 20}};
  EXPECT_EQ(choose_for_new_client(cur, {10, 20}), 20u);
}

TEST(ChooseForNewClient, TieBreaksToLowestId) {
  Assignment cur{{1, 10}, {2, 20}};
  EXPECT_EQ(choose_for_new_client(cur, {10, 20}), 10u);
  EXPECT_EQ(choose_for_new_client({}, {7, 3, 5}), 3u);
}

TEST(ChooseForNewClient, EmptyServerList) {
  EXPECT_EQ(choose_for_new_client({}, {}), net::kInvalidNode);
}

TEST(ChooseForNewClient, IgnoresLoadOnDeadServers) {
  Assignment cur{{1, 99}, {2, 99}, {3, 10}};
  // Server 99 is not in the view: its sessions do not count against anyone.
  EXPECT_EQ(choose_for_new_client(cur, {10, 20}), 20u);
}

class RedistributionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RedistributionProperty, RandomTopologiesStayBalancedAndTotal) {
  std::mt19937 gen(GetParam() * 31337 + 7);
  std::uniform_int_distribution<int> n_servers_d(1, 8);
  std::uniform_int_distribution<int> n_clients_d(0, 60);
  for (int iter = 0; iter < 50; ++iter) {
    const int n_servers = n_servers_d(gen);
    std::vector<net::NodeId> servers;
    for (int s = 0; s < n_servers; ++s) {
      servers.push_back(static_cast<net::NodeId>(s * 3 + gen() % 3));
    }
    std::sort(servers.begin(), servers.end());
    servers.erase(std::unique(servers.begin(), servers.end()), servers.end());

    Assignment cur;
    const int n_clients = n_clients_d(gen);
    for (int c = 0; c < n_clients; ++c) {
      // Random previous owner, possibly dead.
      cur[static_cast<std::uint64_t>(c)] =
          static_cast<net::NodeId>(gen() % 30);
    }
    const Assignment a = rebalance(cur, servers);
    ASSERT_EQ(a.size(), cur.size());
    std::size_t lo = SIZE_MAX, hi = 0;
    auto load = load_of(a);
    for (net::NodeId s : servers) {
      lo = std::min(lo, load[s]);
      hi = std::max(hi, load[s]);
    }
    if (!servers.empty() && !cur.empty()) {
      ASSERT_LE(hi - lo, 1u) << "imbalance";
      for (const auto& [c, s] : a) {
        ASSERT_TRUE(std::binary_search(servers.begin(), servers.end(), s));
      }
    }
    // Re-running stays balanced and total too.
    const Assignment again = rebalance(a, servers);
    ASSERT_EQ(again.size(), a.size());

    // The kStable policy is additionally idempotent: re-running on its own
    // result moves nobody.
    const Assignment stable = rebalance(cur, servers, RebalancePolicy::kStable);
    EXPECT_EQ(rebalance(stable, servers, RebalancePolicy::kStable), stable);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistributionProperty,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace ftvod::vod
