// Server behaviour through the full stack: open-request arbitration, state
// sync semantics, table-exchange determinism, catalog changes.
#include <gtest/gtest.h>

#include "../integration/vod_testbed.hpp"

namespace ftvod::vod {
namespace {

using testing::VodTestBed;

TEST(ServerBehavior, ExactlyOneServerOpensASession) {
  VodTestBed bed(3, 1);
  bed.watch_all();
  bed.run_for(8.0);
  int serving = 0;
  for (int s = 0; s < 3; ++s) {
    if (bed.server(s).serves(bed.client().client_id())) ++serving;
  }
  EXPECT_EQ(serving, 1);
  // Exactly one fresh session was opened across the whole group.
  std::uint64_t opened = 0;
  for (int s = 0; s < 3; ++s) opened += bed.server(s).stats().sessions_opened;
  EXPECT_EQ(opened, 1u);
}

TEST(ServerBehavior, DuplicateOpenRequestIsIdempotent) {
  // The client retries OpenRequest until a reply arrives; make the reply
  // slow by using a lossy link so retries genuinely overlap.
  net::LinkQuality q = net::lan_quality();
  q.loss = 0.35;
  VodTestBed bed(1, 1, q, 3);
  bed.watch_all();
  bed.run_for(15.0);
  ASSERT_TRUE(bed.client().connected());
  EXPECT_EQ(bed.server(0).session_count(), 1u);
  EXPECT_EQ(bed.server(0).stats().sessions_opened, 1u);
}

TEST(ServerBehavior, SecondWatchOfSameMovieGetsOwnSession) {
  VodTestBed bed(1, 2);
  bed.watch_all();
  bed.run_for(8.0);
  EXPECT_EQ(bed.server(0).session_count(), 2u);
  EXPECT_NE(bed.client(0).client_id(), bed.client(1).client_id());
}

TEST(ServerBehavior, StateSyncCarriesOffsets) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(12.0);
  const int serving = bed.serving_server();
  const int other = 1 - serving;
  // The idle server must know the client's position from the syncs: crash
  // the serving one and check the takeover offset is recent.
  const std::int64_t displayed = bed.client().buffers()->last_displayed();
  bed.crash_server(serving);
  bed.run_for(3.0);
  ASSERT_TRUE(bed.server(other).serves(bed.client().client_id()));
  // Resumed within ~2 s of the display position (sync staleness bound).
  EXPECT_GT(bed.client().counters().received, 0u);
  EXPECT_GT(displayed, 200);
}

TEST(ServerBehavior, RemoveMovieMigratesClients) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(10.0);
  const int serving = bed.serving_server();
  const int other = 1 - serving;
  bed.server(serving).remove_movie(bed.movie()->name());
  bed.run_for(5.0);
  // The other replica picks the client up (the removal leaves the movie
  // group, which the survivors see as a membership change).
  EXPECT_TRUE(bed.server(other).serves(bed.client().client_id()));
  EXPECT_TRUE(bed.client().playing());
}

TEST(ServerBehavior, HaltedServerStopsTransmitting) {
  VodTestBed bed(1, 1);
  bed.watch_all();
  bed.run_for(8.0);
  bed.server(0).halt();
  const auto sent = bed.server(0).stats().frames_sent;
  bed.run_for(5.0);
  EXPECT_EQ(bed.server(0).stats().frames_sent, sent);
  EXPECT_TRUE(bed.server(0).halted());
}

TEST(ServerBehavior, CatalogReflectsAddAndRemove) {
  VodTestBed bed(1, 1);
  EXPECT_TRUE(bed.server(0).catalog().contains("feature"));
  bed.server(0).add_movie(mpeg::Movie::synthetic("extra", 30.0));
  EXPECT_EQ(bed.server(0).catalog().size(), 2u);
  bed.server(0).remove_movie("extra");
  EXPECT_FALSE(bed.server(0).catalog().contains("extra"));
}

class ExactlyOneOwner : public ::testing::TestWithParam<unsigned> {};

// Invariant: after any crash/recovery sequence settles, each client is
// served by exactly one live server (the paper: "each client is served by
// exactly one server").
TEST_P(ExactlyOneOwner, AfterCrashAndRecovery) {
  VodTestBed bed(3, 2, net::lan_quality(), GetParam() * 977 + 5);
  bed.watch_all();
  bed.run_for(12.0 + (GetParam() % 4) * 0.37);
  const int victim = bed.serving_server(0);
  ASSERT_GE(victim, 0);
  bed.crash_server(victim);
  bed.run_for(8.0);
  for (int c = 0; c < 2; ++c) {
    int owners = 0;
    for (int s = 0; s < 3; ++s) {
      if (s == victim) continue;
      if (bed.server(s).serves(bed.client(c).client_id())) ++owners;
    }
    EXPECT_EQ(owners, 1) << "client " << c << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactlyOneOwner, ::testing::Range(0u, 10u));

TEST(ServerBehavior, PausedStateSurvivesTakeover) {
  VodTestBed bed(2, 1);
  bed.watch_all();
  bed.run_for(10.0);
  bed.client().pause();
  bed.run_for(2.0);  // let a sync carry the paused flag
  bed.crash_server(bed.serving_server());
  bed.run_for(4.0);
  // The takeover server must not stream into a paused session.
  const auto received = bed.client().counters().received;
  bed.run_for(5.0);
  EXPECT_LE(bed.client().counters().received - received, 2u);
}

TEST(ServerBehavior, SyncAbsenceToleranceKeepsFreshClients) {
  // A client connecting right around a sync boundary must never be erased
  // from the other servers' tables by the pre-connection (empty) sync.
  for (std::uint64_t seed : {1ull, 9ull, 23ull, 47ull}) {
    VodTestBed bed(2, 1, net::lan_quality(), seed);
    bed.watch_all();
    bed.run_for(15.0);
    ASSERT_TRUE(bed.client().connected()) << "seed " << seed;
    EXPECT_EQ(bed.serving_server() >= 0, true) << "seed " << seed;
    EXPECT_GT(bed.client().counters().displayed, 300u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ftvod::vod
