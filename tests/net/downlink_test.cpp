// Receiver-downlink model: serialization, tail-drop under contention, and
// the background traffic generator.
#include <gtest/gtest.h>

#include "net/traffic.hpp"

namespace ftvod::net {
namespace {

util::Bytes small_msg() {
  util::Writer w;
  w.u32(7);
  return w.take();
}

class DownlinkTest : public ::testing::Test {
 protected:
  DownlinkTest() : rng_(5), net_(sched_, rng_) {
    a_ = net_.add_host("sender");
    HostConfig slow;
    slow.downlink_bps = 1e6;  // 1 Mbps last mile
    slow.downlink_queue_bytes = 8'000;
    b_ = net_.add_host("receiver", slow);
  }

  sim::Scheduler sched_;
  util::Rng rng_;
  Network net_;
  NodeId a_, b_;
};

TEST_F(DownlinkTest, SerializationDelaysDelivery) {
  auto sa = net_.bind(a_, 1, nullptr);
  sim::Time arrival = 0;
  auto sb = net_.bind(b_, 2, [&](const Endpoint&, std::span<const std::byte>) {
    arrival = sched_.now();
  });
  // 10 KB at a 1 Mbps downlink ~ 80 ms.
  sa->send({b_, 2}, small_msg(), 10'000);
  sched_.run();
  EXPECT_GT(arrival, sim::msec(75));
}

TEST_F(DownlinkTest, BurstBeyondQueueDrops) {
  auto sa = net_.bind(a_, 1, nullptr);
  int got = 0;
  auto sb = net_.bind(
      b_, 2, [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  for (int i = 0; i < 50; ++i) sa->send({b_, 2}, small_msg(), 1'000);
  sched_.run();
  EXPECT_LT(got, 50);
  EXPECT_GT(net_.stats(b_).dropped_queue, 0u);
}

TEST_F(DownlinkTest, JunkToUnboundPortStillConsumesDownlink) {
  // Background traffic addressed to nobody still occupies the last mile
  // and delays/drops the real stream.
  auto sa = net_.bind(a_, 1, nullptr);
  const NodeId junk_src = net_.add_host("junk");
  auto junk_sock = net_.bind(junk_src, 9, nullptr);
  // Saturate the downlink with junk first and let it queue up.
  for (int i = 0; i < 30; ++i) junk_sock->send({b_, 777}, small_msg(), 1'000);
  sched_.run_until(sim::msec(5));
  sim::Time arrival = 0;
  auto sb = net_.bind(b_, 2, [&](const Endpoint&, std::span<const std::byte>) {
    arrival = sched_.now();
  });
  sa->send({b_, 2}, small_msg(), 100);
  sched_.run();
  // Either delayed behind the queued junk or dropped with it.
  if (arrival > 0) {
    EXPECT_GT(arrival, sim::msec(20));
  } else {
    EXPECT_GT(net_.stats(b_).dropped_queue, 0u);
  }
}

TEST_F(DownlinkTest, DefaultDownlinkIsTransparent) {
  sim::Scheduler sched;
  util::Rng rng(1);
  Network net(sched, rng);
  const NodeId x = net.add_host("x");
  const NodeId y = net.add_host("y");  // default ~1 Gbps downlink
  auto sx = net.bind(x, 1, nullptr);
  int got = 0;
  auto sy = net.bind(
      y, 2, [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  // Stay under the sender's own uplink queue: the point is the receiver.
  for (int i = 0; i < 50; ++i) sx->send({y, 2}, small_msg(), 6'000);
  sched.run();
  EXPECT_EQ(got, 50);  // nothing dropped at the receiver
  EXPECT_EQ(net.stats(y).dropped_queue, 0u);
}

TEST(TrafficGenerator, ProducesConfiguredRate) {
  sim::Scheduler sched;
  util::Rng rng(1);
  Network net(sched, rng);
  const NodeId src = net.add_host("src");
  const NodeId dst = net.add_host("dst");
  TrafficGenerator gen(sched, net, src, dst, /*rate_bps=*/2e6,
                       /*datagram_bytes=*/1000);
  sched.run_until(sim::sec(2.0));
  // 2 Mbps in 1000-byte datagrams = 250/s; over 2 s ~ 500.
  EXPECT_NEAR(static_cast<double>(gen.datagrams_sent()), 500.0, 10.0);
  gen.stop();
  const auto frozen = gen.datagrams_sent();
  sched.run_until(sim::sec(3.0));
  EXPECT_EQ(gen.datagrams_sent(), frozen);
}

}  // namespace
}  // namespace ftvod::net
