// The Gilbert–Elliott bursty-loss channel: loss runs have the configured
// geometric length distribution, burst losses are accounted separately
// from the i.i.d. floor, the channel is off unless explicitly enabled,
// and a bursty run is exactly as reproducible as a clean one.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/network.hpp"

namespace ftvod::net {
namespace {

util::Bytes seq_msg(std::uint32_t i) {
  util::Writer w;
  w.u32(i);
  return w.take();
}

// Streams `n` sequence-numbered datagrams a->b at 1 ms spacing over the
// given link quality and returns the sequence numbers that arrived.
std::vector<std::uint32_t> stream(std::uint64_t seed, const LinkQuality& q,
                                  std::uint32_t n,
                                  HostStats* sender_stats = nullptr) {
  sim::Scheduler sched;
  util::Rng rng(seed);
  Network net(sched, rng);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.set_quality(a, b, q);

  std::vector<std::uint32_t> got;
  auto sb = net.bind(b, 9, [&](const Endpoint&, std::span<const std::byte> d) {
    util::Reader r(d);
    got.push_back(r.u32());
  });
  auto sa = net.bind(a, 5, nullptr);
  for (std::uint32_t i = 0; i < n; ++i) {
    sched.at(static_cast<sim::Time>(i) * sim::msec(1),
             [&, i] { sa->send({b, 9}, seq_msg(i)); });
  }
  sched.run();
  if (sender_stats != nullptr) *sender_stats = net.stats(a);
  return got;
}

// Lengths of the runs of consecutive missing sequence numbers.
std::vector<std::uint32_t> loss_runs(const std::vector<std::uint32_t>& got,
                                     std::uint32_t n) {
  const std::set<std::uint32_t> have(got.begin(), got.end());
  std::vector<std::uint32_t> runs;
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (have.contains(i)) {
      if (run > 0) runs.push_back(run);
      run = 0;
    } else {
      ++run;
    }
  }
  if (run > 0) runs.push_back(run);
  return runs;
}

TEST(BurstLoss, OffByDefaultEvenWithBadStateConfigured) {
  // loss_bad is inert while p_good_to_bad == 0: the channel never leaves
  // the good state, so a "clean" link with stale bad-state fields in its
  // config still delivers everything.
  LinkQuality q;
  q.jitter = 0;
  q.loss_bad = 1.0;
  q.p_bad_to_good = 0.25;
  EXPECT_FALSE(q.bursty());
  const auto got = stream(7, q, 2'000);
  EXPECT_EQ(got.size(), 2'000u);
}

TEST(BurstLoss, MeanBurstLengthMatchesTheChannel) {
  // Pure burst channel: no i.i.d. floor, certain loss in the bad state.
  // Loss runs are then exactly the bad-state sojourns — geometric with
  // mean 1/p_bad_to_good = 4 packets.
  LinkQuality q;
  q.jitter = 0;
  q.loss = 0.0;
  q.p_good_to_bad = 0.02;
  q.p_bad_to_good = 0.25;
  q.loss_bad = 1.0;
  EXPECT_TRUE(q.bursty());

  constexpr std::uint32_t kPackets = 20'000;
  HostStats stats;
  const auto got = stream(42, q, kPackets, &stats);
  const auto runs = loss_runs(got, kPackets);
  ASSERT_GT(runs.size(), 100u);  // enough bursts for the statistics

  std::uint64_t lost = 0;
  std::uint32_t longest = 0;
  for (std::uint32_t r : runs) {
    lost += r;
    longest = std::max(longest, r);
  }
  const double mean = static_cast<double>(lost) /
                      static_cast<double>(runs.size());
  EXPECT_NEAR(mean, 4.0, 0.7);
  // A geometric tail: multi-packet bursts must actually occur.
  EXPECT_GE(longest, 8u);

  // Overall loss fraction ~= the stationary bad-state probability,
  // p_g2b / (p_g2b + p_b2g) ~= 7.4 %.
  EXPECT_NEAR(static_cast<double>(lost) / kPackets, 0.074, 0.025);

  // Every one of those losses is attributed to the burst counter, and
  // none to the (zero-probability) i.i.d. floor.
  EXPECT_EQ(stats.dropped_burst, lost);
  EXPECT_EQ(stats.dropped_loss, lost);
}

TEST(BurstLoss, BurstsRideOnTopOfTheIidFloor) {
  // With both mechanisms on, the floor alone cannot explain the loss
  // volume, and the burst counter stays a strict subset of total loss.
  LinkQuality q;
  q.jitter = 0;
  q.loss = 0.01;
  q.p_good_to_bad = 0.02;
  q.p_bad_to_good = 0.25;
  q.loss_bad = 0.5;

  constexpr std::uint32_t kPackets = 20'000;
  HostStats stats;
  const auto got = stream(11, q, kPackets, &stats);
  const std::uint64_t lost = kPackets - got.size();
  EXPECT_EQ(stats.dropped_loss, lost);
  EXPECT_GT(stats.dropped_burst, 0u);
  EXPECT_LT(stats.dropped_burst, lost);
  // Expected loss: good-state floor (~0.93 * 1 %) + bad state (~7.4 % * 50 %)
  // ~= 4.6 %. Well above the floor alone.
  EXPECT_GT(static_cast<double>(lost) / kPackets, 0.025);
  EXPECT_LT(static_cast<double>(lost) / kPackets, 0.075);
}

TEST(BurstLoss, RestoredHostStartsInTheGoodState) {
  // Regression: the Gilbert–Elliott state is per node pair and used to
  // survive a crash/restore cycle. A channel wedged in the bad state then
  // greeted the rebooted host — typically a server re-registering its
  // catalog with the placement controller — with a phantom loss burst on a
  // link that was idle the whole downtime. restore_host must reset the
  // channel to the good state.
  sim::Scheduler sched;
  util::Rng rng(3);
  Network net(sched, rng);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");

  // Phase 1: wedge the channel. Guaranteed good->bad on the first packet,
  // never back: every datagram from here on dies in the bad state.
  LinkQuality wedge;
  wedge.jitter = 0;
  wedge.loss = 0.0;
  wedge.p_good_to_bad = 1.0;
  wedge.p_bad_to_good = 0.0;
  wedge.loss_bad = 1.0;
  net.set_quality(a, b, wedge);

  std::size_t got = 0;
  auto sb = net.bind(b, 9, [&](const Endpoint&, std::span<const std::byte>) {
    ++got;
  });
  auto sa = net.bind(a, 5, nullptr);
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched.at(static_cast<sim::Time>(i) * sim::msec(1),
             [&, i] { sa->send({b, 9}, seq_msg(i)); });
  }
  sched.run();
  EXPECT_EQ(got, 0u);  // wedged: everything lost

  // Phase 2: the channel itself becomes healthy (it only ever loses in the
  // bad state, which nothing can enter any more) — but the *state* is still
  // bad, so without the reset every packet keeps dying.
  LinkQuality healthy = wedge;
  healthy.p_good_to_bad = 1e-300;  // bursty() stays true; never fires
  net.set_quality(a, b, healthy);
  sched.at(sched.now() + sim::msec(1), [&] { sa->send({b, 9}, seq_msg(0)); });
  sched.run();
  EXPECT_EQ(got, 0u) << "channel left the bad state without a host restore";

  // Phase 3: reboot a. restore_host clears the pair's burst state, so the
  // revived host's first datagrams sail through in the good state.
  net.crash_host(a);
  net.restore_host(a);
  auto sa2 = net.bind(a, 6, nullptr);
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched.at(sched.now() + static_cast<sim::Time>(i + 1) * sim::msec(1),
             [&, i] { sa2->send({b, 9}, seq_msg(i)); });
  }
  sched.run();
  EXPECT_EQ(got, 10u);
}

TEST(BurstLoss, SameSeedSameBursts) {
  LinkQuality q;
  q.jitter = sim::msec(2);
  q.loss = 0.01;
  q.p_good_to_bad = 0.02;
  q.p_bad_to_good = 0.25;
  q.loss_bad = 0.6;
  const auto a = stream(99, q, 5'000);
  const auto b = stream(99, q, 5'000);
  EXPECT_EQ(a, b);  // identical deliveries, in the identical order
  const auto c = stream(100, q, 5'000);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ftvod::net
