#include "net/network.hpp"

#include <gtest/gtest.h>

#include "util/log.hpp"

namespace ftvod::net {
namespace {

util::Bytes msg(std::string_view s) {
  util::Writer w;
  w.str(s);
  return w.take();
}

std::string text(std::span<const std::byte> data) {
  util::Reader r(data);
  return r.str();
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : rng_(1234), net_(sched_, rng_) {
    a_ = net_.add_host("a");
    b_ = net_.add_host("b");
    c_ = net_.add_host("c");
  }

  sim::Scheduler sched_;
  util::Rng rng_;
  Network net_;
  NodeId a_, b_, c_;
};

TEST_F(NetworkTest, DeliversDatagram) {
  std::vector<std::string> got;
  auto sb = net_.bind(b_, 9, [&](const Endpoint& from,
                                 std::span<const std::byte> d) {
    EXPECT_EQ(from, (Endpoint{a_, 5}));
    got.push_back(text(d));
  });
  auto sa = net_.bind(a_, 5, nullptr);
  sa->send({b_, 9}, msg("hi"));
  sched_.run();
  EXPECT_EQ(got, std::vector<std::string>{"hi"});
}

TEST_F(NetworkTest, DeliveryTakesPositiveTime) {
  auto sa = net_.bind(a_, 5, nullptr);
  sim::Time arrival = -1;
  auto sb = net_.bind(b_, 9, [&](const Endpoint&, std::span<const std::byte>) {
    arrival = sched_.now();
  });
  sa->send({b_, 9}, msg("x"));
  sched_.run();
  EXPECT_GT(arrival, 0);
}

TEST_F(NetworkTest, LatencyWithinConfiguredBounds) {
  LinkQuality q;
  q.base_delay = sim::msec(10);
  q.jitter = sim::msec(5);
  net_.set_default_quality(q);
  auto sa = net_.bind(a_, 5, nullptr);
  std::vector<sim::Time> arrivals;
  auto sb = net_.bind(b_, 9, [&](const Endpoint&, std::span<const std::byte>) {
    arrivals.push_back(sched_.now());
  });
  for (int i = 0; i < 50; ++i) sa->send({b_, 9}, msg("x"));
  sched_.run();
  ASSERT_EQ(arrivals.size(), 50u);
  for (sim::Time t : arrivals) {
    EXPECT_GE(t, sim::msec(10));
    EXPECT_LE(t, sim::msec(16));  // base + jitter + serialization slack
  }
}

TEST_F(NetworkTest, JitterReordersPackets) {
  LinkQuality q;
  q.base_delay = sim::msec(5);
  q.jitter = sim::msec(20);
  net_.set_default_quality(q);
  auto sa = net_.bind(a_, 5, nullptr);
  std::vector<std::string> got;
  auto sb = net_.bind(b_, 9, [&](const Endpoint&, std::span<const std::byte> d) {
    got.push_back(text(d));
  });
  for (int i = 0; i < 100; ++i) sa->send({b_, 9}, msg(std::to_string(i)));
  sched_.run();
  ASSERT_EQ(got.size(), 100u);
  bool reordered = false;
  for (std::size_t i = 1; i < got.size(); ++i) {
    if (std::stoi(got[i]) < std::stoi(got[i - 1])) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST_F(NetworkTest, LossRateApproximatelyRespected) {
  LinkQuality q;
  q.loss = 0.2;
  net_.set_default_quality(q);
  auto sa = net_.bind(a_, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) sa->send({b_, 9}, msg("x"));
  sched_.run();
  EXPECT_NEAR(static_cast<double>(got) / n, 0.8, 0.03);
  EXPECT_EQ(net_.stats(a_).dropped_loss, static_cast<std::uint64_t>(n - got));
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  LinkQuality q;
  q.duplicate = 1.0;
  net_.set_default_quality(q);
  auto sa = net_.bind(a_, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  sa->send({b_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, UnboundPortDropsSilently) {
  auto sa = net_.bind(a_, 5, nullptr);
  sa->send({b_, 99}, msg("x"));
  sched_.run();
  EXPECT_EQ(net_.stats(b_).dropped_unreachable, 1u);
}

TEST_F(NetworkTest, RebindAfterSocketDestroyed) {
  { auto s1 = net_.bind(a_, 5, nullptr); }
  auto s2 = net_.bind(a_, 5, nullptr);
  EXPECT_EQ(s2->local(), (Endpoint{a_, 5}));
}

TEST_F(NetworkTest, DoubleBindThrows) {
  auto s1 = net_.bind(a_, 5, nullptr);
  EXPECT_THROW((void)net_.bind(a_, 5, nullptr), std::runtime_error);
}

TEST_F(NetworkTest, CrashDropsTrafficBothWays) {
  auto sa = net_.bind(a_, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  net_.crash_host(b_);
  sa->send({b_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got, 0);

  // Crashed host cannot send either.
  int got_a = 0;
  auto sa2 = net_.bind(a_, 6, [&](const Endpoint&, std::span<const std::byte>) {
    ++got_a;
  });
  sb->send({a_, 6}, msg("y"));
  sched_.run();
  EXPECT_EQ(got_a, 0);
}

TEST_F(NetworkTest, CrashDropsInFlightPackets) {
  LinkQuality q;
  q.base_delay = sim::msec(10);
  net_.set_default_quality(q);
  auto sa = net_.bind(a_, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  sa->send({b_, 9}, msg("x"));
  sched_.run_until(sim::msec(5));  // packet in flight
  net_.crash_host(b_);
  sched_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetworkTest, CrashListenersFire) {
  bool fired = false;
  net_.on_crash(a_, [&] { fired = true; });
  net_.crash_host(a_);
  EXPECT_TRUE(fired);
  // Idempotent: second crash does not re-fire.
  bool fired2 = false;
  net_.on_crash(a_, [&] { fired2 = true; });
  net_.crash_host(a_);
  EXPECT_FALSE(fired2);
}

TEST_F(NetworkTest, RestoreAllowsTrafficAgain) {
  auto sa = net_.bind(a_, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  net_.crash_host(b_);
  net_.restore_host(b_);
  sa->send({b_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, PartitionBlocksCrossTraffic) {
  auto sa = net_.bind(a_, 5, nullptr);
  int got_b = 0;
  int got_c = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got_b; });
  auto sc = net_.bind(c_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got_c; });
  net_.partition({{a_, c_}, {b_}});
  sa->send({b_, 9}, msg("x"));
  sa->send({c_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_c, 1);
  net_.heal();
  sa->send({b_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got_b, 1);
}

TEST_F(NetworkTest, PartitionDropsInFlight) {
  LinkQuality q;
  q.base_delay = sim::msec(10);
  net_.set_default_quality(q);
  auto sa = net_.bind(a_, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  sa->send({b_, 9}, msg("x"));
  sched_.run_until(sim::msec(5));
  net_.partition({{a_}, {b_}});
  sched_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetworkTest, ImplicitComponentForUnlistedHosts) {
  // b and c are unlisted: they form one implicit component together.
  net_.partition({{a_}});
  auto sb = net_.bind(b_, 5, nullptr);
  int got = 0;
  auto sc = net_.bind(c_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  sb->send({c_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, SerializationDelayScalesWithSize) {
  HostConfig slow;
  slow.uplink_bps = 1e6;  // 1 Mbps
  const NodeId d = net_.add_host("slow", slow);
  auto sd = net_.bind(d, 5, nullptr);
  sim::Time arrival = 0;
  auto sb = net_.bind(b_, 9, [&](const Endpoint&, std::span<const std::byte>) {
    arrival = sched_.now();
  });
  // 10 KB at 1 Mbps ~ 80 ms of serialization.
  sd->send({b_, 9}, msg("x"), 10'000);
  sched_.run();
  EXPECT_GT(arrival, sim::msec(75));
}

TEST_F(NetworkTest, QueueOverflowDrops) {
  HostConfig tiny;
  tiny.uplink_bps = 1e6;
  tiny.queue_limit_bytes = 2'000;
  const NodeId d = net_.add_host("tiny", tiny);
  auto sd = net_.bind(d, 5, nullptr);
  int got = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  for (int i = 0; i < 100; ++i) sd->send({b_, 9}, msg("x"), 1'000);
  sched_.run();
  EXPECT_LT(got, 100);
  EXPECT_GT(net_.stats(d).dropped_queue, 0u);
}

TEST_F(NetworkTest, StatsCountWireBytes) {
  auto sa = net_.bind(a_, 5, nullptr);
  auto sb = net_.bind(b_, 9, nullptr);
  sa->send({b_, 9}, msg("hello"), 100);
  sched_.run();
  // payload = 4 (length prefix) + 5 + 100 padding + 28 header
  EXPECT_EQ(net_.stats(a_).bytes_sent, 137u);
  EXPECT_EQ(net_.stats(b_).bytes_received, 137u);
  EXPECT_EQ(sa->stats().bytes_sent, 137u);
}

TEST_F(NetworkTest, PerPairQualityOverride) {
  LinkQuality lossy;
  lossy.loss = 1.0;
  net_.set_quality(a_, b_, lossy);
  auto sa = net_.bind(a_, 5, nullptr);
  int got_b = 0;
  int got_c = 0;
  auto sb = net_.bind(b_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got_b; });
  auto sc = net_.bind(c_, 9,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got_c; });
  sa->send({b_, 9}, msg("x"));
  sa->send({c_, 9}, msg("x"));
  sched_.run();
  EXPECT_EQ(got_b, 0);  // a<->b drops everything
  EXPECT_EQ(got_c, 1);
}

TEST_F(NetworkTest, SelfSendDelivers) {
  int got = 0;
  auto s1 = net_.bind(a_, 5, nullptr);
  auto s2 = net_.bind(a_, 6,
                      [&](const Endpoint&, std::span<const std::byte>) { ++got; });
  s1->send({a_, 6}, msg("x"));
  sched_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, RestoreHostResetsDownlinkBacklog) {
  // Regression: restore_host() used to reset only uplink_free_at, so a
  // rebooted host's downlink kept serving the pre-crash backlog and every
  // packet after the restore queued behind ghost traffic.
  HostConfig slow;
  slow.downlink_bps = 8e6;  // 1 byte/us: each ~1 KB packet busies ~1 ms
  const NodeId d = net_.add_host("slow-downlink", slow);
  std::vector<std::pair<sim::Time, std::size_t>> received;
  auto sd = net_.bind(d, 9, [&](const Endpoint&,
                                std::span<const std::byte> data) {
    received.emplace_back(sched_.now(), data.size());
  });
  auto sa = net_.bind(a_, 5, nullptr);
  const util::Bytes big(1'000, std::byte{0});
  for (int i = 0; i < 20; ++i) sa->send({d, 9}, big);
  sched_.run_until(sim::msec(2));  // ~20 ms of downlink backlog accrued
  net_.crash_host(d);
  net_.restore_host(d);
  sa->send({d, 9}, msg("probe"));
  sched_.run();
  // The probe is the only small datagram; it must clear the revived (idle)
  // downlink in ~1 ms rather than wait out the ~20 ms pre-crash backlog.
  sim::Time probe_at = -1;
  for (const auto& [t, size] : received) {
    if (size != big.size()) probe_at = t;
  }
  ASSERT_GE(probe_at, 0);
  EXPECT_LT(probe_at, sim::msec(8));
}

}  // namespace
}  // namespace ftvod::net
