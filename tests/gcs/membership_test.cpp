// View-change GCS tests: crashes, joins on the fly, partitions, merges,
// coordinator failure, virtual synchrony.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gcs_harness.hpp"

namespace ftvod::gcs {
namespace {

using testing::GcsHarness;
using testing::Listener;
using testing::text_msg;

TEST(GcsMembership, CrashShrinksDaemonView) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  h.crash(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  EXPECT_EQ(h.daemon(0).view().members.size(), 2u);
  EXPECT_FALSE(h.daemon(0).view().contains(h.node(2)));
}

TEST(GcsMembership, CrashDetectionIsFast) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  const sim::Time t0 = h.scheduler().now();
  h.crash(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  const sim::Time elapsed = h.scheduler().now() - t0;
  // suspect_timeout is 400 ms; the whole view change should finish within
  // roughly twice that (the paper reports ~0.5 s takeover on a LAN).
  EXPECT_LT(elapsed, sim::msec(1100));
}

TEST(GcsMembership, GroupViewReflectsCrashedMember) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));
  ASSERT_EQ(l0.views.back().members.size(), 3u);

  h.crash(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  h.run_for(sim::msec(200));
  ASSERT_EQ(l0.views.back().members.size(), 2u);
  EXPECT_FALSE(l0.views.back().contains(m2->endpoint()));
  EXPECT_EQ(l0.views.back().members, l1.views.back().members);
}

TEST(GcsMembership, CoordinatorCrashRecovered) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  // The coordinator is the view's proposer; by construction the smallest id
  // proposed the merged view.
  const net::NodeId coord = h.daemon(0).view().id.coord;
  int coord_idx = 0;
  for (int i = 0; i < 3; ++i) {
    if (h.node(i) == coord) coord_idx = i;
  }
  h.crash(coord_idx);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  for (int i = 0; i < 3; ++i) {
    if (i == coord_idx) continue;
    EXPECT_EQ(h.daemon(i).view().members.size(), 2u);
  }
}

TEST(GcsMembership, MessagesFlowAfterCoordinatorCrash) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l1, l2;
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));

  h.crash(0);  // smallest id: the coordinator
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  m1->send(text_msg("post-crash"));
  h.run_for(sim::sec(2));
  ASSERT_EQ(l2.texts(), std::vector<std::string>{"post-crash"});
}

TEST(GcsMembership, SequentialCrashesDownToOne) {
  GcsHarness h(4);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  for (int victim = 3; victim >= 1; --victim) {
    h.crash(victim);
    ASSERT_TRUE(h.run_until_converged(sim::sec(5)))
        << "failed after crashing host " << victim;
  }
  EXPECT_EQ(h.daemon(0).view().members.size(), 1u);
}

TEST(GcsMembership, NewDaemonJoinsOnTheFly) {
  GcsHarness h(3);
  h.start(0);
  h.start(1);
  ASSERT_TRUE(h.run_until_converged());
  EXPECT_EQ(h.daemon(0).view().members.size(), 2u);

  h.start(2);  // brought up later, like a new VoD server
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  EXPECT_EQ(h.daemon(0).view().members.size(), 3u);
  EXPECT_EQ(h.daemon(2).view().id, h.daemon(0).view().id);
}

TEST(GcsMembership, JoinerLearnsGroupTable) {
  GcsHarness h(3);
  h.start(0);
  h.start(1);
  ASSERT_TRUE(h.run_until_converged());
  Listener l0;
  auto m0 = h.daemon(0).join("movie", l0.callbacks());
  h.run_for(sim::sec(1));

  h.start(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  // The late daemon knows about the group even though the join happened
  // before it arrived (state transferred in the install message).
  const auto members = h.daemon(2).group_members("movie");
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], m0->endpoint());
}

TEST(GcsMembership, LateJoinerCanTalkToExistingGroup) {
  GcsHarness h(2);
  h.start(0);
  ASSERT_TRUE(h.run_until_converged());
  Listener l0;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  h.run_for(sim::sec(1));

  h.start(1);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  Listener l1;
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  m1->send(text_msg("hello-from-joiner"));
  h.run_for(sim::sec(1));
  ASSERT_FALSE(l0.messages.empty());
  EXPECT_EQ(l0.messages.back().text, "hello-from-joiner");
  EXPECT_EQ(l0.views.back().members.size(), 2u);
}

TEST(GcsMembership, PartitionFormsDisjointViews) {
  GcsHarness h(4);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  h.network().partition({{h.node(0), h.node(1)}, {h.node(2), h.node(3)}});
  h.run_for(sim::sec(3));
  EXPECT_EQ(h.daemon(0).view().members,
            (std::vector<net::NodeId>{h.node(0), h.node(1)}));
  EXPECT_EQ(h.daemon(2).view().members,
            (std::vector<net::NodeId>{h.node(2), h.node(3)}));
  EXPECT_NE(h.daemon(0).view().id, h.daemon(2).view().id);
}

TEST(GcsMembership, HealedPartitionMerges) {
  GcsHarness h(4);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  h.network().partition({{h.node(0), h.node(1)}, {h.node(2), h.node(3)}});
  h.run_for(sim::sec(3));
  h.network().heal();
  ASSERT_TRUE(h.run_until_converged(sim::sec(10)));
  EXPECT_EQ(h.daemon(0).view().members.size(), 4u);
  EXPECT_EQ(h.daemon(0).view().id, h.daemon(3).view().id);
}

TEST(GcsMembership, GroupSurvivesPartitionAndMerge) {
  GcsHarness h(4);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));
  ASSERT_EQ(l0.views.back().members.size(), 2u);

  h.network().partition({{h.node(0), h.node(1)}, {h.node(2), h.node(3)}});
  h.run_for(sim::sec(3));
  // Each side sees only its own member.
  EXPECT_EQ(l0.views.back().members, std::vector<GcsEndpoint>{m0->endpoint()});
  EXPECT_EQ(l2.views.back().members, std::vector<GcsEndpoint>{m2->endpoint()});

  h.network().heal();
  ASSERT_TRUE(h.run_until_converged(sim::sec(10)));
  h.run_for(sim::msec(500));
  EXPECT_EQ(l0.views.back().members.size(), 2u);
  EXPECT_EQ(l2.views.back().members.size(), 2u);

  // And messages flow across the healed group.
  m0->send(text_msg("after-merge"));
  h.run_for(sim::sec(1));
  ASSERT_FALSE(l2.messages.empty());
  EXPECT_EQ(l2.messages.back().text, "after-merge");
}

// Virtual synchrony: daemons that transition together deliver the same
// message set before the new view. We crash the sender right after it hands
// a burst to the coordinator; the survivors must agree on what arrived.
TEST(GcsMembership, SurvivorsAgreeOnDeliveredSet) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));

  for (int i = 0; i < 10; ++i) m0->send(text_msg("x" + std::to_string(i)));
  h.run_for(sim::msec(3));  // partial propagation
  h.crash(0);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  h.run_for(sim::sec(1));
  // Whatever subset made it, both survivors deliver exactly the same
  // sequence (prefix agreement is the virtual synchrony obligation).
  EXPECT_EQ(l1.texts(), l2.texts());
}

TEST(GcsMembership, FlushEqualizesUnderLoss) {
  net::LinkQuality lossy = net::lan_quality();
  lossy.loss = 0.25;
  GcsHarness h(3, lossy);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(sim::sec(30)));
  Listener l0, l1, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(2));
  for (int i = 0; i < 20; ++i) m0->send(text_msg("y" + std::to_string(i)));
  h.run_for(sim::msec(50));
  h.crash(0);
  ASSERT_TRUE(h.run_until_converged(sim::sec(20)));
  h.run_for(sim::sec(2));
  EXPECT_EQ(l1.texts(), l2.texts());
}

TEST(GcsMembership, ViewIdsMonotonicallyIncrease) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  const std::uint64_t c1 = h.daemon(0).view().id.counter;
  h.crash(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  const std::uint64_t c2 = h.daemon(0).view().id.counter;
  EXPECT_GT(c2, c1);
}

TEST(GcsMembership, RestoredHostRejoins) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  h.crash(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)));
  // Bring the host back with a fresh daemon (new incarnation).
  h.network().restore_host(h.node(2));
  // The old daemon instance is halted; a fresh one must be constructed on a
  // fresh host in real deployments. Here we emulate via a new harness slot:
  // restore + new daemon is covered by NewDaemonJoinsOnTheFly; this test
  // checks the view stays stable at 2 members when nothing rejoins.
  h.run_for(sim::sec(2));
  EXPECT_EQ(h.daemon(0).view().members.size(), 2u);
}

class MembershipChurn : public ::testing::TestWithParam<unsigned> {};

// Random crash/heal churn: after the dust settles, survivors converge and
// can exchange messages.
TEST_P(MembershipChurn, ConvergesAfterChurn) {
  GcsHarness h(5, net::lan_quality(), GetParam() * 97 + 3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());

  // Crash two distinct victims (never host 0, our observer).
  const int v1 = 1 + static_cast<int>(GetParam() % 4);
  const int v2 = 1 + static_cast<int>((GetParam() + 2) % 4);
  h.crash(v1);
  h.run_for(sim::msec(150 * (GetParam() % 5)));
  if (v2 != v1) h.crash(v2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(15)));

  Listener l0;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  h.run_for(sim::sec(1));
  m0->send(text_msg("alive"));
  h.run_for(sim::sec(1));
  EXPECT_EQ(l0.texts(), std::vector<std::string>{"alive"});
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipChurn, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace ftvod::gcs
