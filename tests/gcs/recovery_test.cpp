// GCS recovery corner cases: the retry/rescue paths of the membership
// protocol that only fire when messages are lost or participants die at
// awkward moments.
#include <gtest/gtest.h>

#include "gcs_harness.hpp"

namespace ftvod::gcs {
namespace {

using testing::GcsHarness;
using testing::Listener;
using testing::text_msg;

TEST(GcsRecovery, ProposerCrashMidViewChange) {
  // Kill the daemon that is *about to* coordinate a view change, right
  // after the change is triggered: the blocked participants' rescue path
  // must elect the next proposer.
  GcsHarness h(4);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  // Crash a high-id member to trigger a view change coordinated by n0...
  h.crash(3);
  // ...and kill the coordinator shortly after it starts proposing.
  h.run_for(sim::msec(450));  // suspicion fires at ~400 ms
  h.crash(0);
  ASSERT_TRUE(h.run_until_converged(sim::sec(15)));
  EXPECT_EQ(h.daemon(1).view().members.size(), 2u);
  EXPECT_EQ(h.daemon(1).view().id, h.daemon(2).view().id);

  // The surviving pair still delivers messages.
  Listener l1, l2;
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));
  m1->send(text_msg("alive"));
  h.run_for(sim::sec(1));
  EXPECT_EQ(l2.texts(), std::vector<std::string>{"alive"});
}

TEST(GcsRecovery, LossyViewChangeStillConverges) {
  // Heavy loss makes Propose/Ack/Install messages need their retry paths.
  net::LinkQuality q = net::lan_quality();
  q.loss = 0.30;
  GcsHarness h(3, q, 77);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(sim::sec(60)));
  h.crash(2);
  ASSERT_TRUE(h.run_until_converged(sim::sec(60)));
  EXPECT_EQ(h.daemon(0).view().members.size(), 2u);
}

TEST(GcsRecovery, RepeatedPartitionsAndHeals) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  for (int round = 0; round < 3; ++round) {
    h.network().partition({{h.node(0)}, {h.node(1), h.node(2)}});
    h.run_for(sim::sec(2));
    h.network().heal();
    ASSERT_TRUE(h.run_until_converged(sim::sec(15))) << "round " << round;
  }
  EXPECT_EQ(h.daemon(0).view().members.size(), 3u);
}

TEST(GcsRecovery, MessageFlowAcrossManyViewChanges) {
  // A member keeps sending while the membership churns around it; every
  // message sent in a stable period must reach the stable peer.
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));

  m0->send(text_msg("epoch-1"));
  h.run_for(sim::sec(1));
  h.crash(2);  // view change 1
  ASSERT_TRUE(h.run_until_converged(sim::sec(10)));
  m0->send(text_msg("epoch-2"));
  h.run_for(sim::sec(1));
  h.network().partition({{h.node(0), h.node(1)}});  // no-op component
  h.network().heal();
  m0->send(text_msg("epoch-3"));
  h.run_for(sim::sec(2));
  EXPECT_EQ(l1.texts(), (std::vector<std::string>{"epoch-1", "epoch-2",
                                                  "epoch-3"}));
}

TEST(GcsRecovery, PendingSendSurvivesViewChange) {
  // A message submitted a moment before the coordinator dies must be
  // re-submitted in the new view and delivered exactly once.
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l1, l2;
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));

  // n0 coordinates. Cut it off and submit immediately: the Submit cannot
  // be ordered by the dying coordinator.
  h.crash(0);
  m1->send(text_msg("limbo"));
  ASSERT_TRUE(h.run_until_converged(sim::sec(10)));
  h.run_for(sim::sec(2));
  EXPECT_EQ(l1.texts(), std::vector<std::string>{"limbo"});
  EXPECT_EQ(l2.texts(), std::vector<std::string>{"limbo"});
}

TEST(GcsRecovery, DaemonStatsTrackActivity) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  for (int i = 0; i < 5; ++i) m0->send(text_msg("x"));
  h.run_for(sim::sec(1));
  const DaemonStats& coord = h.daemon(0).stats();
  // 2 joins + 5 app messages ordered by the coordinator of the merged view.
  EXPECT_GE(coord.messages_ordered + h.daemon(1).stats().messages_ordered,
            7u);
  EXPECT_GE(coord.view_changes, 1u);
  EXPECT_GT(h.daemon(0).socket_stats().bytes_sent, 0u);
}

TEST(GcsRecovery, HaltedDaemonIsInert) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  h.daemon(1).halt();
  EXPECT_TRUE(h.daemon(1).halted());
  const auto sent = h.daemon(1).socket_stats().bytes_sent;
  h.run_for(sim::sec(2));
  EXPECT_EQ(h.daemon(1).socket_stats().bytes_sent, sent);
  // The peer eventually removes it.
  ASSERT_TRUE(h.run_until_converged(sim::sec(5)) ||
              h.daemon(0).view().members.size() == 1);
}

}  // namespace
}  // namespace ftvod::gcs
