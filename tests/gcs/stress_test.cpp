// GCS stress and property tests: total-order agreement under loss and
// churn, many concurrent groups, tail-loss repair, larger views.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gcs_harness.hpp"

namespace ftvod::gcs {
namespace {

using testing::GcsHarness;
using testing::Listener;
using testing::text_msg;

class TotalOrderUnderLoss : public ::testing::TestWithParam<unsigned> {};

// Property: whatever the loss pattern, all members of a group deliver the
// same sequence of messages (agreement on order and content).
TEST_P(TotalOrderUnderLoss, AllMembersAgree) {
  net::LinkQuality q = net::lan_quality();
  q.loss = 0.05 + 0.03 * (GetParam() % 4);
  GcsHarness h(4, q, GetParam() * 523 + 3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(sim::sec(30)));

  std::vector<Listener> listeners(4);
  std::vector<std::unique_ptr<GroupMember>> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(h.daemon(i).join("g", listeners[i].callbacks()));
  }
  h.run_for(sim::sec(2));

  // Concurrent bursts from all members.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      members[i]->send(
          text_msg(std::to_string(i) + ":" + std::to_string(round)));
    }
    h.run_for(sim::msec(40 + (GetParam() % 5) * 13));
  }
  h.run_for(sim::sec(8));

  ASSERT_EQ(listeners[0].messages.size(), 40u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(listeners[i].texts(), listeners[0].texts()) << "member " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TotalOrderUnderLoss, ::testing::Range(0u, 8u));

TEST(GcsStress, ManyGroupsStayIsolated) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());

  constexpr int kGroups = 25;
  std::vector<Listener> listeners(kGroups);
  std::vector<std::unique_ptr<GroupMember>> members;
  for (int g = 0; g < kGroups; ++g) {
    members.push_back(h.daemon(g % 3).join("group-" + std::to_string(g),
                                           listeners[g].callbacks()));
  }
  h.run_for(sim::sec(2));
  for (int g = 0; g < kGroups; ++g) {
    members[g]->send(text_msg("for-" + std::to_string(g)));
  }
  h.run_for(sim::sec(2));
  for (int g = 0; g < kGroups; ++g) {
    ASSERT_EQ(listeners[g].messages.size(), 1u) << "group " << g;
    EXPECT_EQ(listeners[g].messages[0].text, "for-" + std::to_string(g));
    EXPECT_EQ(listeners[g].views.back().members.size(), 1u);
  }
}

TEST(GcsStress, EightDaemonViewAndBroadcast) {
  GcsHarness h(8);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(sim::sec(20)));
  std::vector<Listener> listeners(8);
  std::vector<std::unique_ptr<GroupMember>> members;
  for (int i = 0; i < 8; ++i) {
    members.push_back(h.daemon(i).join("big", listeners[i].callbacks()));
  }
  h.run_for(sim::sec(2));
  ASSERT_EQ(listeners[0].views.back().members.size(), 8u);
  members[7]->send(text_msg("hello-everyone"));
  h.run_for(sim::sec(2));
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(listeners[i].messages.size(), 1u) << i;
  }
}

TEST(GcsStress, TailLossRepairedByHeartbeat) {
  // Drop a burst by partitioning briefly mid-send: the NACK path has no
  // later message to reveal the gap, so the coordinator's heartbeat-driven
  // repair must deliver the suffix.
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());  // sender
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));

  // Cut node 2 off for a moment; messages ordered meanwhile are a "tail".
  h.network().partition({{h.node(0), h.node(1)}, {h.node(2)}});
  m0->send(text_msg("during-cut-1"));
  m0->send(text_msg("during-cut-2"));
  h.run_for(sim::msec(120));  // shorter than the suspect timeout
  h.network().heal();
  h.run_for(sim::sec(3));
  // No view change should have happened (cut was brief), and the tail must
  // arrive via retransmission.
  std::vector<std::string> texts = l2.texts();
  EXPECT_TRUE(std::find(texts.begin(), texts.end(), "during-cut-2") !=
              texts.end());
}

class ChurnAgreement : public ::testing::TestWithParam<unsigned> {};

// Property: members that survive a crash deliver identical sequences, and
// messages sent after re-convergence reach everyone.
TEST_P(ChurnAgreement, SurvivorsIdenticalAfterCrashMidBurst) {
  GcsHarness h(4, net::lan_quality(), GetParam() * 7717 + 29);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  std::vector<Listener> listeners(4);
  std::vector<std::unique_ptr<GroupMember>> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(h.daemon(i).join("g", listeners[i].callbacks()));
  }
  h.run_for(sim::sec(1));

  for (int i = 0; i < 12; ++i) {
    members[i % 4]->send(text_msg("pre-" + std::to_string(i)));
  }
  h.run_for(sim::msec(1 + GetParam() % 7));  // crash lands mid-burst
  const int victim = 1 + static_cast<int>(GetParam() % 3);
  h.crash(victim);
  ASSERT_TRUE(h.run_until_converged(sim::sec(10)));
  h.run_for(sim::sec(2));

  std::vector<int> survivors;
  for (int i = 0; i < 4; ++i) {
    if (i != victim) survivors.push_back(i);
  }
  for (std::size_t i = 1; i < survivors.size(); ++i) {
    EXPECT_EQ(listeners[survivors[i]].texts(),
              listeners[survivors[0]].texts());
  }
  members[survivors[0]]->send(text_msg("post"));
  h.run_for(sim::sec(2));
  for (int s : survivors) {
    ASSERT_FALSE(listeners[s].messages.empty());
    EXPECT_EQ(listeners[s].messages.back().text, "post") << "member " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnAgreement, ::testing::Range(0u, 10u));

TEST(GcsStress, RapidJoinLeaveCycles) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener stable;
  auto anchor = h.daemon(0).join("g", stable.callbacks());
  h.run_for(sim::sec(1));
  for (int cycle = 0; cycle < 10; ++cycle) {
    Listener transient;
    auto m = h.daemon(1).join("g", transient.callbacks());
    h.run_for(sim::msec(300));
    m->leave();
    h.run_for(sim::msec(300));
  }
  h.run_for(sim::sec(1));
  // The anchor saw every join and leave, ending alone.
  EXPECT_EQ(stable.views.back().members.size(), 1u);
  EXPECT_GE(stable.views.size(), 21u);  // initial + 10 joins + 10 leaves
}

TEST(GcsStress, SendToGroupFromManyOutsiders) {
  GcsHarness h(4);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0;
  auto m0 = h.daemon(0).join("inbox", l0.callbacks());
  h.run_for(sim::sec(1));
  for (int i = 1; i < 4; ++i) {
    for (int k = 0; k < 5; ++k) {
      h.daemon(i).send_to_group(
          "inbox", text_msg(std::to_string(i) + "/" + std::to_string(k)));
    }
  }
  h.run_for(sim::sec(2));
  EXPECT_EQ(l0.messages.size(), 15u);
  // FIFO per outsider.
  std::map<net::NodeId, int> last;
  for (const auto& msg : l0.messages) {
    const int k = msg.text.back() - '0';
    auto it = last.find(msg.from.node);
    if (it != last.end()) {
      EXPECT_GT(k, it->second);
    }
    last[msg.from.node] = k;
  }
}

}  // namespace
}  // namespace ftvod::gcs
