#include "gcs/wire.hpp"

#include <gtest/gtest.h>

namespace ftvod::gcs::wire {
namespace {

TEST(GcsWire, HeartbeatRoundTrip) {
  Heartbeat m;
  m.view = {7, 3};
  m.members = {1, 3, 9};
  m.delivered_upto = 42;
  m.safe_upto = 40;
  auto bytes = encode(m);
  EXPECT_EQ(peek_type(bytes), MsgType::kHeartbeat);
  auto d = decode_heartbeat(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->view, m.view);
  EXPECT_EQ(d->members, m.members);
  EXPECT_EQ(d->delivered_upto, 42u);
  EXPECT_EQ(d->safe_upto, 40u);
}

TEST(GcsWire, SubmitRoundTrip) {
  Submit m;
  m.view = {2, 1};
  m.sender_seq = 17;
  m.kind = PayloadKind::kJoin;
  m.group = "vod.movie.casablanca";
  m.origin = {5, 2};
  m.payload = {std::byte{1}, std::byte{2}};
  auto d = decode_submit(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sender_seq, 17u);
  EXPECT_EQ(d->kind, PayloadKind::kJoin);
  EXPECT_EQ(d->group, m.group);
  EXPECT_EQ(d->origin, m.origin);
  EXPECT_EQ(d->payload, m.payload);
}

TEST(GcsWire, OrderedRoundTrip) {
  Ordered m;
  m.view = {9, 0};
  m.gseq = 1234;
  m.sender = 6;
  m.sender_seq = 99;
  m.kind = PayloadKind::kApp;
  m.group = "g";
  m.origin = {6, 1};
  m.payload = {std::byte{0xFF}};
  auto d = decode_ordered(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->gseq, 1234u);
  EXPECT_EQ(d->sender, 6u);
  EXPECT_EQ(d->payload, m.payload);
}

TEST(GcsWire, ProposeAndAckRoundTrip) {
  Propose p;
  p.pv = {12, 2};
  p.members = {2, 4, 6};
  auto dp = decode_propose(encode(p));
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->pv, p.pv);
  EXPECT_EQ(dp->members, p.members);

  ProposeAck a;
  a.pv = {12, 2};
  a.old_view = {11, 4};
  a.delivered_upto = 88;
  a.next_submit_seq = 5;
  a.regs = {{"g1", {2, 1}}, {"g2", {2, 3}}};
  auto da = decode_propose_ack(encode(a));
  ASSERT_TRUE(da.has_value());
  EXPECT_EQ(da->old_view, a.old_view);
  ASSERT_EQ(da->regs.size(), 2u);
  EXPECT_EQ(da->regs[1].group, "g2");
  EXPECT_EQ(da->regs[1].member, (GcsEndpoint{2, 3}));
}

TEST(GcsWire, FlushMessagesRoundTrip) {
  FlushTarget ft;
  ft.pv = {3, 1};
  ft.entries = {{{2, 1}, 50, 4}, {{1, 7}, 10, 7}};
  auto dft = decode_flush_target(encode(ft));
  ASSERT_TRUE(dft.has_value());
  ASSERT_EQ(dft->entries.size(), 2u);
  EXPECT_EQ(dft->entries[0].target, 50u);
  EXPECT_EQ(dft->entries[1].holder, 7u);

  FlushDone fd{{3, 1}, 50};
  auto dfd = decode_flush_done(encode(fd));
  ASSERT_TRUE(dfd.has_value());
  EXPECT_EQ(dfd->delivered_upto, 50u);
}

TEST(GcsWire, InstallRoundTrip) {
  Install m;
  m.pv = {20, 0};
  m.members = {0, 1, 2};
  m.group_table = {{"movie.x", {1, 4}}};
  m.submit_seqs = {{0, 10}, {1, 1}, {2, 55}};
  auto d = decode_install(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->members, m.members);
  ASSERT_EQ(d->group_table.size(), 1u);
  EXPECT_EQ(d->group_table[0].group, "movie.x");
  ASSERT_EQ(d->submit_seqs.size(), 3u);
  EXPECT_EQ(d->submit_seqs[2], (std::pair<net::NodeId, std::uint64_t>{2, 55}));
}

TEST(GcsWire, WrongTypeRejected) {
  Heartbeat hb;
  auto bytes = encode(hb);
  EXPECT_EQ(decode_submit(bytes), std::nullopt);
  EXPECT_EQ(decode_install(bytes), std::nullopt);
}

TEST(GcsWire, TruncatedRejected) {
  Ordered m;
  m.group = "group";
  m.payload = util::Bytes(100, std::byte{7});
  auto bytes = encode(m);
  for (std::size_t cut : {1ul, 5ul, bytes.size() / 2, bytes.size() - 1}) {
    auto truncated =
        std::span<const std::byte>(bytes.data(), bytes.size() - cut);
    EXPECT_EQ(decode_ordered(truncated), std::nullopt) << "cut=" << cut;
  }
}

TEST(GcsWire, TrailingGarbageRejected) {
  FlushDone fd{{1, 1}, 2};
  auto bytes = encode(fd);
  bytes.push_back(std::byte{0});
  EXPECT_EQ(decode_flush_done(bytes), std::nullopt);
}

TEST(GcsWire, PeekTypeOnGarbage) {
  EXPECT_EQ(peek_type({}), std::nullopt);
  util::Bytes junk{std::byte{200}};
  EXPECT_EQ(peek_type(junk), std::nullopt);
}

}  // namespace
}  // namespace ftvod::gcs::wire
