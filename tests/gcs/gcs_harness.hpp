// Shared in-simulation harness for GCS tests: N hosts each running one
// daemon, plus helpers to run until views converge and to record what
// application members observe.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs/daemon.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ftvod::gcs::testing {

class GcsHarness {
 public:
  explicit GcsHarness(int n, net::LinkQuality quality = net::lan_quality(),
                      std::uint64_t seed = 42)
      : rng_(seed), net_(sched_, rng_) {
    net_.set_default_quality(quality);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(net_.add_host("host" + std::to_string(i)));
    }
    cfg_.peers = nodes_;
    daemons_.resize(n);
  }

  /// Starts the daemon on host i (idempotent).
  Daemon& start(int i) {
    if (!daemons_[i]) {
      daemons_[i] = std::make_unique<Daemon>(sched_, net_, nodes_[i], cfg_);
    }
    return *daemons_[i];
  }

  void start_all() {
    for (std::size_t i = 0; i < daemons_.size(); ++i) start(static_cast<int>(i));
  }

  void crash(int i) { net_.crash_host(nodes_[i]); }

  Daemon& daemon(int i) { return *daemons_[i]; }
  net::Network& network() { return net_; }
  sim::Scheduler& scheduler() { return sched_; }
  GcsConfig& config() { return cfg_; }
  net::NodeId node(int i) const { return nodes_[i]; }

  void run_for(sim::Duration d) { sched_.run_for(d); }

  /// True when every *running, alive* daemon is unblocked and has the same
  /// view containing exactly the alive running daemons.
  [[nodiscard]] bool converged() const {
    std::vector<net::NodeId> alive;
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (daemons_[i] && !daemons_[i]->halted() && net_.alive(nodes_[i])) {
        alive.push_back(nodes_[i]);
      }
    }
    if (alive.empty()) return true;
    const Daemon* first = nullptr;
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (!daemons_[i] || daemons_[i]->halted() || !net_.alive(nodes_[i])) {
        continue;
      }
      const Daemon& d = *daemons_[i];
      if (d.blocked()) return false;
      if (d.view().members != alive) return false;
      if (first == nullptr) {
        first = &d;
      } else if (d.view().id != first->view().id) {
        return false;
      }
    }
    return true;
  }

  /// Runs until converged() or the timeout elapses; returns success.
  bool run_until_converged(sim::Duration timeout = sim::sec(10)) {
    const sim::Time deadline = sched_.now() + timeout;
    while (sched_.now() < deadline) {
      if (converged()) return true;
      sched_.run_for(sim::msec(20));
    }
    return converged();
  }

 private:
  sim::Scheduler sched_;
  util::Rng rng_;
  net::Network net_;
  std::vector<net::NodeId> nodes_;
  GcsConfig cfg_;
  std::vector<std::unique_ptr<Daemon>> daemons_;
};

/// Records everything one group member observes.
struct Listener {
  struct Msg {
    GcsEndpoint from;
    std::string text;
  };
  std::vector<Msg> messages;
  std::vector<GroupView> views;

  GroupCallbacks callbacks() {
    return GroupCallbacks{
        [this](const GcsEndpoint& from, std::span<const std::byte> data) {
          messages.push_back(
              {from, std::string(reinterpret_cast<const char*>(data.data()),
                                 data.size())});
        },
        [this](const GroupView& v) { views.push_back(v); }};
  }

  [[nodiscard]] std::vector<std::string> texts() const {
    std::vector<std::string> out;
    out.reserve(messages.size());
    for (const Msg& m : messages) out.push_back(m.text);
    return out;
  }
};

inline util::Bytes text_msg(std::string_view s) {
  util::Bytes b;
  b.reserve(s.size());
  for (char c : s) b.push_back(static_cast<std::byte>(c));
  return b;
}

}  // namespace ftvod::gcs::testing
