// Normal-operation GCS tests: group membership, ordered delivery, FIFO,
// total order, retransmission under loss.
#include <gtest/gtest.h>

#include <algorithm>

#include "gcs_harness.hpp"

namespace ftvod::gcs {
namespace {

using testing::GcsHarness;
using testing::Listener;
using testing::text_msg;

TEST(GcsDaemon, SingleDaemonSelfDelivery) {
  GcsHarness h(1);
  h.start_all();
  Listener lis;
  auto m = h.daemon(0).join("g", lis.callbacks());
  h.run_for(sim::sec(1));
  ASSERT_FALSE(lis.views.empty());
  EXPECT_EQ(lis.views.back().members.size(), 1u);
  EXPECT_EQ(lis.views.back().members[0], m->endpoint());

  m->send(text_msg("hello"));
  h.run_for(sim::sec(1));
  ASSERT_EQ(lis.messages.size(), 1u);
  EXPECT_EQ(lis.messages[0].text, "hello");
  EXPECT_EQ(lis.messages[0].from, m->endpoint());
}

TEST(GcsDaemon, TwoDaemonsConvergeToOneView) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  EXPECT_EQ(h.daemon(0).view().members.size(), 2u);
  EXPECT_EQ(h.daemon(0).view().id, h.daemon(1).view().id);
}

TEST(GcsDaemon, FiveDaemonsConverge) {
  GcsHarness h(5);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(h.daemon(i).view().members.size(), 5u);
  }
}

TEST(GcsDaemon, GroupMessageReachesAllMembers) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1, l2;
  auto m0 = h.daemon(0).join("movie", l0.callbacks());
  auto m1 = h.daemon(1).join("movie", l1.callbacks());
  auto m2 = h.daemon(2).join("movie", l2.callbacks());
  h.run_for(sim::sec(1));

  m0->send(text_msg("from0"));
  m1->send(text_msg("from1"));
  h.run_for(sim::sec(1));

  for (Listener* l : {&l0, &l1, &l2}) {
    EXPECT_EQ(l->texts(), (std::vector<std::string>{"from0", "from1"}));
  }
}

TEST(GcsDaemon, JoinViewsSeenByAll) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  h.run_for(sim::sec(1));
  ASSERT_FALSE(l0.views.empty());
  EXPECT_EQ(l0.views.back().members.size(), 1u);

  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  EXPECT_EQ(l0.views.back().members.size(), 2u);
  EXPECT_EQ(l1.views.back().members.size(), 2u);
  EXPECT_EQ(l0.views.back().members, l1.views.back().members);
}

TEST(GcsDaemon, LeaveShrinksView) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  ASSERT_EQ(l0.views.back().members.size(), 2u);

  m1->leave();
  h.run_for(sim::sec(1));
  EXPECT_EQ(l0.views.back().members.size(), 1u);
  EXPECT_EQ(l0.views.back().members[0], m0->endpoint());
  EXPECT_FALSE(m1->active());
}

TEST(GcsDaemon, HandleDestructionLeaves) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  {
    auto m1 = h.daemon(1).join("g", l1.callbacks());
    h.run_for(sim::sec(1));
    ASSERT_EQ(l0.views.back().members.size(), 2u);
  }
  h.run_for(sim::sec(1));
  EXPECT_EQ(l0.views.back().members.size(), 1u);
}

TEST(GcsDaemon, FifoPerSender) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  for (int i = 0; i < 50; ++i) m0->send(text_msg("m" + std::to_string(i)));
  h.run_for(sim::sec(2));
  ASSERT_EQ(l1.messages.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(l1.messages[i].text, "m" + std::to_string(i));
  }
}

TEST(GcsDaemon, TotalOrderAcrossSenders) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(1));
  // Interleaved concurrent sends from all members.
  for (int i = 0; i < 20; ++i) {
    m0->send(text_msg("a" + std::to_string(i)));
    m1->send(text_msg("b" + std::to_string(i)));
    m2->send(text_msg("c" + std::to_string(i)));
  }
  h.run_for(sim::sec(3));
  ASSERT_EQ(l0.messages.size(), 60u);
  EXPECT_EQ(l0.texts(), l1.texts());
  EXPECT_EQ(l0.texts(), l2.texts());
}

TEST(GcsDaemon, NonMemberSendReachesGroup) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0;
  auto m0 = h.daemon(0).join("servers", l0.callbacks());
  h.run_for(sim::sec(1));
  h.daemon(1).send_to_group("servers", text_msg("request"));
  h.run_for(sim::sec(1));
  ASSERT_EQ(l0.messages.size(), 1u);
  EXPECT_EQ(l0.messages[0].text, "request");
  EXPECT_EQ(l0.messages[0].from.node, h.node(1));
  EXPECT_EQ(l0.messages[0].from.local, 0u);  // non-member marker
}

TEST(GcsDaemon, GroupsAreIsolated) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener la, lb;
  auto ma = h.daemon(0).join("a", la.callbacks());
  auto mb = h.daemon(1).join("b", lb.callbacks());
  h.run_for(sim::sec(1));
  ma->send(text_msg("for-a"));
  h.run_for(sim::sec(1));
  EXPECT_EQ(la.messages.size(), 1u);
  EXPECT_TRUE(lb.messages.empty());
  EXPECT_EQ(la.views.back().members.size(), 1u);
  EXPECT_EQ(lb.views.back().members.size(), 1u);
}

TEST(GcsDaemon, SendImmediatelyAfterJoinIsOrderedAfterJoin) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  h.run_for(sim::sec(1));
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  m1->send(text_msg("eager"));  // before its join view arrives
  h.run_for(sim::sec(1));
  ASSERT_EQ(l1.messages.size(), 1u);
  // The join view must have been delivered before the message.
  ASSERT_FALSE(l1.views.empty());
  EXPECT_TRUE(l1.views.front().contains(m1->endpoint()));
  EXPECT_EQ(l0.messages.size(), 1u);
}

TEST(GcsDaemon, MessagesDeliveredUnderLoss) {
  net::LinkQuality lossy = net::lan_quality();
  lossy.loss = 0.15;
  GcsHarness h(3, lossy);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(sim::sec(30)));
  Listener l0, l1, l2;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  auto m2 = h.daemon(2).join("g", l2.callbacks());
  h.run_for(sim::sec(2));
  for (int i = 0; i < 30; ++i) m0->send(text_msg("m" + std::to_string(i)));
  h.run_for(sim::sec(10));
  // Reliable multicast: despite 15% loss, everything arrives, in order.
  EXPECT_EQ(l1.messages.size(), 30u);
  EXPECT_EQ(l2.messages.size(), 30u);
  EXPECT_EQ(l1.texts(), l2.texts());
}

TEST(GcsDaemon, LargePayloadRoundTrip) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  m0->send(text_msg(std::string(50'000, 'z')));
  h.run_for(sim::sec(2));
  ASSERT_EQ(l1.messages.size(), 1u);
  EXPECT_EQ(l1.messages[0].text.size(), 50'000u);
}

TEST(GcsDaemon, GroupMembersQueryTracksTable) {
  GcsHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  Listener l0, l1;
  auto m0 = h.daemon(0).join("g", l0.callbacks());
  auto m1 = h.daemon(1).join("g", l1.callbacks());
  h.run_for(sim::sec(1));
  EXPECT_EQ(h.daemon(0).group_members("g").size(), 2u);
  EXPECT_EQ(h.daemon(1).group_members("g").size(), 2u);
  EXPECT_TRUE(h.daemon(0).group_members("nonexistent").empty());
}

TEST(GcsDaemon, ControlBandwidthIsModest) {
  GcsHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged());
  const std::uint64_t before = h.daemon(0).socket_stats().bytes_sent;
  h.run_for(sim::sec(10));
  const std::uint64_t idle_bytes =
      h.daemon(0).socket_stats().bytes_sent - before;
  // Idle daemon overhead is heartbeats only: well under 10 KB/s.
  EXPECT_LT(idle_bytes, 100'000u);
}

}  // namespace
}  // namespace ftvod::gcs
