// Statistical acceptance of the generated city-scale catalog: the
// popularity weights must actually follow the configured Zipf law (checked
// exactly on the weights and by chi-squared on sampled draws), the
// inverse-CDF sampler must be faithful to the weights, and the whole
// catalog must be bit-reproducible per seed.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mpeg/catalog_gen.hpp"
#include "util/rng.hpp"

namespace ftvod::mpeg {
namespace {

TEST(CatalogGen, WeightsFollowTheConfiguredZipfLaw) {
  CatalogSpec spec;
  spec.titles = 200;
  spec.zipf_exponent = 0.8;
  const auto cat = GeneratedCatalog::generate(1, spec);
  ASSERT_EQ(cat.size(), 200u);
  // weight(k) * (k+1)^s is constant for a Zipf catalog; compare every rank
  // against rank 0 (double rounding only — the weights are not sampled).
  const double c0 = cat.entry(0).popularity;
  double total = 0.0;
  for (std::size_t k = 0; k < cat.size(); ++k) {
    const double expect =
        c0 / std::pow(static_cast<double>(k + 1), spec.zipf_exponent);
    EXPECT_NEAR(cat.entry(k).popularity, expect, 1e-12) << "rank " << k;
    total += cat.entry(k).popularity;
    if (k > 0) {
      EXPECT_LT(cat.entry(k).popularity, cat.entry(k - 1).popularity + 1e-15);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);  // normalized
}

TEST(CatalogGen, SampledRanksPassChiSquaredAgainstTheWeights) {
  // Draw a large sample through the inverse-CDF path and chi-squared it
  // against the catalog's own popularity vector. Head ranks get individual
  // bins; the tail is pooled so every expected count stays well above 5.
  CatalogSpec spec;
  spec.titles = 200;
  spec.zipf_exponent = 0.8;
  const auto cat = GeneratedCatalog::generate(3, spec);
  constexpr std::size_t kDraws = 200'000;
  util::Rng rng(987);
  std::vector<std::uint64_t> counts(cat.size(), 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t r = cat.sample_rank(rng.uniform());
    ASSERT_LT(r, cat.size());
    ++counts[r];
  }

  // Bin: ranks 0..19 individually, then pools of 20.
  std::vector<double> expected;
  std::vector<double> observed;
  std::size_t k = 0;
  while (k < cat.size()) {
    const std::size_t width = k < 20 ? 1 : 20;
    double e = 0.0, o = 0.0;
    for (std::size_t j = k; j < std::min(cat.size(), k + width); ++j) {
      e += cat.entry(j).popularity * static_cast<double>(kDraws);
      o += static_cast<double>(counts[j]);
    }
    expected.push_back(e);
    observed.push_back(o);
    k += width;
  }
  double chi2 = 0.0;
  for (std::size_t b = 0; b < expected.size(); ++b) {
    ASSERT_GT(expected[b], 20.0) << "bin " << b << " too thin for chi2";
    const double d = observed[b] - expected[b];
    chi2 += d * d / expected[b];
  }
  // df = bins - 1 = 28. The 99.9th percentile of chi2(28) is ~56.9; the
  // run is seeded, so this either always passes or flags a real skew.
  EXPECT_LT(chi2, 56.9) << "sampler does not match the Zipf weights";

  // The head must dominate the way a Zipf catalog does: top-20 ranks carry
  // the majority of all sessions at s=0.8, n=200.
  double head = 0.0;
  for (std::size_t j = 0; j < 20; ++j) head += static_cast<double>(counts[j]);
  EXPECT_GT(head / kDraws, 0.35);
  EXPECT_LT(head / kDraws, 0.55);
}

TEST(CatalogGen, SamplerHitsTheExactBoundaries) {
  CatalogSpec spec;
  spec.titles = 50;
  const auto cat = GeneratedCatalog::generate(9, spec);
  EXPECT_EQ(cat.sample_rank(0.0), 0u);
  EXPECT_EQ(cat.sample_rank(std::nextafter(1.0, 0.0)), cat.size() - 1);
  // Monotone: a larger u never maps to a more popular (smaller) rank.
  std::size_t prev = 0;
  for (double u = 0.0; u < 1.0; u += 1e-3) {
    const std::size_t r = cat.sample_rank(u);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(CatalogGen, BitIdenticalPerSeed) {
  CatalogSpec spec;
  spec.titles = 64;
  const auto a = GeneratedCatalog::generate(77, spec);
  const auto b = GeneratedCatalog::generate(77, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.entry(k).movie->name(), b.entry(k).movie->name());
    EXPECT_EQ(a.entry(k).movie->frame_count(), b.entry(k).movie->frame_count());
    EXPECT_EQ(a.entry(k).popularity, b.entry(k).popularity);  // bit-exact
  }
  // A different seed keeps the law (same weights) but redraws durations.
  const auto c = GeneratedCatalog::generate(78, spec);
  bool any_duration_differs = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.entry(k).popularity, c.entry(k).popularity);
    any_duration_differs |=
        a.entry(k).movie->frame_count() != c.entry(k).movie->frame_count();
  }
  EXPECT_TRUE(any_duration_differs);
}

TEST(CatalogGen, TitlesAreUniqueAndDurationsInRange) {
  CatalogSpec spec;
  spec.titles = 200;
  spec.min_duration_s = 60.0;
  spec.max_duration_s = 120.0;
  const auto cat = GeneratedCatalog::generate(5, spec);
  std::vector<std::string> names;
  for (const auto& e : cat.entries()) {
    names.push_back(e.movie->name());
    const double dur =
        static_cast<double>(e.movie->frame_count()) / spec.fps;
    EXPECT_GE(dur, spec.min_duration_s - 1.0);
    EXPECT_LE(dur, spec.max_duration_s + 1.0);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace ftvod::mpeg
