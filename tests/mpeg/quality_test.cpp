#include "mpeg/quality.hpp"

#include <gtest/gtest.h>

#include "mpeg/catalog.hpp"

namespace ftvod::mpeg {
namespace {

TEST(Quality, FullRateSendsEverything) {
  auto m = Movie::synthetic("t", 10.0, 30.0);
  QualityFilter f(*m, 30.0);
  for (std::uint64_t i = 0; i < 120; ++i) {
    EXPECT_TRUE(f.should_send(i));
  }
  EXPECT_EQ(f.keep_per_gop(), 12u);
}

TEST(Quality, AboveNativeRateClamps) {
  auto m = Movie::synthetic("t", 10.0, 30.0);
  QualityFilter f(*m, 60.0);
  EXPECT_EQ(f.keep_per_gop(), 12u);
}

TEST(Quality, IFramesAlwaysSent) {
  auto m = Movie::synthetic("t", 10.0, 30.0);
  for (double fps : {1.0, 2.5, 5.0, 10.0, 15.0, 20.0, 29.0}) {
    QualityFilter f(*m, fps);
    for (std::uint64_t i = 0; i < m->frame_count(); ++i) {
      if (m->frame_type(i) == FrameType::kI) {
        EXPECT_TRUE(f.should_send(i)) << "fps=" << fps << " i=" << i;
      }
    }
  }
}

TEST(Quality, PFramesPreferredOverB) {
  auto m = Movie::synthetic("t", 10.0, 30.0);
  // Keep 4 of 12: the I frame and the three P frames; no B frames.
  QualityFilter f(*m, 10.0);
  EXPECT_EQ(f.keep_per_gop(), 4u);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const bool sent = f.should_send(i);
    if (m->frame_type(i) == FrameType::kB) {
      EXPECT_FALSE(sent) << i;
    } else {
      EXPECT_TRUE(sent) << i;
    }
  }
}

TEST(Quality, EffectiveRateMatchesTarget) {
  auto m = Movie::synthetic("t", 10.0, 30.0);
  for (double fps : {5.0, 10.0, 15.0, 20.0, 25.0}) {
    QualityFilter f(*m, fps);
    // Count actual transmissions over many GOPs.
    std::uint64_t sent = 0;
    const std::uint64_t n = 1200;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (f.should_send(i)) ++sent;
    }
    const double actual = 30.0 * static_cast<double>(sent) / n;
    EXPECT_NEAR(actual, fps, 1.5) << "target " << fps;
  }
}

TEST(Quality, ExtremelyLowRateKeepsOnlyI) {
  auto m = Movie::synthetic("t", 10.0, 30.0);
  QualityFilter f(*m, 0.5);
  EXPECT_EQ(f.keep_per_gop(), 1u);
  for (std::uint64_t i = 0; i < 36; ++i) {
    EXPECT_EQ(f.should_send(i), m->frame_type(i) == FrameType::kI);
  }
}

TEST(Quality, DeterministicAcrossInstances) {
  // A migrated server must pick the same frames as its predecessor.
  auto m = Movie::synthetic("t", 10.0, 30.0);
  QualityFilter f1(*m, 12.0);
  QualityFilter f2(*m, 12.0);
  for (std::uint64_t i = 0; i < 240; ++i) {
    EXPECT_EQ(f1.should_send(i), f2.should_send(i));
  }
}

TEST(Catalog, AddFindRemove) {
  Catalog c;
  EXPECT_FALSE(c.contains("x"));
  c.add(Movie::synthetic("x", 5.0));
  c.add(Movie::synthetic("y", 5.0));
  EXPECT_TRUE(c.contains("x"));
  ASSERT_NE(c.find("x"), nullptr);
  EXPECT_EQ(c.find("x")->name(), "x");
  EXPECT_EQ(c.titles(), (std::vector<std::string>{"x", "y"}));
  c.remove("x");
  EXPECT_EQ(c.find("x"), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace ftvod::mpeg
