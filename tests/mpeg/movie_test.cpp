#include "mpeg/movie.hpp"

#include <gtest/gtest.h>

namespace ftvod::mpeg {
namespace {

TEST(Movie, BasicProperties) {
  auto m = Movie::synthetic("test", 60.0, 30.0, 1.4e6);
  EXPECT_EQ(m->frame_count(), 1800u);
  EXPECT_DOUBLE_EQ(m->fps(), 30.0);
  EXPECT_NEAR(m->duration_s(), 60.0, 0.1);
  EXPECT_EQ(m->frame_period(), 33'333);
  EXPECT_EQ(m->avg_frame_bytes(), 5833u);
}

TEST(Movie, GopStructure) {
  auto m = Movie::synthetic("test", 10.0);
  // IBBPBBPBBPBB repeating.
  EXPECT_EQ(m->frame_type(0), FrameType::kI);
  EXPECT_EQ(m->frame_type(1), FrameType::kB);
  EXPECT_EQ(m->frame_type(2), FrameType::kB);
  EXPECT_EQ(m->frame_type(3), FrameType::kP);
  EXPECT_EQ(m->frame_type(6), FrameType::kP);
  EXPECT_EQ(m->frame_type(9), FrameType::kP);
  EXPECT_EQ(m->frame_type(11), FrameType::kB);
  EXPECT_EQ(m->frame_type(12), FrameType::kI);  // next GOP
}

TEST(Movie, ExactlyOneIFramePerGop) {
  auto m = Movie::synthetic("test", 20.0);
  for (std::uint64_t gop = 0; gop + 12 <= m->frame_count(); gop += 12) {
    int i_frames = 0;
    for (std::uint64_t k = 0; k < 12; ++k) {
      if (m->frame_type(gop + k) == FrameType::kI) ++i_frames;
    }
    EXPECT_EQ(i_frames, 1);
  }
}

TEST(Movie, BitrateCalibration) {
  auto m = Movie::synthetic("calibration", 120.0, 30.0, 1.4e6);
  std::uint64_t total_bytes = 0;
  for (std::uint64_t i = 0; i < m->frame_count(); ++i) {
    total_bytes += m->frame(i).size_bytes;
  }
  const double actual_bps =
      static_cast<double>(total_bytes) * 8.0 / m->duration_s();
  EXPECT_NEAR(actual_bps, 1.4e6, 1.4e6 * 0.05);  // within 5%
}

TEST(Movie, IFramesAreLargest) {
  auto m = Movie::synthetic("test", 10.0);
  // Average sizes per type must be strongly ordered I > P > B.
  double sum_i = 0, sum_p = 0, sum_b = 0;
  int n_i = 0, n_p = 0, n_b = 0;
  for (std::uint64_t i = 0; i < m->frame_count(); ++i) {
    const FrameInfo f = m->frame(i);
    switch (f.type) {
      case FrameType::kI: sum_i += f.size_bytes; ++n_i; break;
      case FrameType::kP: sum_p += f.size_bytes; ++n_p; break;
      case FrameType::kB: sum_b += f.size_bytes; ++n_b; break;
    }
  }
  EXPECT_GT(sum_i / n_i, 2.0 * sum_p / n_p);
  EXPECT_GT(sum_p / n_p, 2.0 * sum_b / n_b);
}

TEST(Movie, DeterministicAcrossInstances) {
  auto a = Movie::synthetic("same-name", 10.0);
  auto b = Movie::synthetic("same-name", 10.0);
  for (std::uint64_t i = 0; i < a->frame_count(); ++i) {
    EXPECT_EQ(a->frame(i).size_bytes, b->frame(i).size_bytes);
  }
}

TEST(Movie, DifferentNamesDifferentSizes) {
  auto a = Movie::synthetic("movie-a", 10.0);
  auto b = Movie::synthetic("movie-b", 10.0);
  int differing = 0;
  for (std::uint64_t i = 0; i < a->frame_count(); ++i) {
    if (a->frame(i).size_bytes != b->frame(i).size_bytes) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(Movie, LowBitrateVariant) {
  auto m = Movie::synthetic("modem", 30.0, 30.0, 300e3);
  EXPECT_EQ(m->avg_frame_bytes(), 1250u);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < m->frame_count(); ++i) {
    total += m->frame(i).size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(total) * 8.0 / 30.0, 300e3, 300e3 * 0.06);
}

}  // namespace
}  // namespace ftvod::mpeg
