# Benchmark harnesses. Declared with include() from the top-level lists so
# that ${CMAKE_BINARY_DIR}/bench contains only the runnable binaries (the
# evaluation loop is `for b in build/bench/*; do $b; done`).

function(ftvod_bench name src)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${src})
  target_link_libraries(${name} PRIVATE
    ftvod_vod ftvod_gcs ftvod_mpeg ftvod_metrics ftvod_net ftvod_sim
    ftvod_util)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

ftvod_bench(fig4_lan fig4_lan.cpp)
ftvod_bench(fig5_wan fig5_wan.cpp)
ftvod_bench(tab_flow_policy tab_flow_policy.cpp)
ftvod_bench(tab_emergency tab_emergency.cpp)
ftvod_bench(tab_sync_overhead tab_sync_overhead.cpp)
ftvod_bench(tab_takeover tab_takeover.cpp)
ftvod_bench(tab_ktolerance tab_ktolerance.cpp)
ftvod_bench(tab_quality tab_quality.cpp)
ftvod_bench(ablation_buffer ablation_buffer.cpp)
ftvod_bench(ablation_watermarks ablation_watermarks.cpp)
ftvod_bench(ablation_sync_period ablation_sync_period.cpp)
ftvod_bench(micro_gcs micro_gcs.cpp)
target_link_libraries(micro_gcs PRIVATE benchmark::benchmark)
ftvod_bench(ablation_congestion ablation_congestion.cpp)
ftvod_bench(tab_scalability tab_scalability.cpp)
ftvod_bench(perf_core perf_core.cpp)
ftvod_bench(city_scale city_scale.cpp)
target_link_libraries(city_scale PRIVATE ftvod_testing ftvod_workload)

# Tier-1 smoke: every harness binary must run to completion at miniature
# scale (FTVOD_BENCH_SMOKE=1) and perf_core must emit parseable JSON.
add_test(NAME bench_smoke
  COMMAND ${CMAKE_COMMAND} -DBENCH_DIR=${CMAKE_BINARY_DIR}/bench
          -P ${CMAKE_SOURCE_DIR}/bench/smoke.cmake
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
set_tests_properties(bench_smoke PROPERTIES
  LABELS tier1
  ENVIRONMENT "FTVOD_BENCH_SMOKE=1"
  TIMEOUT 120)
