// Performance harness for the simulation core. Unlike the figure/table
// harnesses (which check the *shape* of the paper's results), this one
// measures raw speed and allocator traffic of the hot path and emits a
// machine-readable BENCH_core.json, so regressions show up as numbers in
// version control rather than as vague slowness.
//
// Two measurements:
//   * micro_scheduler — the timer idiom the whole stack runs on (arm a
//     callback with ~40 B of captured state, plus a cancelled decoy, i.e.
//     exactly what OneShotTimer re-arming does), isolated from protocol
//     work. Reports events/sec and heap allocations per event.
//   * macro_vod — a full deployment (N servers × M clients × T simulated
//     seconds) streaming one movie. Reports events/sec, frames/sec,
//     wall-clock and heap allocations per frame over the steady-state
//     window (after GCS convergence and session open).
//
// Usage: perf_core [output.json]
//   FTVOD_BENCH_SMOKE=1 shrinks both measurements to a sub-second sanity
//   scale (the bench_smoke CTest target uses this; numbers from a smoke
//   run are not meaningful).
//
// Run from a Release / RelWithDebInfo build only; Debug numbers are noise.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "mpeg/movie.hpp"
#include "sim/scheduler.hpp"
#include "vod/service.hpp"

// ---- global allocation counter ---------------------------------------------
// Every path through ::operator new lands here, including the std::function
// control blocks and shared_ptr wrappers the hot path may create. Counting
// is branch-free and cheap enough not to distort the timing comparison.
//
// Under AddressSanitizer the global allocator belongs to ASan: replacing it
// with raw malloc/free would strip redzones and poisoning from every heap
// object in the binary, gutting the sanitizer run. A sanitized build
// (-DFTVOD_SANITIZE=address;undefined) therefore compiles the hooks out and
// reports zero allocator traffic — its numbers are for crash-hunting, not
// for the perf record.

#if defined(__SANITIZE_ADDRESS__)
#define FTVOD_COUNTING_ALLOC 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FTVOD_COUNTING_ALLOC 0
#endif
#endif
#ifndef FTVOD_COUNTING_ALLOC
#define FTVOD_COUNTING_ALLOC 1
#endif

namespace {
std::uint64_t g_alloc_count = 0;
std::uint64_t g_alloc_bytes = 0;
}  // namespace

#if FTVOD_COUNTING_ALLOC
void* operator new(std::size_t n) {
  ++g_alloc_count;
  g_alloc_bytes += n;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_alloc_count;
  g_alloc_bytes += n;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) /
                                       static_cast<std::size_t>(a) *
                                       static_cast<std::size_t>(a))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // FTVOD_COUNTING_ALLOC

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool smoke_mode() {
  const char* v = std::getenv("FTVOD_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

// ---- micro: scheduler timer loop -------------------------------------------

struct MicroResult {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
};

MicroResult run_micro(std::uint64_t target_events) {
  using namespace ftvod;
  sim::Scheduler sched;
  std::uint64_t remaining = target_events;
  // ~40 B of captured state models the network's delivery lambda; the
  // cancelled decoy models OneShotTimer's cancel-then-rearm idiom.
  std::uint64_t payload[4] = {1, 2, 3, 4};
  sim::Scheduler::EventHandle decoy;
  std::function<void()> arm = [&] {
    decoy.cancel();
    decoy = sched.after(1'000'000, [] {});
    sched.after(10, [&, a = payload[0], b = payload[1], c = payload[2],
                     d = payload[3]] {
      payload[0] = a + b + c + d;
      if (--remaining > 0) arm();
    });
  };

  // Warmup: let every pool/slab/vector in the scheduler reach steady-state
  // capacity before counting.
  remaining = std::max<std::uint64_t>(target_events / 20, 1000);
  arm();
  sched.run();

  remaining = target_events;
  const std::uint64_t allocs0 = g_alloc_count;
  const std::uint64_t bytes0 = g_alloc_bytes;
  const std::uint64_t events0 = sched.executed_events();
  const auto t0 = Clock::now();
  arm();
  sched.run();
  MicroResult r;
  r.wall_s = seconds_since(t0);
  r.events = sched.executed_events() - events0;
  r.allocs = g_alloc_count - allocs0;
  r.alloc_bytes = g_alloc_bytes - bytes0;
  return r;
}

// ---- macro: full VoD deployment --------------------------------------------

struct MacroResult {
  int servers = 0;
  int clients = 0;
  double sim_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t frames = 0;
  double wall_s = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
};

MacroResult run_macro(int n_servers, int n_clients, double sim_seconds) {
  using namespace ftvod;
  using namespace ftvod::vod;
  Deployment dep(20260805);
  std::vector<net::NodeId> server_hosts;
  for (int i = 0; i < n_servers; ++i) {
    server_hosts.push_back(dep.add_host("s" + std::to_string(i)));
  }
  std::vector<net::NodeId> client_hosts;
  for (int i = 0; i < n_clients; ++i) {
    client_hosts.push_back(dep.add_host("c" + std::to_string(i)));
  }
  auto movie = mpeg::Movie::synthetic("m", sim_seconds + 600.0);
  for (net::NodeId h : server_hosts) {
    dep.start_server(h).server->add_movie(movie);
  }
  for (net::NodeId h : client_hosts) dep.start_client(h);
  dep.run_for(sim::sec(2.0));  // GCS convergence
  for (auto& cn : dep.clients()) cn->client->watch("m");
  dep.run_for(sim::sec(5.0));  // sessions open, buffers fill, rates settle

  auto frames_sent = [&] {
    std::uint64_t sum = 0;
    for (auto& sn : dep.servers()) sum += sn->server->stats().frames_sent;
    return sum;
  };

  MacroResult r;
  r.servers = n_servers;
  r.clients = n_clients;
  r.sim_s = sim_seconds;
  const std::uint64_t allocs0 = g_alloc_count;
  const std::uint64_t bytes0 = g_alloc_bytes;
  const std::uint64_t events0 = dep.scheduler().executed_events();
  const std::uint64_t frames0 = frames_sent();
  const auto t0 = Clock::now();
  dep.run_for(sim::sec(sim_seconds));
  r.wall_s = seconds_since(t0);
  r.events = dep.scheduler().executed_events() - events0;
  r.frames = frames_sent() - frames0;
  r.allocs = g_alloc_count - allocs0;
  r.alloc_bytes = g_alloc_bytes - bytes0;
  return r;
}

// ---- JSON ------------------------------------------------------------------

double per_sec(std::uint64_t n, double wall_s) {
  return wall_s > 0.0 ? static_cast<double>(n) / wall_s : 0.0;
}

double per(std::uint64_t n, std::uint64_t d) {
  return d > 0 ? static_cast<double>(n) / static_cast<double>(d) : 0.0;
}

std::string json_report(const MicroResult& mi, const MacroResult& ma,
                        bool smoke) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "  \"bench\": \"perf_core\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"micro_scheduler\": {\n";
  os << "    \"events\": " << mi.events << ",\n";
  os << "    \"wall_s\": " << mi.wall_s << ",\n";
  os << "    \"events_per_s\": " << per_sec(mi.events, mi.wall_s) << ",\n";
  os << "    \"allocs\": " << mi.allocs << ",\n";
  os << "    \"alloc_bytes\": " << mi.alloc_bytes << ",\n";
  os << "    \"allocs_per_event\": " << per(mi.allocs, mi.events) << "\n";
  os << "  },\n";
  os << "  \"macro_vod\": {\n";
  os << "    \"servers\": " << ma.servers << ",\n";
  os << "    \"clients\": " << ma.clients << ",\n";
  os << "    \"sim_s\": " << ma.sim_s << ",\n";
  os << "    \"events\": " << ma.events << ",\n";
  os << "    \"frames\": " << ma.frames << ",\n";
  os << "    \"wall_s\": " << ma.wall_s << ",\n";
  os << "    \"events_per_s\": " << per_sec(ma.events, ma.wall_s) << ",\n";
  os << "    \"frames_per_s\": " << per_sec(ma.frames, ma.wall_s) << ",\n";
  os << "    \"allocs\": " << ma.allocs << ",\n";
  os << "    \"alloc_bytes\": " << ma.alloc_bytes << ",\n";
  os << "    \"allocs_per_frame\": " << per(ma.allocs, ma.frames) << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

// Minimal structural JSON validator (objects, arrays, strings, numbers,
// booleans, null). The smoke test leans on this: the file we just wrote
// must parse, so bench output can be consumed by tooling unseen here.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}
  bool valid() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') {
        ++pos_;
      } else if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_core.json";

  const std::uint64_t micro_events = smoke ? 50'000 : 2'000'000;
  const int macro_servers = smoke ? 2 : 4;
  const int macro_clients = smoke ? 3 : 24;
  const double macro_sim_s = smoke ? 2.0 : 30.0;

  std::cout << "=== Simulation-core performance ===\n"
            << (smoke ? "(smoke scale; numbers not meaningful)\n" : "");

  const MicroResult mi = run_micro(micro_events);
  std::cout << "micro_scheduler: " << mi.events << " events in " << mi.wall_s
            << " s  ->  " << static_cast<std::uint64_t>(per_sec(mi.events,
                                                                mi.wall_s))
            << " events/s, " << per(mi.allocs, mi.events)
            << " allocs/event\n";

  const MacroResult ma = run_macro(macro_servers, macro_clients, macro_sim_s);
  std::cout << "macro_vod (" << ma.servers << " servers x " << ma.clients
            << " clients x " << ma.sim_s << " sim-s): " << ma.events
            << " events, " << ma.frames << " frames in " << ma.wall_s
            << " s  ->  "
            << static_cast<std::uint64_t>(per_sec(ma.events, ma.wall_s))
            << " events/s, "
            << static_cast<std::uint64_t>(per_sec(ma.frames, ma.wall_s))
            << " frames/s, " << per(ma.allocs, ma.frames)
            << " allocs/frame\n";

  const std::string json = json_report(mi, ma, smoke);
  {
    std::ofstream f(out_path, std::ios::trunc);
    if (!f) {
      std::cerr << "cannot write " << out_path << '\n';
      return 1;
    }
    f << json;
  }
  // Validate the emitted file end-to-end (read back what actually landed
  // on disk, not the in-memory string).
  std::ifstream f(out_path);
  std::stringstream buf;
  buf << f.rdbuf();
  if (!JsonValidator(buf.str()).valid()) {
    std::cerr << out_path << " is not parseable JSON\n";
    return 1;
  }
  std::cout << "wrote " << out_path << " (parseable)\n";
  return 0;
}
