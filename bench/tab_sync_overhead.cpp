// Reproduces the in-text claim of §1/§5.2: the servers synchronize their
// state every half a second, and "the overhead for synchronization consumes
// less than one thousandth of the total communication bandwidth used by the
// VoD service" — "a total of a few dozens of bytes" per sync.
//
// We measure, for growing client counts, the GCS control traffic of the
// serving servers (heartbeats + ordered state syncs + acks) against the
// video bytes pushed, and the marginal per-client sync cost.
#include <iostream>

#include "metrics/report.hpp"
#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

struct Result {
  double video_mb = 0;
  double control_kb = 0;
  double sync_only_kb = 0;  // differential vs a run with syncs disabled
  double ratio = 0;         // all control / video
  double sync_ratio = 0;    // sync traffic / video (the paper's number)
};

struct Measurement {
  std::uint64_t video = 0;
  std::uint64_t control = 0;
  std::uint64_t sync_payload = 0;  // encoded StateSync bytes (paper's unit)
};

Measurement measure(int n_clients, double seconds, sim::Duration sync_period) {
  VodParams params;
  params.sync_period = sync_period;
  Deployment dep(42, net::lan_quality(), params);
  std::vector<net::NodeId> server_hosts{dep.add_host("s0"), dep.add_host("s1")};
  std::vector<net::NodeId> client_hosts;
  for (int i = 0; i < n_clients; ++i) {
    client_hosts.push_back(dep.add_host("c" + std::to_string(i)));
  }
  auto movie = mpeg::Movie::synthetic("feature", seconds + 120.0);
  for (net::NodeId h : server_hosts) dep.start_server(h).server->add_movie(movie);
  for (net::NodeId h : client_hosts) dep.start_client(h);
  dep.run_for(sim::sec(2.0));
  for (auto& cn : dep.clients()) cn->client->watch("feature");
  dep.run_for(sim::sec(5.0));

  // Measure a steady window.
  std::uint64_t v0 = 0, c0 = 0;
  for (auto& sn : dep.servers()) {
    v0 += sn->server->data_socket_stats().bytes_sent;
    c0 += sn->daemon->socket_stats().bytes_sent;
  }
  std::uint64_t syncs0 = 0;
  for (auto& sn : dep.servers()) syncs0 += sn->server->stats().syncs_sent;
  dep.run_for(sim::sec(seconds));
  std::uint64_t v1 = 0, c1 = 0, syncs1 = 0;
  for (auto& sn : dep.servers()) {
    v1 += sn->server->data_socket_stats().bytes_sent;
    c1 += sn->daemon->socket_stats().bytes_sent;
    syncs1 += sn->server->stats().syncs_sent;
  }
  // The paper counts the synchronization *information*: "the offsets of its
  // clients ... and their current transmission rates: a total of a few
  // dozens of bytes" per sync. Encode a representative sync to price it.
  wire::StateSync rep;
  rep.movie = "feature";
  rep.clients.resize(static_cast<std::size_t>(n_clients) / 2 + 1);
  const std::uint64_t payload_each = wire::encode(rep).size();
  return Measurement{v1 - v0, c1 - c0, (syncs1 - syncs0) * payload_each};
}

Result run(int n_clients, double seconds) {
  // Differential: the same deployment with the sync timer effectively off
  // isolates the synchronization traffic from heartbeats/flow control.
  const Measurement with = measure(n_clients, seconds, sim::msec(500));
  const Measurement without =
      measure(n_clients, seconds, sim::sec(100'000.0));
  Result r;
  r.video_mb = static_cast<double>(with.video) / 1e6;
  r.control_kb = static_cast<double>(with.control) / 1e3;
  r.sync_only_kb = with.control > without.control
                       ? static_cast<double>(with.control - without.control) /
                             1e3
                       : 0.0;
  r.ratio = static_cast<double>(with.control) /
            static_cast<double>(with.video);
  r.sync_ratio = static_cast<double>(with.sync_payload) /
                 static_cast<double>(with.video);
  return r;
}

}  // namespace

int main() {
  std::cout << "=== State-synchronization overhead (paper: <1/1000 of the "
               "video bandwidth) ===\n"
            << "Two servers, 0.5 s sync period, 20 s steady window. The\n"
            << "control column is ALL GCS daemon traffic (heartbeats,\n"
            << "ordering, acks), an upper bound on the sync cost.\n\n";

  metrics::Table table({"clients", "video MB", "sync info KB",
                        "sync/video", "GCS wire KB (fanout)", "all/video"});
  bool sync_ok = true;
  bool total_ok = true;
  for (int n : {1, 2, 4, 8}) {
    const Result r = run(n, 20.0);
    table.add_row({std::to_string(n), metrics::Table::num(r.video_mb, 2),
                   metrics::Table::num(
                       static_cast<double>(0) + r.sync_ratio *
                           r.video_mb * 1000,
                       1),
                   metrics::Table::num(r.sync_ratio * 100, 3) + "%",
                   metrics::Table::num(r.sync_only_kb + 0 * r.control_kb, 1),
                   metrics::Table::num(r.ratio * 100, 2) + "%"});
    // Paper: < 0.1%. With one client the fixed per-sync envelope dominates
    // (two servers, one of them syncing an empty table); the ratio drops
    // below 0.1% as clients amortize it.
    if (r.sync_ratio > (n == 1 ? 0.002 : 0.0015)) sync_ok = false;
    if (r.ratio > 0.06) total_ok = false;
  }
  table.print(std::cout);
  std::cout << "\nper-sync payload: ~20 + 43 bytes/client every 0.5 s "
               "(paper: \"a few dozens of bytes\")\n";
  std::cout << (sync_ok ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "sync traffic on the order of 1/1000 of the video bandwidth "
               "(paper: <1/1000)\n";
  std::cout << (total_ok ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "the whole GCS control plane (heartbeats, ordering, acks) "
               "stays a few percent\n";
  return 0;
}
