// Reproduces Figure 5 of the paper: "Skipped frames in a WAN". The client
// and servers are seven Internet hops apart (Hebrew University <-> Tel Aviv
// University), UDP with no QoS reservation, ~1% loss. At ~25 s a new server
// is brought up and the client migrates to it for load balancing; ~22 s
// later the transmitting server is terminated.
//
//   5(a) cumulative skipped frames — a steady slope from network loss plus
//        bursts at the irregularity periods
//   5(b) frames discarded due to buffer overflow — steps after emergencies
#include <iostream>

#include "metrics/report.hpp"
#include "scenario.hpp"

using namespace ftvod;

namespace {

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [shape OK]   " : "  [SHAPE FAIL] ") << what << '\n';
}

double value_at(const metrics::TimeSeries& s, double t_seconds) {
  double v = 0.0;
  for (const auto& sample : s.samples()) {
    if (sim::to_sec(sample.t) > t_seconds) break;
    v = sample.value;
  }
  return v;
}

}  // namespace

int main() {
  std::cout << "=== Figure 5: skipped frames in a WAN ===\n"
            << "7-hop path, ~1% loss, no QoS reservation; load-balance\n"
            << "migration at ~25 s, crash of the serving server at ~47 s.\n\n";

  bench::ScenarioOptions opt;
  opt.quality = net::wan_quality(0.01);
  opt.seed = 11;
  opt.duration_s = 70.0;
  opt.load_balance_at_s = 25.0;
  opt.crash_at_s = 47.0;
  const bench::ScenarioResult r = bench::run_migration_scenario(opt);

  metrics::print_ascii_chart(std::cout, *r.recorder.series("skipped"));
  std::cout << '\n';
  metrics::print_ascii_chart(std::cout, *r.recorder.series("overflow"));
  std::cout << '\n';

  const auto& skipped = *r.recorder.series("skipped");
  const auto& overflow = *r.recorder.series("overflow");

  metrics::Table table(
      {"window", "skipped", "overflow-discarded", "note"});
  const double s20 = value_at(skipped, 20.0);
  const double s45 = value_at(skipped, 45.0);
  const double s_end = skipped.samples().back().value;
  table.add_row({"0-20s (startup+steady)", metrics::Table::num(s20, 0),
                 metrics::Table::num(value_at(overflow, 20.0), 0),
                 "loss trickle + startup refill"});
  table.add_row({"20-45s (load balance)", metrics::Table::num(s45 - s20, 0),
                 metrics::Table::num(value_at(overflow, 45.0) -
                                         value_at(overflow, 20.0),
                                     0),
                 "migration burst + loss"});
  table.add_row({"45-70s (crash)", metrics::Table::num(s_end - s45, 0),
                 metrics::Table::num(overflow.samples().back().value -
                                         value_at(overflow, 45.0),
                                     0),
                 "takeover burst + loss"});
  table.print(std::cout);
  std::cout << '\n';

  // Shape checks: the paper's qualitative WAN findings.
  check(r.connected, "client stayed in service across both migrations");
  check(r.takeovers >= 1, "crash takeover happened");
  check(s_end > s20, "loss produces a steady trickle of skipped frames");
  const double loss_rate =
      s_end / static_cast<double>(r.final_counters.displayed +
                                  r.final_counters.skipped);
  check(loss_rate > 0.001 && loss_rate < 0.10,
        "skip rate is a few percent (WAN quality inferior to LAN, but "
        "the stream survives)");
  check(r.final_counters.late > 0,
        "jitter/migrations produce late frames (re-ordered or duplicates)");
  check(r.final_counters.starvation_ticks < 35,
        "visible freezes, if any, stay within about a second total");
  check(r.final_counters.overflow_discarded_i_frames == 0,
        "I frames protected from overflow discard");

  std::cout << "\ncounters: received=" << r.final_counters.received
            << " displayed=" << r.final_counters.displayed
            << " skipped=" << r.final_counters.skipped
            << " late=" << r.final_counters.late
            << " overflow=" << r.final_counters.overflow_discards
            << " starvation=" << r.final_counters.starvation_ticks << '\n';
  return 0;
}
