# Script behind the bench_smoke CTest target: runs every harness binary in
# BENCH_DIR at miniature scale (the caller sets FTVOD_BENCH_SMOKE=1 in the
# environment) and fails if any exits nonzero. perf_core additionally must
# produce its JSON report; the binary itself re-reads and parses the file,
# exiting nonzero when the JSON is malformed.
file(GLOB binaries ${BENCH_DIR}/*)
foreach(bin ${binaries})
  get_filename_component(name ${bin} NAME)
  if(name MATCHES "\\.(json|csv|txt|dat)$")
    continue()  # output files from earlier manual runs
  endif()
  if(name STREQUAL "perf_core")
    set(report ${CMAKE_CURRENT_BINARY_DIR}/bench_smoke_core.json)
    file(REMOVE ${report})
    execute_process(COMMAND ${bin} ${report} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "bench_smoke: perf_core failed (exit ${rc})")
    endif()
    if(NOT EXISTS ${report})
      message(FATAL_ERROR "bench_smoke: perf_core wrote no JSON report")
    endif()
  else()
    execute_process(COMMAND ${bin} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "bench_smoke: ${name} failed (exit ${rc})")
    endif()
  endif()
  message(STATUS "bench_smoke: ${name} ok")
endforeach()
