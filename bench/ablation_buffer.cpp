// Ablation (§4.2 "Choosing Buffer Sizes and Thresholds"): the buffers must
// cover the irregularity period. The paper chose ~2.4 s of video; "if there
// is not enough video material in the buffers to account for the duration
// of the irregularity period, the situation cannot be handled smoothly".
//
// We sweep the total buffer size (scaling both stages) and measure the
// crash-migration impact: starvation (visible freeze) and skipped frames.
#include <iostream>

#include "metrics/report.hpp"
#include "scenario.hpp"

using namespace ftvod;
using namespace ftvod::vod;

int main() {
  std::cout << "=== Ablation: client buffer size vs crash smoothness ===\n"
            << "Both buffer stages scaled together; crash of the serving\n"
            << "server at 30 s. Paper: ~2.4 s of buffered video suffices\n"
            << "for one emergency; much less -> noticeable jitter.\n\n";

  metrics::Table table({"buffer (s of video)", "sw frames", "hw KB",
                        "skipped @crash", "starvation ticks", "smooth?"});
  bool shape_ok_small = false;
  bool shape_ok_paper = false;
  for (double scale : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    bench::ScenarioOptions opt;
    opt.params.sw_buffer_frames =
        static_cast<std::size_t>(37 * scale + 0.5);
    opt.params.hw_buffer_bytes =
        static_cast<std::size_t>(240.0 * 1024 * scale);
    opt.duration_s = 50.0;
    opt.crash_at_s = 30.0;
    opt.load_balance_at_s.reset();
    const bench::ScenarioResult r = bench::run_migration_scenario(opt);

    // Skips/starvation attributable to the crash window (28-45 s).
    const auto* skipped = r.recorder.series("skipped");
    double skip_before = 0, skip_after = 0;
    for (const auto& s : skipped->samples()) {
      if (sim::to_sec(s.t) <= 28.0) skip_before = s.value;
      skip_after = s.value;
    }
    const double buffer_seconds = 2.63 * scale;  // 79 frames at 30 fps
    const bool smooth = r.final_counters.starvation_ticks == 0;
    table.add_row(
        {metrics::Table::num(buffer_seconds, 2),
         std::to_string(opt.params.sw_buffer_frames),
         std::to_string(opt.params.hw_buffer_bytes / 1024),
         metrics::Table::num(skip_after - skip_before, 0),
         std::to_string(r.final_counters.starvation_ticks),
         smooth ? "yes" : "NO"});
    if (scale <= 0.25 && !smooth) shape_ok_small = true;
    if (scale >= 1.0 && smooth) shape_ok_paper = true;
  }
  table.print(std::cout);
  std::cout << '\n'
            << (shape_ok_paper ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "the paper's ~2.4 s buffer absorbs the crash without a "
               "visible freeze\n"
            << (shape_ok_small ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "a much smaller buffer cannot (jitter becomes observable)\n";
  return 0;
}
