// Reproduces Figure 2: "The Client's Flow Control Policy" — the policy
// table itself, evaluated row by row against the implementation, plus the
// request-frequency rules.
#include <iostream>

#include "metrics/report.hpp"
#include "vod/flow_control.hpp"

using namespace ftvod;
using vod::FlowAction;

namespace {

std::string action_name(std::optional<FlowAction> a) {
  if (!a) return "(none)";
  switch (*a) {
    case FlowAction::kIncrease:
      return "increase";
    case FlowAction::kDecrease:
      return "decrease";
    case FlowAction::kEmergencyTier1:
      return "emergency (q=12)";
    case FlowAction::kEmergencyTier2:
      return "emergency (q=6)";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "=== Figure 2: the client's flow control policy ===\n\n";
  const vod::VodParams p;

  // The policy rows, probed at representative occupancies. `prev` is primed
  // per row to show the trend-sensitive cells.
  struct Row {
    const char* zone;
    double total;
    double software;
    double prev;
    const char* paper_request;
  };
  const Row rows[] = {
      {"sw < 15% (critical)", 0.40, 0.05, 0.50, "emergency (urgent freq)"},
      {"sw < 30% (serious)", 0.50, 0.22, 0.55, "emergency (urgent freq)"},
      {"total < low water", 0.55, 0.60, 0.60, "increase (urgent freq)"},
      {"in band, falling", 0.80, 0.60, 0.82, "increase (normal freq)"},
      {"in band, rising", 0.80, 0.60, 0.78, "decrease (normal freq)"},
      {"in band, flat", 0.80, 0.60, 0.80, "(none)"},
      {"total >= high water", 0.93, 0.90, 0.92, "decrease (urgent freq)"},
  };

  metrics::Table table({"buffer occupancy zone", "total", "sw", "prev",
                        "paper's request", "implementation"});
  for (const Row& row : rows) {
    vod::FlowController fc(p);
    // Prime prev via the urgent-frequency path.
    for (int i = 0; i < p.flow_urgent_every; ++i) {
      (void)fc.on_frame_received(row.prev, 0.6);
    }
    table.add_row({row.zone, metrics::Table::num(row.total, 2),
                   metrics::Table::num(row.software, 2),
                   metrics::Table::num(row.prev, 2), row.paper_request,
                   action_name(fc.classify(row.total, row.software))});
  }
  table.print(std::cout);

  std::cout << "\nfrequencies: f_normal = every " << p.flow_normal_every
            << " received frames, f_urgent = every " << p.flow_urgent_every
            << " (paper: 8 and 4)\n";
  std::cout << "water marks: low = " << p.low_water_frac * 100
            << "% of total buffer space, high = " << p.high_water_frac * 100
            << "% (paper: 73% / 88%)\n";
  std::cout << "emergency thresholds (software stage): critical < "
            << p.emergency_tier1_frac * 100 << "%, serious < "
            << p.emergency_tier2_frac * 100 << "% (paper: 15% / 30%)\n";
  return 0;
}
