// City-scale macro benchmark: the tentpole scenario of the catalog /
// placement work. A Zipf catalog of a few hundred titles, thousands of
// edge clients attached through shared gateway daemons, Poisson session
// churn on part of the pool, and the placement controller moving replicas
// as demand moves — with the invariant monitor (including the replication
// floor) running for the whole measurement, so the numbers in the record
// are from a run that was *correct*, not merely fast.
//
// Two outputs, both in BENCH_city.json:
//   * scaling — clients vs events/s, frames/s and allocs/frame at 1k..10k
//     concurrent clients (timer wheel on, the shipping configuration).
//   * wheel_comparison — the flagship 10k-client run twice: timer wheel
//     disabled (the pre-optimization binary-heap scheduler, "before") and
//     enabled ("after"), with the speedup.
//
// Usage: city_scale [output.json]
//   FTVOD_BENCH_SMOKE=1 shrinks everything to a seconds-long sanity run
//   (bench_smoke uses this; smoke numbers are not meaningful).
//   FTVOD_CITY_ONLY=<clients> runs a single size and exits (debugging);
//   FTVOD_CITY_LOG=1 turns on protocol-level info logging.
//
// Run from a Release build only; Debug numbers are noise.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "mpeg/catalog_gen.hpp"
#include "sim/scheduler.hpp"
#include "testing/invariants.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "vod/placement.hpp"
#include "vod/service.hpp"
#include "workload/session_workload.hpp"

// Global allocation counter; compiled out under ASan (the sanitizer owns
// the allocator there), same contract as perf_core.
#if defined(__SANITIZE_ADDRESS__)
#define FTVOD_COUNTING_ALLOC 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FTVOD_COUNTING_ALLOC 0
#endif
#endif
#ifndef FTVOD_COUNTING_ALLOC
#define FTVOD_COUNTING_ALLOC 1
#endif

namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

#if FTVOD_COUNTING_ALLOC
void* operator new(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_alloc_count;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // FTVOD_COUNTING_ALLOC

namespace {

using Clock = std::chrono::steady_clock;

bool smoke_mode() {
  const char* v = std::getenv("FTVOD_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

struct CityConfig {
  int clients = 0;
  int churn_pool = 0;  // tail of the pool that churns via Poisson
  int servers = 8;
  int gateways = 2;
  std::size_t titles = 200;
  double stagger_s = 4.0;   // watch ramp
  double settle_s = 6.0;    // after the ramp, before measuring
  double measure_s = 4.0;   // measurement window
  bool wheel = true;
};

struct CityResult {
  int clients = 0;
  bool wheel = true;
  std::size_t watching = 0;
  std::uint64_t events = 0;
  std::uint64_t frames = 0;
  std::uint64_t allocs = 0;
  double sim_s = 0.0;
  double wall_s = 0.0;
  // Correctness alongside the speed numbers.
  std::uint64_t placement_adds = 0;
  std::uint64_t placement_removes = 0;
  std::uint64_t invariant_checks = 0;
  std::size_t invariant_violations = 0;
  std::uint64_t churn_arrivals = 0;
  std::uint64_t churn_departures = 0;
};

CityResult run_city(const CityConfig& cfg) {
  using namespace ftvod;
  using namespace ftvod::vod;

  Deployment dep(20260808);
  dep.scheduler().set_wheel_enabled(cfg.wheel);

  // Core hosts get datacenter provisioning: a server streaming to ~1250
  // clients at 1.4 Mbps needs ~1.8 Gbps of uplink, and the default
  // 100 Mbps host NIC would starve the control plane (syncs, open replies)
  // behind the video queue — protocol repair deadlines slip and the
  // invariant monitor rightly complains. 10 GbE, with queues deep enough
  // that a sync burst never tail-drops.
  net::HostConfig core;
  core.uplink_bps = 10e9;
  core.downlink_bps = 10e9;
  core.queue_limit_bytes = 8u << 20;
  core.downlink_queue_bytes = 8u << 20;
  std::vector<net::NodeId> server_nodes;
  for (int i = 0; i < cfg.servers; ++i) {
    server_nodes.push_back(dep.add_host("server" + std::to_string(i), core));
  }
  std::vector<net::NodeId> gw_nodes;
  for (int i = 0; i < cfg.gateways; ++i) {
    gw_nodes.push_back(dep.add_host("gw" + std::to_string(i), core));
  }
  std::vector<net::NodeId> edge_nodes;
  edge_nodes.reserve(static_cast<std::size_t>(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) {
    edge_nodes.push_back(dep.add_edge_host("edge" + std::to_string(i)));
  }
  for (net::NodeId s : server_nodes) dep.start_server(s);
  std::vector<Deployment::GatewayNode*> gws;
  for (net::NodeId g : gw_nodes) gws.push_back(&dep.start_gateway(g));
  for (int i = 0; i < cfg.clients; ++i) {
    dep.start_client(edge_nodes[static_cast<std::size_t>(i)],
                     *gws[static_cast<std::size_t>(i) % gws.size()]);
  }

  mpeg::CatalogSpec cspec;
  cspec.titles = cfg.titles;
  cspec.min_duration_s = 600.0;  // nobody reaches the credits mid-measure
  cspec.max_duration_s = 900.0;
  const auto catalog = mpeg::GeneratedCatalog::generate(7, cspec);

  PlacementConfig pcfg;
  pcfg.replication_floor = 2;
  pcfg.viewers_per_replica = 250;
  PlacementController controller(dep, pcfg);
  for (const auto& e : catalog.entries()) controller.manage(e.movie);

  dep.run_for(sim::sec(2.0));  // GCS convergence
  controller.tick_now();
  controller.start();

  // The bulk of the pool watches steadily — ranks drawn from the catalog's
  // own Zipf law, watches staggered across the ramp window so session-open
  // traffic ramps rather than detonates. The tail churns via Poisson.
  const int steady = cfg.clients - cfg.churn_pool;
  util::Rng pick(99);
  const auto step =
      static_cast<sim::Duration>(sim::sec(cfg.stagger_s) / std::max(steady, 1));
  for (int i = 0; i < steady; ++i) {
    const std::size_t rank = catalog.sample_rank(pick.uniform());
    VodClient* c = dep.clients()[static_cast<std::size_t>(i)]->client.get();
    dep.scheduler().at(
        dep.scheduler().now() + static_cast<sim::Duration>(i) * step,
        [c, &catalog, rank] { c->watch(catalog.entry(rank).movie->name()); });
  }
  workload::WorkloadConfig wcfg;
  wcfg.mean_hold_s = 30.0;
  wcfg.arrival_rate_per_s = static_cast<double>(cfg.churn_pool) / 25.0;
  workload::SessionWorkload churn(dep.scheduler(), catalog, wcfg);
  for (int i = steady; i < cfg.clients; ++i) {
    churn.add_client(dep.clients()[static_cast<std::size_t>(i)]->client.get());
  }
  churn.start();

  testing::InvariantOptions iopts;
  iopts.replication_floor = pcfg.replication_floor;
  testing::InvariantMonitor monitor(dep, iopts);
  monitor.start();

  dep.run_for(sim::sec(cfg.stagger_s + cfg.settle_s));

  CityResult r;
  r.clients = cfg.clients;
  r.wheel = cfg.wheel;
  r.sim_s = cfg.measure_s;
  for (auto& cn : dep.clients()) {
    if (cn->client->watching()) ++r.watching;
  }
  auto frames_sent = [&] {
    std::uint64_t sum = 0;
    for (auto& sn : dep.servers()) {
      if (sn->server) sum += sn->server->stats().frames_sent;
    }
    return sum;
  };

  const std::uint64_t allocs0 = g_alloc_count;
  const std::uint64_t events0 = dep.scheduler().executed_events();
  const std::uint64_t frames0 = frames_sent();
  const auto t0 = Clock::now();
  dep.run_for(sim::sec(cfg.measure_s));
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.events = dep.scheduler().executed_events() - events0;
  r.frames = frames_sent() - frames0;
  r.allocs = g_alloc_count - allocs0;
  r.placement_adds = controller.stats().adds;
  r.placement_removes = controller.stats().drops;
  r.invariant_checks = monitor.checks_run();
  r.invariant_violations = monitor.violations().size();
  r.churn_arrivals = churn.stats().arrivals;
  r.churn_departures = churn.stats().departures;
  return r;
}

double per_sec(std::uint64_t n, double wall_s) {
  return wall_s > 0.0 ? static_cast<double>(n) / wall_s : 0.0;
}

double per(std::uint64_t n, std::uint64_t d) {
  return d > 0 ? static_cast<double>(n) / static_cast<double>(d) : 0.0;
}

void print_result(const char* tag, const CityResult& r) {
  std::printf(
      "%-22s %6d clients (%5zu watching)  %9llu events  %8llu frames  "
      "%6.2fs wall  ->  %8.0f events/s  %7.0f frames/s  %5.2f allocs/frame  "
      "[placement +%llu/-%llu, %llu checks, %zu violations]\n",
      tag, r.clients, r.watching, static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.frames), r.wall_s,
      per_sec(r.events, r.wall_s), per_sec(r.frames, r.wall_s),
      per(r.allocs, r.frames),
      static_cast<unsigned long long>(r.placement_adds),
      static_cast<unsigned long long>(r.placement_removes),
      static_cast<unsigned long long>(r.invariant_checks),
      r.invariant_violations);
}

void json_result(std::ostringstream& os, const CityResult& r,
                 const char* indent) {
  os << indent << "{\n";
  os << indent << "  \"clients\": " << r.clients << ",\n";
  os << indent << "  \"wheel\": " << (r.wheel ? "true" : "false") << ",\n";
  os << indent << "  \"watching\": " << r.watching << ",\n";
  os << indent << "  \"sim_s\": " << r.sim_s << ",\n";
  os << indent << "  \"events\": " << r.events << ",\n";
  os << indent << "  \"frames\": " << r.frames << ",\n";
  os << indent << "  \"allocs\": " << r.allocs << ",\n";
  os << indent << "  \"wall_s\": " << r.wall_s << ",\n";
  os << indent << "  \"events_per_s\": " << per_sec(r.events, r.wall_s)
     << ",\n";
  os << indent << "  \"frames_per_s\": " << per_sec(r.frames, r.wall_s)
     << ",\n";
  os << indent << "  \"allocs_per_frame\": " << per(r.allocs, r.frames)
     << ",\n";
  os << indent << "  \"placement_adds\": " << r.placement_adds << ",\n";
  os << indent << "  \"placement_removes\": " << r.placement_removes << ",\n";
  os << indent << "  \"invariant_checks\": " << r.invariant_checks << ",\n";
  os << indent << "  \"invariant_violations\": " << r.invariant_violations
     << ",\n";
  os << indent << "  \"churn_arrivals\": " << r.churn_arrivals << ",\n";
  os << indent << "  \"churn_departures\": " << r.churn_departures << "\n";
  os << indent << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  if (const char* lvl = std::getenv("FTVOD_CITY_LOG"); lvl && *lvl) {
    ftvod::util::Log::set_level(ftvod::util::LogLevel::kInfo);
  }
  if (const char* only = std::getenv("FTVOD_CITY_ONLY"); only && *only) {
    // Debug: one run at the given client count, wheel on, then exit.
    CityConfig cfg;
    cfg.clients = std::atoi(only);
    cfg.churn_pool = cfg.clients / 10;
    cfg.gateways = std::max(2, cfg.clients / 400);
    const CityResult r = run_city(cfg);
    print_result("debug", r);
    return r.invariant_violations == 0 ? 0 : 1;
  }
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_city.json";

  // Scaling sweep (wheel on), then the flagship size twice for the
  // before/after wheel comparison. Smoke keeps the same structure at toy
  // scale so the whole harness stays exercised.
  std::vector<int> sweep =
      smoke ? std::vector<int>{40} : std::vector<int>{1000, 2500, 5000};
  const int flagship = smoke ? 80 : 10'000;

  auto config_for = [&](int clients, bool wheel) {
    CityConfig cfg;
    cfg.clients = clients;
    cfg.churn_pool = clients / 10;
    cfg.servers = smoke ? 3 : 8;
    cfg.gateways = std::max(2, clients / 400);
    cfg.titles = smoke ? 24 : 200;
    cfg.stagger_s = smoke ? 1.0 : 4.0;
    cfg.settle_s = smoke ? 2.0 : 6.0;
    cfg.measure_s = smoke ? 1.0 : 4.0;
    cfg.wheel = wheel;
    return cfg;
  };

  std::cout << "=== City-scale catalog + placement ===\n"
            << (smoke ? "(smoke scale; numbers not meaningful)\n" : "");

  std::vector<CityResult> scaling;
  for (int clients : sweep) {
    scaling.push_back(run_city(config_for(clients, /*wheel=*/true)));
    print_result("scaling", scaling.back());
  }
  const CityResult before = run_city(config_for(flagship, /*wheel=*/false));
  print_result("flagship (wheel off)", before);
  const CityResult after = run_city(config_for(flagship, /*wheel=*/true));
  print_result("flagship (wheel on)", after);
  scaling.push_back(after);

  const double speedup =
      before.wall_s > 0.0 && after.wall_s > 0.0 ? before.wall_s / after.wall_s
                                                : 0.0;
  std::printf("timer wheel speedup at %d clients: %.2fx\n", flagship, speedup);

  std::size_t violations = before.invariant_violations;
  for (const CityResult& r : scaling) violations += r.invariant_violations;

  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "  \"bench\": \"city_scale\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    json_result(os, scaling[i], "    ");
    os << (i + 1 < scaling.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"wheel_comparison\": {\n";
  os << "    \"clients\": " << flagship << ",\n";
  os << "    \"before_wheel_off\":\n";
  json_result(os, before, "      ");
  os << ",\n";
  os << "    \"after_wheel_on\":\n";
  json_result(os, after, "      ");
  os << ",\n";
  os << "    \"wall_speedup\": " << speedup << "\n";
  os << "  }\n";
  os << "}\n";

  std::ofstream f(out_path, std::ios::trunc);
  if (!f) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  f << os.str();
  std::cout << "wrote " << out_path << '\n';

  if (violations != 0) {
    std::cerr << "invariant violations during the benchmark runs\n";
    return 1;
  }
  return 0;
}
