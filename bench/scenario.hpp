// Shared benchmark scenario: the measurement runs of §6. One client watches
// a 1.4 Mbps / 30 fps movie; mid-run its server is crashed and/or a new
// server is brought up for load balancing, while a sampler records the
// series the paper plots (cumulative skipped/late frames, buffer
// occupancies, overflow discards).
#pragma once

#include <optional>
#include <string>

#include "metrics/recorder.hpp"
#include "vod/service.hpp"

namespace ftvod::bench {

struct ScenarioOptions {
  net::LinkQuality quality = net::lan_quality();
  std::uint64_t seed = 42;
  vod::VodParams params;
  double duration_s = 90.0;
  /// Seconds after the movie starts; nullopt = event disabled.
  std::optional<double> crash_at_s = 38.0;
  std::optional<double> load_balance_at_s = 62.0;
  double sample_period_s = 0.2;
  double movie_minutes = 10.0;
};

struct ScenarioResult {
  metrics::Recorder recorder;
  vod::BufferCounters final_counters;
  vod::ClientControlStats control;
  std::uint64_t takeovers = 0;
  std::uint64_t migrations = 0;
  std::uint64_t gcs_control_bytes = 0;  // serving servers' daemon traffic
  std::uint64_t video_bytes = 0;
  bool connected = false;
  double duration_s = 0.0;
};

/// Runs the migration scenario and returns the recorded series:
///   "skipped"      cumulative frames never displayed        (Figs 4a/5a)
///   "late"         cumulative late/duplicate frames         (Fig 4b)
///   "sw_frames"    software buffer occupancy in frames      (Fig 4c)
///   "hw_bytes"     hardware buffer occupancy in bytes       (Fig 4d)
///   "overflow"     cumulative overflow discards             (Fig 5b)
///   "occupancy"    total occupancy fraction
inline ScenarioResult run_migration_scenario(const ScenarioOptions& opt) {
  using namespace ftvod::vod;
  Deployment dep(opt.seed, opt.quality, opt.params);
  const net::NodeId s0 = dep.add_host("server0");
  const net::NodeId s1 = dep.add_host("server1");
  const net::NodeId s2 = dep.add_host("server2");  // the load-balance spare
  const net::NodeId c0 = dep.add_host("client0");

  auto movie = mpeg::Movie::synthetic("feature", opt.movie_minutes * 60.0);
  dep.start_server(s0).server->add_movie(movie);
  dep.start_server(s1).server->add_movie(movie);
  auto& client_node = dep.start_client(c0);
  dep.run_for(sim::sec(2.0));  // GCS convergence

  VodClient& client = *client_node.client;
  client.watch("feature");
  const sim::Time origin = dep.scheduler().now();

  ScenarioResult result;
  metrics::Recorder& rec = result.recorder;

  sim::PeriodicTimer sampler(
      dep.scheduler(), sim::sec(opt.sample_period_s), [&] {
        const sim::Time t = dep.scheduler().now() - origin;
        const BufferCounters& c = client.counters();
        rec.sample("skipped", t, static_cast<double>(c.skipped));
        rec.sample("late", t, static_cast<double>(c.late));
        rec.sample("overflow", t, static_cast<double>(c.overflow_discards));
        if (const auto* b = client.buffers()) {
          rec.sample("sw_frames", t, static_cast<double>(b->sw_frames()));
          rec.sample("hw_bytes", t, static_cast<double>(b->hw_bytes()));
          rec.sample("occupancy", t, b->occupancy_fraction());
        }
      });
  sampler.start(sim::sec(opt.sample_period_s));

  auto run_until_scenario_time = [&](double seconds) {
    dep.run_until(origin + sim::sec(seconds));
  };

  std::vector<std::pair<double, char>> events;  // (time, 'c'|'l')
  if (opt.crash_at_s) events.emplace_back(*opt.crash_at_s, 'c');
  if (opt.load_balance_at_s) events.emplace_back(*opt.load_balance_at_s, 'l');
  std::sort(events.begin(), events.end());

  for (const auto& [at, kind] : events) {
    run_until_scenario_time(at);
    if (kind == 'c') {
      // Crash whichever server currently transmits to the client.
      for (auto& sn : dep.servers()) {
        if (sn->server->serves(client.client_id()) &&
            dep.network().alive(sn->node)) {
          dep.crash(sn->node);
          break;
        }
      }
    } else {
      dep.start_server(s2).server->add_movie(movie);
    }
  }
  run_until_scenario_time(opt.duration_s);

  result.final_counters = client.counters();
  result.control = client.control_stats();
  result.connected = client.connected();
  result.duration_s = opt.duration_s;
  for (auto& sn : dep.servers()) {
    result.takeovers += sn->server->stats().takeovers;
    result.migrations += sn->server->stats().migrations_out;
    result.gcs_control_bytes += sn->daemon->socket_stats().bytes_sent;
    result.video_bytes += sn->server->data_socket_stats().bytes_sent;
  }
  return result;
}

}  // namespace ftvod::bench
