// Scalability of the control plane (§1: "in such an environment,
// scalability and fault tolerance will be key issues"): client count vs
// placement balance, takeover-storm latency when a loaded server dies, and
// the per-server control overhead. The data plane scales trivially (each
// stream is independent); the interesting question is whether the
// group-communication control plane keeps up.
#include <iostream>

#include "metrics/report.hpp"
#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

struct Outcome {
  std::size_t max_load = 0;
  std::size_t min_load = SIZE_MAX;
  double storm_reassign_s = -1;  // crash -> all orphans adopted
  std::uint64_t starved_clients = 0;
  double control_kbps_per_server = 0;
};

Outcome run(int n_servers, int n_clients) {
  Deployment dep(7 * n_clients + n_servers);
  std::vector<net::NodeId> server_hosts;
  for (int i = 0; i < n_servers; ++i) {
    server_hosts.push_back(dep.add_host("s" + std::to_string(i)));
  }
  std::vector<net::NodeId> client_hosts;
  for (int i = 0; i < n_clients; ++i) {
    client_hosts.push_back(dep.add_host("c" + std::to_string(i)));
  }
  auto movie = mpeg::Movie::synthetic("m", 300.0);
  for (net::NodeId h : server_hosts) {
    dep.start_server(h).server->add_movie(movie);
  }
  for (net::NodeId h : client_hosts) dep.start_client(h);
  dep.run_for(sim::sec(3.0));
  for (auto& cn : dep.clients()) cn->client->watch("m");
  dep.run_for(sim::sec(20.0));

  Outcome out;
  for (auto& sn : dep.servers()) {
    out.max_load = std::max(out.max_load, sn->server->session_count());
    out.min_load = std::min(out.min_load, sn->server->session_count());
  }

  // Takeover storm: kill the most loaded server, time until every client
  // is served again.
  VodServer* victim = nullptr;
  for (auto& sn : dep.servers()) {
    if (victim == nullptr ||
        sn->server->session_count() > victim->session_count()) {
      victim = sn->server.get();
    }
  }
  const std::uint64_t c0 =
      [&] {
        std::uint64_t sum = 0;
        for (auto& sn : dep.servers()) {
          sum += sn->daemon->socket_stats().bytes_sent;
        }
        return sum;
      }();
  const sim::Time crash_at = dep.scheduler().now();
  dep.crash(victim->node());
  sim::Time done_at = -1;
  while (dep.scheduler().now() - crash_at < sim::sec(15.0)) {
    dep.run_for(sim::msec(25));
    std::size_t served = 0;
    for (auto& sn : dep.servers()) {
      if (dep.network().alive(sn->node)) {
        served += sn->server->session_count();
      }
    }
    if (served == static_cast<std::size_t>(n_clients) && done_at < 0) {
      done_at = dep.scheduler().now();
      break;
    }
  }
  out.storm_reassign_s =
      done_at > 0 ? sim::to_sec(done_at - crash_at) : -1.0;

  dep.run_for(sim::sec(10.0));
  for (auto& cn : dep.clients()) {
    if (cn->client->counters().starvation_ticks > 0) ++out.starved_clients;
  }
  std::uint64_t c1 = 0;
  for (auto& sn : dep.servers()) {
    c1 += sn->daemon->socket_stats().bytes_sent;
  }
  const double window_s = sim::to_sec(dep.scheduler().now() - crash_at);
  out.control_kbps_per_server =
      static_cast<double>(c1 - c0) * 8.0 / 1000.0 / window_s /
      std::max(1, n_servers - 1);
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Control-plane scalability ===\n"
            << "N clients on 3 replicas; the most loaded replica is killed;\n"
            << "time until every orphan is adopted, and whether any client's\n"
            << "display froze.\n\n";

  metrics::Table table({"clients", "load (min..max)", "reassign all (s)",
                        "starved clients", "GCS kbit/s per server"});
  bool all_ok = true;
  for (int n : {3, 6, 12, 24}) {
    const Outcome o = run(3, n);
    table.add_row({std::to_string(n),
                   std::to_string(o.min_load) + ".." +
                       std::to_string(o.max_load),
                   metrics::Table::num(o.storm_reassign_s, 2),
                   std::to_string(o.starved_clients),
                   metrics::Table::num(o.control_kbps_per_server, 1)});
    if (o.max_load - o.min_load > 1 || o.storm_reassign_s < 0 ||
        o.storm_reassign_s > 2.0 || o.starved_clients > 0) {
      all_ok = false;
    }
  }
  table.print(std::cout);
  std::cout << '\n'
            << (all_ok ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "balanced placement, sub-2s takeover storms, no frozen "
               "displays, modest control traffic\n";
  return 0;
}
