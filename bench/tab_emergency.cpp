// Reproduces the emergency-parameter analysis of §4.1: base quantity q and
// decay factor f determine the total extra frames, the burst duration, and
// the peak bandwidth overhead. The paper's choices:
//   q=12, f=0.8 -> 43 extra frames, 40% peak overhead on a 30 fps stream
//   q=6,  f=0.8 -> ~15 extra frames (our truncation arithmetic gives 16)
#include <iostream>

#include "metrics/report.hpp"
#include "vod/emergency.hpp"

using namespace ftvod;

int main() {
  std::cout << "=== Emergency burst parameters (§4.1) ===\n"
            << "total extra frames = sum of the per-second quantity, which\n"
            << "decays by f each second with integer truncation.\n\n";

  metrics::Table table({"q (frames/s)", "decay f", "total extra frames",
                        "duration (s)", "peak overhead @30fps"});
  for (int q : {3, 6, 12, 18, 24}) {
    for (double f : {0.5, 0.7, 0.8, 0.9}) {
      table.add_row(
          {std::to_string(q), metrics::Table::num(f, 1),
           std::to_string(vod::EmergencyQuantity::burst_total(q, f)),
           std::to_string(vod::EmergencyQuantity::burst_duration_s(q, f)),
           metrics::Table::num(100.0 * q / 30.0, 0) + "%"});
    }
  }
  table.print(std::cout);

  const auto q12 = vod::EmergencyQuantity::burst_total(12, 0.8);
  const auto q6 = vod::EmergencyQuantity::burst_total(6, 0.8);
  std::cout << "\npaper's prototype: q=12, f=0.8 -> " << q12
            << " extra frames (paper reports 43), peak +40% bandwidth\n"
            << "second tier:       q=6,  f=0.8 -> " << q6
            << " extra frames (paper reports ~15)\n";
  std::cout << "decay sequence for q=12: ";
  vod::EmergencyQuantity eq(0.8);
  eq.trigger(12);
  while (eq.active()) {
    std::cout << eq.quantity() << ' ';
    eq.decay_step();
  }
  std::cout << " (paper: VBR channel varying to at most 40% of the CBR "
               "channel)\n";
  std::cout << (q12 == 43 ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "q=12 burst sums to exactly the paper's 43 frames\n";
  return 0;
}
