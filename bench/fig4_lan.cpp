// Reproduces Figure 4 of the paper: "Overcoming the irregularity of video
// transmission in a LAN". One client on a switched-Ethernet LAN; the
// transmitting server is killed at ~38 s, and at ~62 s a new server is
// brought up and the client is migrated to it for load balancing.
//
//   4(a) cumulative skipped frames   — small steps at startup/crash/balance
//   4(b) cumulative late frames      — duplicates at migrations
//   4(c) software buffer occupancy   — oscillates between the water marks,
//                                      drops to ~0 at crash, ~1/4 at balance
//   4(d) hardware buffer occupancy   — fills up, dips to ~3/4 at crash
#include <iostream>

#include "metrics/report.hpp"
#include "scenario.hpp"

using namespace ftvod;

namespace {

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [shape OK]   " : "  [SHAPE FAIL] ") << what << '\n';
}

double value_at(const metrics::TimeSeries& s, double t_seconds) {
  double v = 0.0;
  for (const auto& sample : s.samples()) {
    if (sim::to_sec(sample.t) > t_seconds) break;
    v = sample.value;
  }
  return v;
}

double min_in(const metrics::TimeSeries& s, double from_s, double to_s) {
  double v = 1e300;
  for (const auto& sample : s.window(sim::sec(from_s), sim::sec(to_s))) {
    v = std::min(v, sample.value);
  }
  return v;
}

}  // namespace

int main() {
  std::cout << "=== Figure 4: overcoming transmission irregularity (LAN) ===\n"
            << "1.4 Mbps 30 fps movie; crash of the serving server at ~38 s;\n"
            << "load-balance migration to a freshly started server at ~62 s.\n\n";

  bench::ScenarioOptions opt;  // defaults are the paper's LAN run
  const bench::ScenarioResult r = bench::run_migration_scenario(opt);

  metrics::print_ascii_chart(std::cout,
                             *r.recorder.series("skipped"));
  std::cout << '\n';
  metrics::print_ascii_chart(std::cout, *r.recorder.series("late"));
  std::cout << '\n';
  metrics::print_ascii_chart(std::cout, *r.recorder.series("sw_frames"));
  std::cout << '\n';
  metrics::print_ascii_chart(std::cout, *r.recorder.series("hw_bytes"));
  std::cout << '\n';

  const auto& skipped = *r.recorder.series("skipped");
  const auto& late = *r.recorder.series("late");
  const auto& sw = *r.recorder.series("sw_frames");
  const auto& hw = *r.recorder.series("hw_bytes");

  const double skip_start = value_at(skipped, 20.0);
  const double skip_after_crash = value_at(skipped, 55.0) - skip_start;
  const double skip_after_lb = skipped.samples().back().value -
                               value_at(skipped, 55.0);
  const double late_after_crash = value_at(late, 55.0) - value_at(late, 20.0);
  const double late_after_lb =
      late.samples().back().value - value_at(late, 55.0);

  metrics::Table table({"event", "skipped (paper: <=6)", "late (paper: dups)",
                        "min sw frames", "min hw bytes"});
  table.add_row({"startup", metrics::Table::num(skip_start, 0),
                 metrics::Table::num(value_at(late, 20.0), 0), "-", "-"});
  table.add_row({"crash @38s", metrics::Table::num(skip_after_crash, 0),
                 metrics::Table::num(late_after_crash, 0),
                 metrics::Table::num(min_in(sw, 38.0, 50.0), 0),
                 metrics::Table::num(min_in(hw, 38.0, 50.0), 0)});
  table.add_row({"balance @62s", metrics::Table::num(skip_after_lb, 0),
                 metrics::Table::num(late_after_lb, 0),
                 metrics::Table::num(min_in(sw, 62.0, 74.0), 0),
                 metrics::Table::num(min_in(hw, 62.0, 74.0), 0)});
  table.print(std::cout);
  std::cout << '\n';

  // Shape checks against the paper's qualitative results.
  check(r.connected, "client connected and remained in service");
  check(r.takeovers >= 1, "a survivor took the client over after the crash");
  check(r.final_counters.starvation_ticks == 0,
        "display never starved (transitions invisible to a human observer)");
  check(skip_start <= 16,
        "startup skips are a small burst (paper: <=6; our startup needs two"
        " emergency bursts, see EXPERIMENTS.md)");
  check(skip_after_crash <= 12, "crash skips are a small burst (paper: <=6)");
  check(skip_after_lb <= 12, "balance skips are a small burst (paper: <=6)");
  check(r.final_counters.overflow_discarded_i_frames == 0,
        "no skipped frame was an I frame");
  check(late_after_crash >= 1, "crash produced duplicate (late) frames");
  check(late_after_lb >= 1, "migration produced duplicate (late) frames");
  check(min_in(sw, 38.0, 50.0) <= 4,
        "software buffer drained to ~zero during the crash takeover");
  check(min_in(sw, 62.0, 74.0) >= 2,
        "software buffer only dipped at the load balance");
  check(min_in(hw, 38.0, 50.0) >
            0.5 * hw.samples().back().value,
        "hardware buffer never fell below ~half during the crash");
  // Fig 4(c): oscillation between water marks in steady state (20-38 s).
  const double sw_min_steady = min_in(sw, 20.0, 38.0);
  check(sw_min_steady >= 10, "steady-state sw occupancy stays in the band");

  std::cout << "\ncounters: received=" << r.final_counters.received
            << " displayed=" << r.final_counters.displayed
            << " skipped=" << r.final_counters.skipped
            << " late=" << r.final_counters.late
            << " overflow=" << r.final_counters.overflow_discards
            << " starvation=" << r.final_counters.starvation_ticks << '\n';
  std::cout << "takeovers=" << r.takeovers << " migrations=" << r.migrations
            << " emergencies=" << r.control.emergencies_sent << '\n';
  return 0;
}
