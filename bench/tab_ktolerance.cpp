// Reproduces the §7 comparison with Microsoft Tiger: "The Tiger system
// smoothly tolerates the failure of one server, but not necessarily two...
// In contrast, our VoD service does not set a hard limit on the number of
// failures tolerated. If a movie is replicated k times, then up to k-1
// failures are tolerated."
//
// For k = 2..5 replicas we crash k-1 servers sequentially (always the one
// currently serving) and check the client survives every transition. As the
// baseline comparison, a Tiger-like striped system is modelled analytically:
// it survives 1 failure and loses the stream at the second.
#include <iostream>

#include "metrics/report.hpp"
#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

struct Outcome {
  int failures_survived = 0;
  std::uint64_t total_skipped = 0;
  std::uint64_t starvation = 0;
  bool played_to_end = false;
};

Outcome run(int k) {
  Deployment dep(42 + k);
  std::vector<net::NodeId> server_hosts;
  for (int i = 0; i < k; ++i) {
    server_hosts.push_back(dep.add_host("s" + std::to_string(i)));
  }
  const net::NodeId c0 = dep.add_host("c0");
  auto movie = mpeg::Movie::synthetic("m", 600.0);
  for (net::NodeId h : server_hosts) dep.start_server(h).server->add_movie(movie);
  auto& client = *dep.start_client(c0).client;
  dep.run_for(sim::sec(2.0));
  client.watch("m");
  dep.run_for(sim::sec(20.0));

  Outcome out;
  for (int failure = 1; failure <= k - 1; ++failure) {
    // Crash whoever serves now.
    VodServer* victim = nullptr;
    for (auto& sn : dep.servers()) {
      if (dep.network().alive(sn->node) &&
          sn->server->serves(client.client_id())) {
        victim = sn->server.get();
      }
    }
    if (victim == nullptr) break;
    const auto displayed_before = client.counters().displayed;
    dep.crash(victim->node());
    dep.run_for(sim::sec(12.0));
    if (client.counters().displayed - displayed_before < 250) break;
    out.failures_survived = failure;
  }
  out.total_skipped = client.counters().skipped;
  out.starvation = client.counters().starvation_ticks;
  out.played_to_end = out.failures_survived == k - 1;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Fault tolerance vs replication degree (§7) ===\n"
            << "k replicas; the serving server is crashed k-1 times in\n"
            << "sequence. Tiger (baseline, striping + mirrored secondaries)\n"
            << "survives exactly 1 failure regardless of array size.\n\n";

  metrics::Table table({"k replicas", "failures survived", "paper claim",
                        "total skipped", "starvation ticks",
                        "Tiger baseline"});
  bool all_ok = true;
  for (int k : {2, 3, 4, 5}) {
    const Outcome o = run(k);
    const bool ok = o.failures_survived == k - 1;
    all_ok = all_ok && ok;
    table.add_row({std::to_string(k), std::to_string(o.failures_survived),
                   std::to_string(k - 1) + " (k-1)",
                   std::to_string(o.total_skipped),
                   std::to_string(o.starvation), "1"});
  }
  table.print(std::cout);
  std::cout << '\n'
            << (all_ok ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "every k survived exactly k-1 sequential failures\n";
  return 0;
}
