// Extension experiment (paper §2): "as any application involving video
// transmission, our service is best provided using QoS reservation
// mechanisms. However, if bandwidth is abundant and jitter rarely occurs
// ... some buffer space and a flow control mechanism can account for
// jitter periods."
//
// We give the client an ADSL-class 4 Mbps downlink and inject competing
// CBR background traffic. Without reservation the junk steals downlink
// capacity and the video loses frames; "reserving" capacity (shaping the
// junk away) or asking for reduced quality (§4.3) restores smoothness.
#include <iostream>

#include "metrics/report.hpp"
#include "net/traffic.hpp"
#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

struct Outcome {
  double skip_pct = 0;
  std::uint64_t starvation = 0;
  std::uint64_t downlink_drops = 0;
};

Outcome run(double junk_bps, double capability_fps) {
  Deployment dep(99);
  const net::NodeId s0 = dep.add_host("server");
  const net::NodeId junk_host = dep.add_host("junk-source");
  // The client sits behind a 4 Mbps last-mile downlink.
  net::HostConfig adsl;
  adsl.downlink_bps = 4e6;
  adsl.downlink_queue_bytes = 64 * 1024;
  const net::NodeId c0 = dep.network().add_host("client-adsl", adsl);
  dep.gcs_config().peers.push_back(c0);

  auto movie = mpeg::Movie::synthetic("m", 240.0);
  dep.start_server(s0).server->add_movie(movie);
  auto& client = *dep.start_client(c0).client;
  dep.run_for(sim::sec(2.0));

  std::unique_ptr<net::TrafficGenerator> junk;
  if (junk_bps > 0) {
    junk = std::make_unique<net::TrafficGenerator>(
        dep.scheduler(), dep.network(), junk_host, c0, junk_bps);
  }
  client.watch("m", capability_fps);
  dep.run_for(sim::sec(45.0));

  Outcome out;
  const BufferCounters& c = client.counters();
  out.skip_pct = 100.0 * static_cast<double>(c.skipped) /
                 static_cast<double>(c.displayed + c.skipped + 1);
  out.starvation = c.starvation_ticks;
  out.downlink_drops = dep.network().stats(c0).dropped_queue;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Congestion on the client's last mile (QoS discussion, "
               "§2) ===\n"
            << "4 Mbps downlink; 1.4 Mbps video; CBR junk competes for the\n"
            << "downlink. \"reserved\" = junk shaped away (the paper's CBR\n"
            << "channel); \"reduced quality\" = client asks for 10 fps "
               "(§4.3).\n\n";

  metrics::Table table({"scenario", "junk Mbps", "video quality",
                        "skipped %", "starvation", "downlink drops"});

  const Outcome clean = run(0, 0);
  table.add_row({"reserved (no contention)", "0", "full",
                 metrics::Table::num(clean.skip_pct, 2),
                 std::to_string(clean.starvation),
                 std::to_string(clean.downlink_drops)});

  const Outcome mild = run(1.5e6, 0);
  table.add_row({"mild contention", "1.5", "full",
                 metrics::Table::num(mild.skip_pct, 2),
                 std::to_string(mild.starvation),
                 std::to_string(mild.downlink_drops)});

  const Outcome heavy = run(3.2e6, 0);
  table.add_row({"heavy contention", "3.2", "full",
                 metrics::Table::num(heavy.skip_pct, 2),
                 std::to_string(heavy.starvation),
                 std::to_string(heavy.downlink_drops)});

  const Outcome adapted = run(3.2e6, 10.0);
  table.add_row({"heavy + reduced quality", "3.2", "10 fps",
                 metrics::Table::num(adapted.skip_pct, 2),
                 std::to_string(adapted.starvation),
                 std::to_string(adapted.downlink_drops)});

  table.print(std::cout);
  std::cout << '\n';

  auto check = [](bool ok, const char* what) {
    std::cout << (ok ? "  [shape OK]   " : "  [SHAPE FAIL] ") << what << '\n';
  };
  check(clean.skip_pct < 1.0 && clean.starvation == 0,
        "with reserved capacity the stream is clean");
  check(mild.skip_pct < 2.0,
        "buffers + flow control absorb mild contention (paper: they "
        "\"account for jitter periods\")");
  check(heavy.skip_pct > mild.skip_pct + 1.0 || heavy.starvation > 0,
        "unreserved heavy contention visibly degrades the video");
  check(adapted.starvation == 0 &&
            adapted.skip_pct > 50.0,  // intentional: 2 of 3 frames unsent
        "reduced quality survives heavy contention smoothly (all I frames, "
        "no freezes)");
  return 0;
}
