// Ablation (§5.2): the servers synchronize every 0.5 s. A longer period
// costs staler takeover offsets — more duplicate ("late") frames and a
// deeper buffer dip at migration; a shorter one costs control bandwidth.
// "The duration of the irregularity period is at most the sum of the
// synchronization skew and the take over time."
#include <iostream>

#include "metrics/report.hpp"
#include "scenario.hpp"

using namespace ftvod;
using namespace ftvod::vod;

int main() {
  std::cout << "=== Ablation: state-sync period vs migration cost ===\n"
            << "Crash at 30 s; 3 seeds per row. Paper period: 500 ms.\n\n";

  metrics::Table table({"sync period (ms)", "late frames @crash",
                        "min occupancy", "starvation", "syncs/s/server"});
  double late_200 = -1, late_2000 = -1;
  for (sim::Duration period : {sim::msec(200), sim::msec(500),
                               sim::msec(1000), sim::msec(2000)}) {
    double late_sum = 0;
    double min_occ = 1.0;
    std::uint64_t starve = 0;
    const int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      bench::ScenarioOptions opt;
      opt.seed = 100 + seed * 31;
      opt.params.sync_period = period;
      // The table-exchange fallback must cover at least one sync period.
      opt.params.table_exchange_delay = period + sim::msec(200);
      opt.duration_s = 50.0;
      opt.crash_at_s = 30.0;
      opt.load_balance_at_s.reset();
      const bench::ScenarioResult r = bench::run_migration_scenario(opt);

      const auto* late = r.recorder.series("late");
      double before = 0;
      for (const auto& s : late->samples()) {
        if (sim::to_sec(s.t) <= 28.0) before = s.value;
      }
      late_sum += late->samples().back().value - before;
      const auto* occ = r.recorder.series("occupancy");
      for (const auto& s : occ->window(sim::sec(29.0), sim::sec(45.0))) {
        min_occ = std::min(min_occ, s.value);
      }
      starve += r.final_counters.starvation_ticks;
    }
    const double late_avg = late_sum / kSeeds;
    if (period == sim::msec(200)) late_200 = late_avg;
    if (period == sim::msec(2000)) late_2000 = late_avg;
    table.add_row({std::to_string(period / 1000),
                   metrics::Table::num(late_avg, 1),
                   metrics::Table::num(min_occ * 100, 0) + "%",
                   std::to_string(starve),
                   metrics::Table::num(1000.0 / (period / 1000.0), 1)});
  }
  table.print(std::cout);
  std::cout << '\n'
            << ((late_200 >= 0 && late_200 < late_2000) ? "  [shape OK]   "
                                                        : "  [SHAPE FAIL] ")
            << "staler sync -> more duplicate transmission at takeover "
               "(the paper's conservative approach)\n";
  return 0;
}
