// Microbenchmarks (google-benchmark): raw costs of the building blocks —
// codec, client-buffer operations, GCS ordering latency/throughput and view
// changes, and simulated-network packet processing. These quantify the
// "group communication greatly simplifies the service design" trade: the
// control plane must be cheap enough to be negligible next to the video.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "gcs/daemon.hpp"
#include "gcs/wire.hpp"
#include "mpeg/movie.hpp"
#include "net/network.hpp"
#include "vod/client_buffer.hpp"
#include "vod/redistribution.hpp"

using namespace ftvod;

// ---- codec -----------------------------------------------------------------

static void BM_CodecEncodeStateSyncLike(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Writer w;
    w.str("vod.movie.feature");
    w.u32(static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      w.u64(i);
      w.u32(3);
      w.u16(9100);
      w.u64(123456 + i);
      w.f64(30.0);
      w.f64(0.0);
      w.f64(0.0);
      w.boolean(false);
    }
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CodecEncodeStateSyncLike)->Arg(1)->Arg(16)->Arg(256);

static void BM_CodecDecodeOrdered(benchmark::State& state) {
  gcs::wire::Ordered msg;
  msg.view = {7, 1};
  msg.gseq = 42;
  msg.sender = 3;
  msg.sender_seq = 99;
  msg.group = "vod.session.1234567";
  msg.origin = {3, 2};
  msg.payload.resize(static_cast<std::size_t>(state.range(0)));
  const util::Bytes bytes = gcs::wire::encode(msg);
  for (auto _ : state) {
    auto decoded = gcs::wire::decode_ordered(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CodecDecodeOrdered)->Arg(32)->Arg(1024)->Arg(16384);

// ---- client buffer ----------------------------------------------------------

static void BM_ClientBufferInsertConsume(benchmark::State& state) {
  auto movie = mpeg::Movie::synthetic("bench", 600.0);
  vod::ClientBuffers buffers(37, 240 * 1024, movie->avg_frame_bytes());
  std::uint64_t next = 0;
  for (auto _ : state) {
    buffers.insert(movie->frame(next % movie->frame_count()));
    ++next;
    if (next % 2 == 0) benchmark::DoNotOptimize(buffers.consume());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClientBufferInsertConsume);

static void BM_ClientBufferOutOfOrderInsert(benchmark::State& state) {
  auto movie = mpeg::Movie::synthetic("bench", 600.0);
  vod::ClientBuffers buffers(37, 240 * 1024, movie->avg_frame_bytes());
  std::uint64_t next = 0;
  for (auto _ : state) {
    // Pairwise swapped arrival order exercises the re-ordering path.
    const std::uint64_t idx = (next % 2 == 0) ? next + 1 : next - 1;
    buffers.insert(movie->frame(idx % movie->frame_count()));
    ++next;
    if (next % 2 == 0) benchmark::DoNotOptimize(buffers.consume());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClientBufferOutOfOrderInsert);

// ---- redistribution ---------------------------------------------------------

static void BM_Rebalance(benchmark::State& state) {
  const auto n_clients = static_cast<std::uint64_t>(state.range(0));
  vod::Assignment current;
  for (std::uint64_t c = 0; c < n_clients; ++c) {
    current[c] = static_cast<net::NodeId>(c % 7);  // node 6 will be "dead"
  }
  const std::vector<net::NodeId> servers{0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    auto a = vod::rebalance(current, servers);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_clients));
}
BENCHMARK(BM_Rebalance)->Arg(10)->Arg(100)->Arg(1000);

// ---- GCS end-to-end (inside the simulator) ----------------------------------

namespace {

struct GcsBench {
  sim::Scheduler sched;
  util::Rng rng{42};
  net::Network net{sched, rng};
  gcs::GcsConfig cfg;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;

  explicit GcsBench(int n) {
    net.set_default_quality(net::lan_quality());
    for (int i = 0; i < n; ++i) {
      cfg.peers.push_back(net.add_host("h" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      daemons.push_back(std::make_unique<gcs::Daemon>(
          sched, net, cfg.peers[i], cfg));
    }
    sched.run_for(sim::sec(3.0));
  }
};

}  // namespace

static void BM_GcsOrderedMulticast(benchmark::State& state) {
  GcsBench bench(static_cast<int>(state.range(0)));
  int received = 0;
  gcs::GroupCallbacks cbs{
      [&](const gcs::GcsEndpoint&, std::span<const std::byte>) {
        ++received;
      },
      nullptr};
  std::vector<std::unique_ptr<gcs::GroupMember>> members;
  for (auto& d : bench.daemons) {
    members.push_back(d->join("bench", gcs::GroupCallbacks{cbs}));
  }
  bench.sched.run_for(sim::sec(1.0));
  util::Bytes payload(64, std::byte{7});
  for (auto _ : state) {
    members[0]->send(payload);
    bench.sched.run_for(sim::msec(50));  // deliver everywhere
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["deliveries"] =
      benchmark::Counter(static_cast<double>(received));
}
BENCHMARK(BM_GcsOrderedMulticast)->Arg(2)->Arg(4)->Arg(8);

static void BM_GcsViewChangeAfterCrash(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    GcsBench bench(3);
    state.ResumeTiming();
    bench.net.crash_host(bench.cfg.peers[2]);
    // Run until the survivors converge on a 2-member view.
    while (bench.daemons[0]->view().members.size() != 2 ||
           bench.daemons[0]->blocked()) {
      bench.sched.run_for(sim::msec(10));
    }
    benchmark::DoNotOptimize(bench.daemons[0]->view());
  }
}
BENCHMARK(BM_GcsViewChangeAfterCrash)->Unit(benchmark::kMillisecond);

// ---- simulated network ------------------------------------------------------

static void BM_NetworkDatagramDelivery(benchmark::State& state) {
  sim::Scheduler sched;
  util::Rng rng(1);
  net::Network net(sched, rng);
  net.set_default_quality(net::lan_quality());
  const net::NodeId a = net.add_host("a");
  const net::NodeId b = net.add_host("b");
  auto sa = net.bind(a, 1, nullptr);
  int got = 0;
  auto sb = net.bind(
      b, 2, [&](const net::Endpoint&, std::span<const std::byte>) { ++got; });
  util::Bytes payload(32, std::byte{1});
  for (auto _ : state) {
    sa->send({b, 2}, payload, 5800);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDatagramDelivery);

// Custom main instead of BENCHMARK_MAIN(): with FTVOD_BENCH_SMOKE set (the
// bench_smoke CTest target), cap per-benchmark measuring time so the whole
// binary finishes in well under two seconds. Numbers from a smoke run are
// not meaningful.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char min_time[] = "--benchmark_min_time=0.01";
  const char* smoke = std::getenv("FTVOD_BENCH_SMOKE");
  if (smoke != nullptr && *smoke != '\0' && std::strcmp(smoke, "0") != 0) {
    args.push_back(min_time);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
