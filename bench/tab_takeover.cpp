// Reproduces the takeover-time analysis of §4.2: the irregularity period is
// at most the synchronization skew plus the takeover time; the prototype
// measured ~0.5 s average takeover on a LAN with a 0.5 s sync period, and
// sized the buffers (2.4 s, low water mark covering ~1.7 s) accordingly.
//
// We sweep the failure-detection timeout and measure: takeover time (crash
// -> first frame from the new server), the irregularity period (last frame
// from the dead server -> first *new* frame), and the client impact.
#include <iostream>

#include "metrics/report.hpp"
#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

struct Outcome {
  double takeover_s = -1;     // crash -> takeover decision at the survivor
  double irregularity_s = -1; // crash -> buffers growing again
  std::uint64_t skipped = 0;
  std::uint64_t starvation = 0;
  bool recovered = false;
};

Outcome run(sim::Duration suspect_timeout, std::uint64_t seed) {
  Deployment dep(seed);
  dep.gcs_config().suspect_timeout = suspect_timeout;
  const net::NodeId s0 = dep.add_host("s0");
  const net::NodeId s1 = dep.add_host("s1");
  const net::NodeId c0 = dep.add_host("c0");
  auto movie = mpeg::Movie::synthetic("m", 240.0);
  dep.start_server(s0).server->add_movie(movie);
  dep.start_server(s1).server->add_movie(movie);
  auto& client = *dep.start_client(c0).client;
  dep.run_for(sim::sec(2.0));
  client.watch("m");
  dep.run_for(sim::sec(25.0));

  VodServer* victim = nullptr;
  VodServer* survivor = nullptr;
  for (auto& sn : dep.servers()) {
    if (sn->server->serves(client.client_id())) {
      victim = sn->server.get();
    } else {
      survivor = sn->server.get();
    }
  }
  if (victim == nullptr || survivor == nullptr) return {};

  const auto skipped_before = client.counters().skipped;
  const auto starve_before = client.counters().starvation_ticks;
  const sim::Time crash_at = dep.scheduler().now();
  dep.crash(victim->node());

  Outcome out;
  sim::Time takeover_at = -1;
  sim::Time refill_at = -1;
  std::size_t min_total = client.buffers()->total_frames();
  while (dep.scheduler().now() - crash_at < sim::sec(15.0)) {
    dep.run_for(sim::msec(20));
    if (takeover_at < 0 && survivor->serves(client.client_id())) {
      takeover_at = dep.scheduler().now();
    }
    const std::size_t total = client.buffers()->total_frames();
    if (total < min_total) {
      min_total = total;
    } else if (refill_at < 0 && takeover_at > 0 &&
               total > min_total + 5) {
      refill_at = dep.scheduler().now();
    }
  }
  out.recovered = takeover_at > 0;
  out.takeover_s = takeover_at > 0 ? sim::to_sec(takeover_at - crash_at) : -1;
  out.irregularity_s = refill_at > 0 ? sim::to_sec(refill_at - crash_at) : -1;
  out.skipped = client.counters().skipped - skipped_before;
  out.starvation = client.counters().starvation_ticks - starve_before;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Takeover time vs failure-detection timeout (§4.2) ===\n"
            << "Paper (LAN): takeover ~0.5 s average; irregularity <= sync\n"
            << "skew (0.5 s) + takeover; buffers sized for ~1.7 s at the\n"
            << "low water mark. Averages over 3 seeds.\n\n";

  metrics::Table table({"fd timeout (ms)", "takeover (s)",
                        "irregularity (s)", "skipped", "starvation ticks",
                        "smooth?"});
  bool default_ok = false;
  for (sim::Duration timeout :
       {sim::msec(200), sim::msec(400), sim::msec(800), sim::msec(1500),
        sim::msec(2500)}) {
    double takeover = 0, irregularity = 0;
    std::uint64_t skipped = 0, starve = 0;
    int ok = 0;
    const int kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Outcome o = run(timeout, seed * 7 + 1);
      if (!o.recovered) continue;
      ++ok;
      takeover += o.takeover_s;
      irregularity += std::max(o.irregularity_s, 0.0);
      skipped += o.skipped;
      starve += o.starvation;
    }
    if (ok == 0) continue;
    takeover /= ok;
    irregularity /= ok;
    const bool smooth = starve == 0;
    table.add_row({std::to_string(timeout / 1000),
                   metrics::Table::num(takeover, 2),
                   metrics::Table::num(irregularity, 2),
                   std::to_string(skipped / ok),
                   std::to_string(starve / ok), smooth ? "yes" : "NO"});
    if (timeout == sim::msec(400) && smooth && takeover < 1.0) {
      default_ok = true;
    }
  }
  table.print(std::cout);

  std::cout << "\nbuffers hold ~2.4 s of video; the low water mark covers "
               "~1.7 s of\nirregularity — timeouts whose irregularity "
               "exceeds that starve the display.\n";
  std::cout << (default_ok ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "default timeout gives a ~0.5 s takeover with a smooth "
               "display (paper's result)\n";
  return 0;
}
