// Ablation (§4.2): the gap between the low and high water marks must be
// "large enough to allow the flow control algorithm to keep the buffer
// occupancy in this range, yet not larger than needed"; the margin above
// the high water mark avoids overflow. We sweep the marks and measure
// steady-state behaviour and overflow discards.
#include <iostream>

#include "metrics/report.hpp"
#include "scenario.hpp"

using namespace ftvod;
using namespace ftvod::vod;

int main() {
  std::cout << "=== Ablation: water-mark placement ===\n"
            << "60 s steady playback (no failures). Paper: low=73%, "
               "high=88%.\n\n";

  metrics::Table table({"low", "high", "mean occ", "occ stddev",
                        "overflow discards", "flow msgs/s"});
  double paper_overflow = -1;
  double tight_overflow = -1;
  for (auto [low, high] : std::vector<std::pair<double, double>>{
           {0.50, 0.95}, {0.60, 0.92}, {0.73, 0.88},  // paper
           {0.78, 0.85}, {0.85, 0.97}, {0.45, 0.60}}) {
    bench::ScenarioOptions opt;
    opt.params.low_water_frac = low;
    opt.params.high_water_frac = high;
    opt.duration_s = 60.0;
    opt.crash_at_s.reset();
    opt.load_balance_at_s.reset();
    const bench::ScenarioResult r = bench::run_migration_scenario(opt);

    // Occupancy statistics after the fill phase.
    const auto* occ = r.recorder.series("occupancy");
    const auto window = occ->window(sim::sec(25.0), sim::sec(60.0));
    const auto stats = metrics::TimeSeries::summarize(window);
    const double flow_rate =
        static_cast<double>(r.control.increases_sent +
                            r.control.decreases_sent) /
        opt.duration_s;
    table.add_row({metrics::Table::num(low * 100, 0) + "%",
                   metrics::Table::num(high * 100, 0) + "%",
                   metrics::Table::num(stats.mean * 100, 1) + "%",
                   metrics::Table::num(stats.stddev * 100, 1) + "%",
                   std::to_string(r.final_counters.overflow_discards),
                   metrics::Table::num(flow_rate, 1)});
    if (low == 0.73) paper_overflow = r.final_counters.overflow_discards;
    if (low == 0.85) tight_overflow = r.final_counters.overflow_discards;
  }
  table.print(std::cout);
  std::cout << '\n'
            << ((paper_overflow >= 0 && paper_overflow <= tight_overflow)
                    ? "  [shape OK]   "
                    : "  [SHAPE FAIL] ")
            << "the paper's 73/88 marks leave enough top margin: pushing the"
               " marks\n               toward the top does not reduce "
               "overflow below the paper setting\n";
  return 0;
}
