// Reproduces §4.3 "Adjusting the Quality of the Video Material": a client
// whose capability is below the movie's frame rate asks for fewer frames
// per second; the server then transmits all I (full image) frames and as
// many incremental frames as the capability allows.
#include <iostream>

#include "metrics/report.hpp"
#include "mpeg/quality.hpp"
#include "vod/service.hpp"

using namespace ftvod;
using namespace ftvod::vod;

namespace {

struct Outcome {
  double delivered_fps = 0;
  double i_frame_share_sent = 0;   // fraction of sent frames that are I
  bool all_i_frames_sent = true;   // filter property
};

Outcome run(double capability_fps) {
  auto movie = mpeg::Movie::synthetic("m", 300.0);
  Outcome out;

  // Filter property: every I frame passes.
  mpeg::QualityFilter filter(*movie, capability_fps);
  std::uint64_t sent = 0, i_sent = 0;
  for (std::uint64_t i = 0; i < 1200; ++i) {
    const bool send = filter.should_send(i);
    if (movie->frame_type(i) == mpeg::FrameType::kI && !send) {
      out.all_i_frames_sent = false;
    }
    if (send) {
      ++sent;
      if (movie->frame_type(i) == mpeg::FrameType::kI) ++i_sent;
    }
  }
  out.i_frame_share_sent = static_cast<double>(i_sent) / sent;

  // End-to-end delivered rate.
  Deployment dep(42);
  const net::NodeId s0 = dep.add_host("s0");
  const net::NodeId c0 = dep.add_host("c0");
  dep.start_server(s0).server->add_movie(movie);
  auto& client = *dep.start_client(c0).client;
  dep.run_for(sim::sec(2.0));
  client.watch("m", capability_fps);
  dep.run_for(sim::sec(20.0));
  const auto recv0 = client.counters().received;
  dep.run_for(sim::sec(10.0));
  out.delivered_fps =
      static_cast<double>(client.counters().received - recv0) / 10.0;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Quality adaptation (§4.3) ===\n"
            << "30 fps MPEG, GOP IBBPBBPBBPBB. A capability-limited client\n"
            << "receives all I frames plus a deterministic subset of P/B.\n\n";

  metrics::Table table({"capability (fps)", "delivered (fps)",
                        "I frames always sent", "I share of sent",
                        "native I share"});
  bool all_ok = true;
  for (double fps : {2.5, 5.0, 10.0, 15.0, 20.0, 30.0}) {
    const Outcome o = run(fps);
    all_ok = all_ok && o.all_i_frames_sent &&
             std::abs(o.delivered_fps - fps) < std::max(2.0, fps * 0.25);
    table.add_row({metrics::Table::num(fps, 1),
                   metrics::Table::num(o.delivered_fps, 1),
                   o.all_i_frames_sent ? "yes" : "NO",
                   metrics::Table::num(o.i_frame_share_sent * 100, 0) + "%",
                   metrics::Table::num(100.0 / 12.0, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << '\n'
            << (all_ok ? "  [shape OK]   " : "  [SHAPE FAIL] ")
            << "delivered rate tracks the capability and I frames are never "
               "skipped\n";
  return 0;
}
