// Poisson session churn over a Zipf catalog: the city-scale demand model.
// Clients arrive as a Poisson process (exponential inter-arrival times),
// pick a title from the generated catalog's popularity distribution, watch
// for an exponentially distributed hold time, and leave. A scriptable
// flash-crowd boost concentrates arrivals on one title for a window — the
// stimulus the placement controller has to answer with replica adds.
//
// The driver owns its own Rng: the workload trajectory is a pure function
// of (seed, config) regardless of what the network layer draws, so the
// statistical tests can assert exponential inter-arrivals and bit-identical
// reruns without pinning the whole simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpeg/catalog_gen.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "vod/client.hpp"

namespace ftvod::workload {

struct WorkloadConfig {
  /// Poisson arrival rate, sessions per (virtual) second.
  double arrival_rate_per_s = 10.0;
  /// Mean of the exponential session hold time, seconds.
  double mean_hold_s = 120.0;
  std::uint64_t seed = 1;
};

struct WorkloadStats {
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  /// Arrivals skipped because every pooled client was busy.
  std::uint64_t rejected = 0;
};

class SessionWorkload {
 public:
  SessionWorkload(sim::Scheduler& sched, const mpeg::GeneratedCatalog& catalog,
                  WorkloadConfig cfg);

  /// Hands a client to the pool. Clients are re-used across sessions
  /// (watch() fully resets them), so the pool size bounds concurrency.
  void add_client(vod::VodClient* client);

  /// Starts the arrival process.
  void start();
  /// Stops new arrivals and cancels scheduled departures; active clients
  /// are stopped.
  void stop();

  /// Multiplies one title's selection probability so that it attracts
  /// roughly `share` of all arrivals until `until` — a flash crowd.
  void flash_crowd(std::size_t rank, double share, sim::Time until);

  [[nodiscard]] std::size_t active() const { return active_count_; }
  [[nodiscard]] const WorkloadStats& stats() const { return stats_; }
  /// Active sessions per title rank (the placement demand signal).
  [[nodiscard]] const std::vector<std::size_t>& active_by_rank() const {
    return active_by_rank_;
  }
  /// Demand-source adapter for PlacementController::set_demand_source.
  void fill_demand(std::map<std::string, std::size_t>& out) const;
  /// Every arrival's virtual time, for the inter-arrival statistics test.
  [[nodiscard]] const std::vector<sim::Time>& arrival_times() const {
    return arrival_times_;
  }

 private:
  struct Slot {
    vod::VodClient* client = nullptr;
    std::size_t rank = 0;
    bool busy = false;
    sim::Scheduler::EventHandle departure;
  };

  void schedule_next_arrival();
  void on_arrival();
  void depart(std::size_t slot_index);
  [[nodiscard]] std::size_t pick_rank();

  sim::Scheduler* sched_;
  const mpeg::GeneratedCatalog* catalog_;
  WorkloadConfig cfg_;
  util::Rng rng_;

  std::vector<Slot> slots_;
  std::vector<std::size_t> idle_;  // indices into slots_, LIFO reuse
  std::size_t active_count_ = 0;
  std::vector<std::size_t> active_by_rank_;
  std::vector<sim::Time> arrival_times_;
  sim::Scheduler::EventHandle arrival_event_;
  bool running_ = false;

  std::size_t boost_rank_ = 0;
  double boost_share_ = 0.0;
  sim::Time boost_until_ = 0;

  WorkloadStats stats_;
};

}  // namespace ftvod::workload
