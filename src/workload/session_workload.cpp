#include "workload/session_workload.hpp"

#include "util/log.hpp"

namespace ftvod::workload {

namespace {
constexpr std::string_view kLog = "workload";
}

SessionWorkload::SessionWorkload(sim::Scheduler& sched,
                                 const mpeg::GeneratedCatalog& catalog,
                                 WorkloadConfig cfg)
    : sched_(&sched),
      catalog_(&catalog),
      cfg_(cfg),
      rng_(cfg.seed ^ 0xc2b2ae3d27d4eb4full),
      active_by_rank_(catalog.size(), 0) {}

void SessionWorkload::add_client(vod::VodClient* client) {
  Slot s;
  s.client = client;
  slots_.push_back(s);
  idle_.push_back(slots_.size() - 1);
}

void SessionWorkload::start() {
  if (running_) return;
  running_ = true;
  schedule_next_arrival();
}

void SessionWorkload::stop() {
  if (!running_) return;
  running_ = false;
  arrival_event_.cancel();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].busy) depart(i);
  }
}

void SessionWorkload::flash_crowd(std::size_t rank, double share,
                                  sim::Time until) {
  boost_rank_ = rank;
  boost_share_ = share;
  boost_until_ = until;
  util::log_info(kLog, "flash crowd on rank ", rank, " (share ", share,
                 ") until t=", static_cast<double>(until) / 1e6, "s");
}

void SessionWorkload::fill_demand(
    std::map<std::string, std::size_t>& out) const {
  for (std::size_t rank = 0; rank < active_by_rank_.size(); ++rank) {
    if (active_by_rank_[rank] > 0) {
      out[catalog_->entry(rank).movie->name()] = active_by_rank_[rank];
    }
  }
}

void SessionWorkload::schedule_next_arrival() {
  const double gap_s = rng_.exponential(1.0 / cfg_.arrival_rate_per_s);
  arrival_event_ = sched_->after(
      std::max<sim::Duration>(static_cast<sim::Duration>(gap_s * 1e6), 1),
      [this] { on_arrival(); });
}

std::size_t SessionWorkload::pick_rank() {
  if (boost_share_ > 0.0 && sched_->now() < boost_until_ &&
      rng_.bernoulli(boost_share_)) {
    return boost_rank_;
  }
  return catalog_->sample_rank(rng_.uniform());
}

void SessionWorkload::on_arrival() {
  if (!running_) return;
  schedule_next_arrival();
  ++stats_.arrivals;
  arrival_times_.push_back(sched_->now());
  if (idle_.empty()) {
    ++stats_.rejected;
    return;
  }
  const std::size_t idx = idle_.back();
  idle_.pop_back();
  Slot& s = slots_[idx];
  s.busy = true;
  s.rank = pick_rank();
  ++active_count_;
  ++active_by_rank_[s.rank];
  s.client->watch(catalog_->entry(s.rank).movie->name());

  const double hold_s = rng_.exponential(cfg_.mean_hold_s);
  s.departure = sched_->after(
      std::max<sim::Duration>(static_cast<sim::Duration>(hold_s * 1e6), 1),
      [this, idx] { depart(idx); });
}

void SessionWorkload::depart(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  if (!s.busy) return;
  s.departure.cancel();
  s.busy = false;
  s.client->stop();
  ++stats_.departures;
  --active_count_;
  --active_by_rank_[s.rank];
  idle_.push_back(slot_index);
}

}  // namespace ftvod::workload
