// Discrete-event scheduler: a priority queue of (time, callback) events with
// deterministic FIFO ordering among same-time events.
//
// Storage is a slab: callbacks live in recycled slots addressed by
// {index, generation} handles, and the heap orders 24-byte entries, so
// steady-state scheduling (arm, fire, cancel, re-arm) performs zero heap
// allocations once the slab and heap vectors reach their high-water
// capacity. Cancellation leaves a tombstone in the heap; tombstones are
// popped lazily and never counted as executed events nor allowed to drag
// the clock past a run_until() horizon.
//
// In front of the heap sits a single-level timer wheel (1024 buckets of
// 2^kWheelShift µs each): events landing within the wheel's span are staged
// in their bucket as a bare slot index and only promoted into the heap when
// the drain cursor reaches their bucket — which happens before any event at
// or past that bucket's start time executes. Every slot stores its exact
// (t, seq), so promotion re-establishes the precise global order and the
// observable execution sequence is bit-identical with the wheel on or off.
// The win is O(1) staging for the short-horizon timers that dominate a
// simulation tick (frame sends, watchdogs, sync ticks) instead of O(log n)
// heap traffic, with the heap holding only far-future and drained-due
// entries. Cancelled wheel entries are skipped and recycled at drain time.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/small_function.hpp"

namespace ftvod::sim {

class Scheduler {
 public:
  /// Inline capacity covers every hot-path lambda in the library (the
  /// largest is the network's delivery closure at ~40 bytes); anything
  /// bigger degrades gracefully to one heap allocation.
  using Callback = util::SmallFunction<void(), 64>;

  /// Cancellation token for a scheduled event. Copyable; cancelling any copy
  /// cancels the event. A default-constructed handle is inert. Handles must
  /// not outlive the Scheduler that issued them.
  class EventHandle {
   public:
    EventHandle() = default;
    void cancel();
    /// True when the event is still scheduled to fire.
    [[nodiscard]] bool pending() const;

   private:
    friend class Scheduler;
    EventHandle(Scheduler* sched, std::uint32_t index, std::uint32_t gen)
        : sched_(sched), index_(index), generation_(gen) {}
    Scheduler* sched_ = nullptr;
    std::uint32_t index_ = 0;
    std::uint32_t generation_ = 0;
  };

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules cb at absolute time t (clamped to now).
  EventHandle at(Time t, Callback cb);
  /// Schedules cb after a relative delay (clamped to 0).
  EventHandle after(Duration d, Callback cb);

  /// Runs the next event. Returns false when the queue is empty.
  bool step();
  /// Runs until the queue is empty; returns number of events run.
  std::size_t run();
  /// Runs all events with time <= t, then advances the clock to t.
  std::size_t run_until(Time t);
  /// Runs all events in the next d microseconds of virtual time.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Number of live (non-cancelled) scheduled events.
  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Toggles the timer-wheel front end. Execution order is identical either
  /// way; the wheel only changes the cost profile. Disabling flushes every
  /// staged entry into the heap. Intended for before/after benchmarking.
  void set_wheel_enabled(bool on);
  [[nodiscard]] bool wheel_enabled() const { return wheel_enabled_; }
  /// Entries currently staged in wheel buckets (including tombstones);
  /// exposed for tests and benchmarks.
  [[nodiscard]] std::size_t wheel_staged() const { return wheel_total_; }
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  /// Heap fan-out; see the note above heap_push() in scheduler.cpp.
  static constexpr std::size_t kArity = 4;
  /// Wheel bucket granularity: 2^10 µs ≈ 1 ms. With 1024 buckets the wheel
  /// spans ~1.05 s of virtual time — enough to stage display ticks (33 ms),
  /// watchdogs (100 ms), heartbeats (75 ms) and sync ticks (500 ms).
  static constexpr std::uint64_t kWheelShift = 10;
  static constexpr std::uint64_t kWheelBuckets = 1024;

  struct Slot {
    Callback cb;
    Time t = 0;          // exact fire time, kept for wheel promotion
    std::uint64_t seq = 0;  // exact schedule order, ditto
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNil;
    bool cancelled = false;
    bool in_use = false;
  };

  struct HeapEntry {
    Time t;
    std::uint64_t seq;  // tie-break: same-time events run in schedule order
    std::uint32_t slot;
  };

  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void heap_push(HeapEntry e);
  HeapEntry heap_pop();
  /// Pops tombstones (cancelled events) off the heap top.
  void drop_cancelled();
  /// Stages a freshly filled slot in the wheel or pushes it into the heap.
  void stage(std::uint32_t index);
  /// Establishes the invariant that the heap top (if any) is the global
  /// minimum: drains every wheel bucket whose start time could still hide
  /// an earlier event, then strips tombstones.
  void prepare_next();
  [[nodiscard]] static Time bucket_start(std::uint64_t bucket) {
    return static_cast<Time>(bucket << kWheelShift);
  }

  [[nodiscard]] bool slot_pending(std::uint32_t index,
                                  std::uint32_t gen) const {
    return index < slots_.size() && slots_[index].generation == gen &&
           slots_[index].in_use && !slots_[index].cancelled;
  }
  void cancel_slot(std::uint32_t index, std::uint32_t gen);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::vector<HeapEntry> heap_;

  bool wheel_enabled_ = true;
  /// Absolute bucket index of the next undrained bucket. Every staged entry
  /// lives at an absolute bucket >= cursor (earlier buckets were drained)
  /// and < cursor-at-insert + kWheelBuckets, so residues are unique.
  std::uint64_t wheel_cursor_ = 0;
  std::size_t wheel_total_ = 0;
  std::vector<std::vector<std::uint32_t>> wheel_ =
      std::vector<std::vector<std::uint32_t>>(kWheelBuckets);
};

inline void Scheduler::EventHandle::cancel() {
  if (sched_ != nullptr) sched_->cancel_slot(index_, generation_);
}

inline bool Scheduler::EventHandle::pending() const {
  return sched_ != nullptr && sched_->slot_pending(index_, generation_);
}

}  // namespace ftvod::sim
