// Discrete-event scheduler: a priority queue of (time, callback) events with
// deterministic FIFO ordering among same-time events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ftvod::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Cancellation token for a scheduled event. Copyable; cancelling any copy
  /// cancels the event. A default-constructed handle is inert.
  class EventHandle {
   public:
    EventHandle() = default;
    void cancel() {
      if (cancelled_) *cancelled_ = true;
    }
    /// True when the event is still scheduled to fire.
    [[nodiscard]] bool pending() const { return cancelled_ && !*cancelled_; }

   private:
    friend class Scheduler;
    explicit EventHandle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}
    std::shared_ptr<bool> cancelled_;
  };

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules cb at absolute time t (clamped to now).
  EventHandle at(Time t, Callback cb);
  /// Schedules cb after a relative delay (clamped to 0).
  EventHandle after(Duration d, Callback cb);

  /// Runs the next event. Returns false when the queue is empty.
  bool step();
  /// Runs until the queue is empty; returns number of events run.
  std::size_t run();
  /// Runs all events with time <= t, then advances the clock to t.
  std::size_t run_until(Time t);
  /// Runs all events in the next d microseconds of virtual time.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // tie-break: same-time events run in schedule order
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ftvod::sim
