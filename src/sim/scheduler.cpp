#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace ftvod::sim {

Scheduler::Scheduler() {
  // Seed every bucket with a little capacity up front so staging an event
  // in a never-touched bucket does not allocate mid-run; a loaded bucket
  // grows past this once and then holds its high-water capacity, exactly
  // like the heap and slab vectors.
  for (std::vector<std::uint32_t>& bucket : wheel_) bucket.reserve(8);
}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNil;
    slots_[idx].in_use = true;
    slots_[idx].cancelled = false;
    return idx;
  }
  slots_.emplace_back();
  slots_.back().in_use = true;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.cb.reset();
  ++s.generation;  // invalidates every outstanding handle to this slot
  s.in_use = false;
  s.cancelled = false;
  s.next_free = free_head_;
  free_head_ = index;
}

// The heap is kArity-ary rather than binary: workloads with many far-future
// events (timeout decoys, cancelled-timer tombstones) keep hundreds of
// thousands of entries resident, and a wider node roughly halves the levels
// each push/pop touches — fewer cache misses on a heap that outgrows L2.
// Sifting moves a hole instead of swapping, so each level costs one copy.

void Scheduler::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);  // placeholder; the hole ends up holding e below
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

Scheduler::HeapEntry Scheduler::heap_pop() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    while (true) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (later(heap_[best], heap_[c])) best = c;
      }
      if (!later(last, heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Scheduler::drop_cancelled() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    release_slot(heap_pop().slot);
  }
}

void Scheduler::cancel_slot(std::uint32_t index, std::uint32_t gen) {
  if (!slot_pending(index, gen)) return;
  Slot& s = slots_[index];
  s.cancelled = true;
  s.cb.reset();  // release captured resources now; the heap entry lingers
  --live_;
}

void Scheduler::stage(std::uint32_t index) {
  const Slot& s = slots_[index];
  if (wheel_enabled_) {
    if (wheel_total_ == 0) {
      // Empty wheel: snap the cursor forward so the span starts at "now"
      // instead of wherever the last drain left it.
      const std::uint64_t here = static_cast<std::uint64_t>(now_) >> kWheelShift;
      if (here > wheel_cursor_) wheel_cursor_ = here;
    }
    const std::uint64_t b = static_cast<std::uint64_t>(s.t) >> kWheelShift;
    if (b >= wheel_cursor_ && b < wheel_cursor_ + kWheelBuckets) {
      wheel_[b & (kWheelBuckets - 1)].push_back(index);
      ++wheel_total_;
      return;
    }
  }
  // Past the cursor (fires this bucket) or beyond the span: straight to
  // the heap. Far-future events never cascade — one move, ever.
  heap_push(HeapEntry{s.t, s.seq, index});
}

void Scheduler::prepare_next() {
  drop_cancelled();
  // Heap top at time T is safe to run only once every bucket starting at or
  // before T is drained: an undrained bucket b holds events with
  // t >= bucket_start(b), so bucket_start(cursor) > T proves nothing staged
  // can precede T. With an empty heap, keep draining until something lands.
  while (wheel_total_ > 0 &&
         (heap_.empty() || bucket_start(wheel_cursor_) <= heap_.front().t)) {
    std::vector<std::uint32_t>& bucket =
        wheel_[wheel_cursor_ & (kWheelBuckets - 1)];
    ++wheel_cursor_;
    if (bucket.empty()) continue;
    for (const std::uint32_t idx : bucket) {
      --wheel_total_;
      if (slots_[idx].cancelled) {
        release_slot(idx);
      } else {
        heap_push(HeapEntry{slots_[idx].t, slots_[idx].seq, idx});
      }
    }
    bucket.clear();  // keeps capacity: steady state stays allocation-free
    drop_cancelled();
  }
}

void Scheduler::set_wheel_enabled(bool on) {
  if (on == wheel_enabled_) return;
  wheel_enabled_ = on;
  if (on) return;
  for (std::vector<std::uint32_t>& bucket : wheel_) {
    for (const std::uint32_t idx : bucket) {
      if (slots_[idx].cancelled) {
        release_slot(idx);
      } else {
        heap_push(HeapEntry{slots_[idx].t, slots_[idx].seq, idx});
      }
    }
    bucket.clear();
  }
  wheel_total_ = 0;
}

Scheduler::EventHandle Scheduler::at(Time t, Callback cb) {
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  s.t = std::max(t, now_);
  s.seq = next_seq_++;
  stage(idx);
  ++live_;
  return EventHandle{this, idx, slots_[idx].generation};
}

Scheduler::EventHandle Scheduler::after(Duration d, Callback cb) {
  return at(now_ + std::max<Duration>(d, 0), std::move(cb));
}

bool Scheduler::step() {
  prepare_next();
  if (heap_.empty()) return false;
  const HeapEntry e = heap_pop();
  // Move the callback out and retire the slot *before* invoking: the
  // callback may reschedule into the same slot, and handles must already
  // read "not pending" while it runs (it is no longer scheduled).
  Callback cb = std::move(slots_[e.slot].cb);
  release_slot(e.slot);
  --live_;
  now_ = e.t;
  ++executed_;
  cb();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(Time t) {
  std::size_t n = 0;
  while (true) {
    // Tombstones must not gate the loop: a cancelled far-future event on
    // top of the heap neither blocks earlier live events nor drags the
    // clock past t when step() skips it. prepare_next() also guarantees
    // nothing staged in the wheel could still precede the heap top.
    prepare_next();
    if (heap_.empty() || heap_.front().t > t) break;
    if (step()) ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

}  // namespace ftvod::sim
