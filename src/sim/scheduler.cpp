#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace ftvod::sim {

Scheduler::EventHandle Scheduler::at(Time t, Callback cb) {
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(cb), cancelled});
  return EventHandle{std::move(cancelled)};
}

Scheduler::EventHandle Scheduler::after(Duration d, Callback cb) {
  return at(now_ + std::max<Duration>(d, 0), std::move(cb));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    *ev.cancelled = true;  // marks it no longer pending
    now_ = ev.t;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(Time t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    if (step()) ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

}  // namespace ftvod::sim
