// Virtual time. The whole system runs on one discrete-event clock measured
// in integer microseconds since simulation start.
#pragma once

#include <cstdint>

namespace ftvod::sim {

using Time = std::int64_t;      // absolute, microseconds
using Duration = std::int64_t;  // relative, microseconds

constexpr Duration usec(std::int64_t v) { return v; }
constexpr Duration msec(std::int64_t v) { return v * 1000; }
constexpr Duration sec(double v) {
  return static_cast<Duration>(v * 1'000'000.0);
}
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_msec(Time t) { return static_cast<double>(t) / 1e3; }

}  // namespace ftvod::sim
