// Timers on top of the event scheduler. Both kinds cancel themselves on
// destruction, so owning objects can hold them by value.
#pragma once

#include <functional>

#include "sim/scheduler.hpp"

namespace ftvod::sim {

/// Fires once after a delay. Re-arming replaces the previous deadline.
class OneShotTimer {
 public:
  explicit OneShotTimer(Scheduler& sched) : sched_(&sched) {}
  ~OneShotTimer() { cancel(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  void arm(Duration delay, Scheduler::Callback fn);
  void cancel() { handle_.cancel(); }
  [[nodiscard]] bool pending() const { return handle_.pending(); }

 private:
  Scheduler* sched_;
  Scheduler::EventHandle handle_;
};

/// Fires repeatedly every period. The period may be changed while running;
/// the new period takes effect after the next tick.
class PeriodicTimer {
 public:
  PeriodicTimer(Scheduler& sched, Duration period, std::function<void()> fn)
      : sched_(&sched), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// First tick after one period (or after `initial_delay` if given).
  void start();
  void start(Duration initial_delay);
  void stop() { handle_.cancel(); }
  [[nodiscard]] bool running() const { return handle_.pending(); }

  void set_period(Duration period) { period_ = period; }
  [[nodiscard]] Duration period() const { return period_; }

 private:
  void tick();

  Scheduler* sched_;
  Duration period_;
  std::function<void()> fn_;
  Scheduler::EventHandle handle_;
};

}  // namespace ftvod::sim
