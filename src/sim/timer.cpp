#include "sim/timer.hpp"

namespace ftvod::sim {

void OneShotTimer::arm(Duration delay, Scheduler::Callback fn) {
  cancel();
  handle_ = sched_->after(delay, std::move(fn));
}

void PeriodicTimer::start() { start(period_); }

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  handle_ = sched_->after(initial_delay, [this] { tick(); });
}

void PeriodicTimer::tick() {
  // Re-arm before invoking so the callback may call stop() or set_period().
  handle_ = sched_->after(period_, [this] { tick(); });
  fn_();
}

}  // namespace ftvod::sim
