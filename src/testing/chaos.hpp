// Deterministic chaos testing (the correctness backstop for the paper's
// headline claim that the service survives arbitrary crash/detach/restart
// sequences). A ChaosPlan is a pure function of (seed, options, topology):
// a time-ordered schedule of fault events — host crash, restart with
// recovery, network partition and heal, transient link-quality
// degradation, payload-damaging link corruption, GCS daemon pause/resume —
// with every fault bounded by a matching repair event. A ChaosInjector replays a plan through the
// deployment's own discrete-event scheduler, so an entire chaotic run is
// reproducible bit-for-bit from (deployment seed, plan seed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/quality.hpp"
#include "sim/scheduler.hpp"
#include "vod/service.hpp"

namespace ftvod::testing {

enum class ChaosEventKind : std::uint8_t {
  kCrash,         // fail-stop of a server host
  kRestart,       // reboot: restore host, fresh daemon + server, movies back
  kPartition,     // split the network into {group, everyone else}
  kHeal,          // remove the partition
  kDegradeLink,   // transient loss/latency flap on one host pair
  kCorruptLink,   // transient bit-damage + loss-burst regime on a pair
  kRestoreLink,   // back to the default quality
  kPauseDaemon,   // SIGSTOP the server's GCS daemon
  kResumeDaemon,  // SIGCONT it
};

[[nodiscard]] std::string_view to_string(ChaosEventKind k);

struct ChaosEvent {
  sim::Time at = 0;
  ChaosEventKind kind = ChaosEventKind::kCrash;
  net::NodeId a = net::kInvalidNode;  // primary target
  net::NodeId b = net::kInvalidNode;  // link peer for degrade/restore
  std::vector<net::NodeId> component;  // one side of a partition
  net::LinkQuality quality{};          // degraded quality
};

struct ChaosOptions {
  /// Faults are drawn in [start, end); repair events may land later.
  sim::Time start = sim::sec(8.0);
  sim::Time end = sim::sec(60.0);
  /// Gap between consecutive fault injections: max(min_gap, Exp(mean_gap)).
  sim::Duration mean_gap = sim::sec(5.0);
  sim::Duration min_gap = sim::msec(800);

  /// Nominal fault durations; each drawn duration is jittered ±25 %.
  sim::Duration crash_downtime = sim::sec(5.0);
  sim::Duration partition_length = sim::sec(2.5);
  sim::Duration degrade_length = sim::sec(3.0);
  sim::Duration corrupt_length = sim::sec(3.0);
  sim::Duration pause_length = sim::sec(2.0);

  /// Relative likelihood of each fault class (0 disables the class).
  /// weight_corrupt defaults to 0 so plans generated before the hostile
  /// fault model existed stay byte-identical for the same seed.
  double weight_crash = 1.0;
  double weight_partition = 1.0;
  double weight_degrade = 1.0;
  double weight_corrupt = 0.0;
  double weight_pause = 1.0;

  /// Crashes and pauses never reduce the healthy-server count below this.
  std::size_t min_live_servers = 1;
};

class ChaosPlan {
 public:
  /// Generates the schedule. `server_nodes` are crash/restart/pause
  /// targets; partitions and link flaps draw from `server_nodes` plus
  /// `client_nodes`. Same arguments -> identical plan, always.
  static ChaosPlan generate(std::uint64_t seed, const ChaosOptions& opts,
                            const std::vector<net::NodeId>& server_nodes,
                            const std::vector<net::NodeId>& client_nodes);

  /// A hand-scripted plan for directed integration tests (e.g. crash the
  /// same server twice). Events are sorted by time; ties keep input order.
  static ChaosPlan from_events(std::vector<ChaosEvent> events);

  [[nodiscard]] const std::vector<ChaosEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Human-readable event trace, one line per event — printed alongside a
  /// failing seed so any soak failure is reproducible from the log alone.
  [[nodiscard]] std::string describe() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<ChaosEvent> events_;
};

/// Replays a ChaosPlan against a live Deployment. arm() snapshots every
/// server's catalog (so a restart can re-add the movies, modelling bits
/// that survived on disk) and schedules all events.
class ChaosInjector {
 public:
  ChaosInjector(vod::Deployment& dep, ChaosPlan plan)
      : dep_(&dep), plan_(std::move(plan)) {}

  void arm();

  /// Overrides crash recovery: after restart_server() the delegate — not
  /// the built-in catalog snapshot — restores the rebooted server's movies.
  /// A live placement controller must own this (its desired state may have
  /// moved replicas while the host was down; re-adding a stale snapshot
  /// would fight it), typically:
  ///   injector.set_restart_delegate([&](net::NodeId n, auto&) {
  ///     controller.handle_restart(n);
  ///   });
  void set_restart_delegate(
      std::function<void(net::NodeId, vod::Deployment::ServerNode&)> fn) {
    restart_delegate_ = std::move(fn);
  }

  [[nodiscard]] const ChaosPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t events_applied() const { return applied_; }

 private:
  void apply(const ChaosEvent& e);

  vod::Deployment* dep_;
  ChaosPlan plan_;
  std::size_t applied_ = 0;
  std::map<net::NodeId, std::vector<std::shared_ptr<const mpeg::Movie>>>
      catalog_snapshot_;
  std::function<void(net::NodeId, vod::Deployment::ServerNode&)>
      restart_delegate_;
};

}  // namespace ftvod::testing
