#include "testing/chaos.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace ftvod::testing {

namespace {

constexpr std::string_view kLog = "chaos";

ChaosEvent make_event(sim::Time at, ChaosEventKind kind,
                      net::NodeId a = net::kInvalidNode,
                      net::NodeId b = net::kInvalidNode) {
  ChaosEvent e;
  e.at = at;
  e.kind = kind;
  e.a = a;
  e.b = b;
  return e;
}

}  // namespace

std::string_view to_string(ChaosEventKind k) {
  switch (k) {
    case ChaosEventKind::kCrash: return "crash";
    case ChaosEventKind::kRestart: return "restart";
    case ChaosEventKind::kPartition: return "partition";
    case ChaosEventKind::kHeal: return "heal";
    case ChaosEventKind::kDegradeLink: return "degrade-link";
    case ChaosEventKind::kCorruptLink: return "corrupt-link";
    case ChaosEventKind::kRestoreLink: return "restore-link";
    case ChaosEventKind::kPauseDaemon: return "pause-daemon";
    case ChaosEventKind::kResumeDaemon: return "resume-daemon";
  }
  return "?";
}

ChaosPlan ChaosPlan::generate(std::uint64_t seed, const ChaosOptions& opts,
                              const std::vector<net::NodeId>& server_nodes,
                              const std::vector<net::NodeId>& client_nodes) {
  ChaosPlan plan;
  plan.seed_ = seed;
  util::Rng rng(seed);

  std::vector<net::NodeId> all_nodes = server_nodes;
  all_nodes.insert(all_nodes.end(), client_nodes.begin(), client_nodes.end());

  // Open-fault bookkeeping so faults pair up and never pile onto the same
  // resource: a node is `down` until its restart fires, `paused` until the
  // resume, at most one partition is active, and each link flaps alone.
  std::map<net::NodeId, sim::Time> down_until;
  std::map<net::NodeId, sim::Time> paused_until;
  std::map<std::pair<net::NodeId, net::NodeId>, sim::Time> degraded_until;
  sim::Time partition_until = 0;

  const auto jittered = [&](sim::Duration d) {
    return std::max<sim::Duration>(
        1, static_cast<sim::Duration>(static_cast<double>(d) *
                                      rng.uniform(0.75, 1.25)));
  };
  const auto healthy_servers = [&](sim::Time t) {
    std::size_t n = 0;
    for (net::NodeId s : server_nodes) {
      const bool down = down_until.contains(s) && down_until[s] > t;
      const bool paused = paused_until.contains(s) && paused_until[s] > t;
      if (!down && !paused) ++n;
    }
    return n;
  };

  sim::Time t = opts.start;
  while (t < opts.end) {
    // Which classes are eligible right now?
    struct Choice {
      ChaosEventKind kind;
      double weight;
    };
    std::vector<Choice> choices;
    const bool can_shrink = healthy_servers(t) > opts.min_live_servers;
    if (opts.weight_crash > 0 && can_shrink) {
      choices.push_back({ChaosEventKind::kCrash, opts.weight_crash});
    }
    if (opts.weight_pause > 0 && can_shrink) {
      choices.push_back({ChaosEventKind::kPauseDaemon, opts.weight_pause});
    }
    if (opts.weight_partition > 0 && partition_until <= t &&
        all_nodes.size() >= 2) {
      choices.push_back({ChaosEventKind::kPartition, opts.weight_partition});
    }
    if (opts.weight_degrade > 0 && all_nodes.size() >= 2) {
      choices.push_back({ChaosEventKind::kDegradeLink, opts.weight_degrade});
    }
    if (opts.weight_corrupt > 0 && all_nodes.size() >= 2) {
      choices.push_back({ChaosEventKind::kCorruptLink, opts.weight_corrupt});
    }
    if (choices.empty()) {
      t += std::max<sim::Duration>(
          opts.min_gap,
          static_cast<sim::Duration>(
              rng.exponential(static_cast<double>(opts.mean_gap))));
      continue;
    }

    double total = 0;
    for (const Choice& c : choices) total += c.weight;
    double pick = rng.uniform(0.0, total);
    ChaosEventKind kind = choices.back().kind;
    for (const Choice& c : choices) {
      if (pick < c.weight) {
        kind = c.kind;
        break;
      }
      pick -= c.weight;
    }

    switch (kind) {
      case ChaosEventKind::kCrash: {
        // A healthy server dies and reboots after the downtime.
        std::vector<net::NodeId> targets;
        for (net::NodeId s : server_nodes) {
          const bool down = down_until.contains(s) && down_until[s] > t;
          const bool paused = paused_until.contains(s) && paused_until[s] > t;
          if (!down && !paused) targets.push_back(s);
        }
        const net::NodeId victim = targets[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(targets.size()) - 1))];
        const sim::Time up_at = t + jittered(opts.crash_downtime);
        down_until[victim] = up_at;
        plan.events_.push_back(make_event(t, ChaosEventKind::kCrash, victim));
        plan.events_.push_back(
            make_event(up_at, ChaosEventKind::kRestart, victim));
        break;
      }
      case ChaosEventKind::kPauseDaemon: {
        std::vector<net::NodeId> targets;
        for (net::NodeId s : server_nodes) {
          const bool down = down_until.contains(s) && down_until[s] > t;
          const bool paused = paused_until.contains(s) && paused_until[s] > t;
          if (!down && !paused) targets.push_back(s);
        }
        const net::NodeId victim = targets[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(targets.size()) - 1))];
        const sim::Time resume_at = t + jittered(opts.pause_length);
        paused_until[victim] = resume_at;
        plan.events_.push_back(
            make_event(t, ChaosEventKind::kPauseDaemon, victim));
        plan.events_.push_back(
            make_event(resume_at, ChaosEventKind::kResumeDaemon, victim));
        break;
      }
      case ChaosEventKind::kPartition: {
        // Split all hosts into {component, rest}; both sides non-empty.
        std::vector<net::NodeId> shuffled = all_nodes;
        for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
          const auto j = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(i)));
          std::swap(shuffled[i], shuffled[j]);
        }
        const auto cut = static_cast<std::size_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(shuffled.size()) - 1));
        ChaosEvent ev = make_event(t, ChaosEventKind::kPartition);
        ev.component.assign(shuffled.begin(),
                            shuffled.begin() + static_cast<long>(cut));
        std::sort(ev.component.begin(), ev.component.end());
        partition_until = t + jittered(opts.partition_length);
        plan.events_.push_back(std::move(ev));
        plan.events_.push_back(
            make_event(partition_until, ChaosEventKind::kHeal));
        break;
      }
      case ChaosEventKind::kDegradeLink: {
        const auto ai = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(all_nodes.size()) - 1));
        auto bi = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(all_nodes.size()) - 2));
        if (bi >= ai) ++bi;
        const auto key = std::minmax(all_nodes[ai], all_nodes[bi]);
        if (degraded_until.contains(key) && degraded_until[key] > t) break;
        ChaosEvent ev =
            make_event(t, ChaosEventKind::kDegradeLink, key.first, key.second);
        // A lossy, laggy flap: the kind of transient the WAN path shows.
        ev.quality.base_delay = sim::msec(
            static_cast<std::int64_t>(rng.uniform(10.0, 60.0)));
        ev.quality.jitter = sim::msec(
            static_cast<std::int64_t>(rng.uniform(5.0, 25.0)));
        ev.quality.loss = rng.uniform(0.05, 0.25);
        const sim::Time restore_at = t + jittered(opts.degrade_length);
        degraded_until[key] = restore_at;
        plan.events_.push_back(std::move(ev));
        plan.events_.push_back(make_event(
            restore_at, ChaosEventKind::kRestoreLink, key.first, key.second));
        break;
      }
      case ChaosEventKind::kCorruptLink: {
        const auto ai = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(all_nodes.size()) - 1));
        auto bi = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(all_nodes.size()) - 2));
        if (bi >= ai) ++bi;
        const auto key = std::minmax(all_nodes[ai], all_nodes[bi]);
        if (degraded_until.contains(key) && degraded_until[key] > t) break;
        ChaosEvent ev =
            make_event(t, ChaosEventKind::kCorruptLink, key.first, key.second);
        // A damaging flap: heavy bit-errors and truncation (all of it caught
        // by the integrity framing and dropped), plus a loss-burst regime —
        // the failing-interface behaviour the WAN path occasionally shows.
        ev.quality.base_delay = sim::msec(
            static_cast<std::int64_t>(rng.uniform(5.0, 40.0)));
        ev.quality.jitter = sim::msec(
            static_cast<std::int64_t>(rng.uniform(2.0, 15.0)));
        ev.quality.corrupt = rng.uniform(0.01, 0.08);
        ev.quality.truncate = rng.uniform(0.002, 0.02);
        ev.quality.p_good_to_bad = rng.uniform(0.005, 0.02);
        ev.quality.p_bad_to_good = 0.25;
        ev.quality.loss_bad = rng.uniform(0.3, 0.5);
        const sim::Time restore_at = t + jittered(opts.corrupt_length);
        degraded_until[key] = restore_at;
        plan.events_.push_back(std::move(ev));
        plan.events_.push_back(make_event(
            restore_at, ChaosEventKind::kRestoreLink, key.first, key.second));
        break;
      }
      default:
        break;
    }

    t += std::max<sim::Duration>(
        opts.min_gap, static_cast<sim::Duration>(rng.exponential(
                          static_cast<double>(opts.mean_gap))));
  }

  std::stable_sort(
      plan.events_.begin(), plan.events_.end(),
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return plan;
}

ChaosPlan ChaosPlan::from_events(std::vector<ChaosEvent> events) {
  ChaosPlan plan;
  plan.events_ = std::move(events);
  std::stable_sort(
      plan.events_.begin(), plan.events_.end(),
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return plan;
}

std::string ChaosPlan::describe() const {
  std::ostringstream os;
  os << "chaos plan seed=" << seed_ << " (" << events_.size() << " events)\n";
  for (const ChaosEvent& e : events_) {
    os << "  t=" << static_cast<double>(e.at) / 1e6 << "s " << to_string(e.kind);
    if (e.a != net::kInvalidNode) os << " n" << e.a;
    if (e.b != net::kInvalidNode) os << "<->n" << e.b;
    if (!e.component.empty()) {
      os << " {";
      for (std::size_t i = 0; i < e.component.size(); ++i) {
        os << (i ? "," : "") << "n" << e.component[i];
      }
      os << "}";
    }
    if (e.kind == ChaosEventKind::kDegradeLink) {
      os << " loss=" << e.quality.loss;
    }
    if (e.kind == ChaosEventKind::kCorruptLink) {
      os << " corrupt=" << e.quality.corrupt
         << " loss_bad=" << e.quality.loss_bad;
    }
    os << "\n";
  }
  return os.str();
}

void ChaosInjector::arm() {
  for (auto& sn : dep_->servers()) {
    if (!sn->server) continue;
    std::vector<std::shared_ptr<const mpeg::Movie>> movies;
    for (const std::string& title : sn->server->catalog().titles()) {
      movies.push_back(sn->server->catalog().find(title));
    }
    catalog_snapshot_[sn->node] = std::move(movies);
  }
  sim::Scheduler& sched = dep_->scheduler();
  for (const ChaosEvent& e : plan_.events()) {
    sched.at(e.at, [this, &e] { apply(e); });
  }
}

void ChaosInjector::apply(const ChaosEvent& e) {
  ++applied_;
  net::Network& net = dep_->network();
  switch (e.kind) {
    case ChaosEventKind::kCrash:
      if (net.alive(e.a)) dep_->crash(e.a);
      break;
    case ChaosEventKind::kRestart: {
      if (net.alive(e.a)) break;  // never actually crashed; skip
      vod::Deployment::ServerNode* sn = dep_->restart_server(e.a);
      if (sn == nullptr) break;
      util::log_info(kLog, "restarted server on n", e.a);
      if (restart_delegate_) {
        // Recovery belongs to the placement controller: it re-registers
        // the titles this node should hold *now*, not the pre-crash set.
        restart_delegate_(e.a, *sn);
      } else {
        for (const auto& movie : catalog_snapshot_[e.a]) {
          sn->server->add_movie(movie);
        }
      }
      break;
    }
    case ChaosEventKind::kPartition: {
      std::set<net::NodeId> side(e.component.begin(), e.component.end());
      net.partition({side});
      break;
    }
    case ChaosEventKind::kHeal:
      net.heal();
      break;
    case ChaosEventKind::kDegradeLink:
    case ChaosEventKind::kCorruptLink:
      net.set_quality(e.a, e.b, e.quality);
      break;
    case ChaosEventKind::kRestoreLink:
      net.clear_quality(e.a, e.b);
      break;
    case ChaosEventKind::kPauseDaemon: {
      vod::Deployment::ServerNode* sn = dep_->find_server(e.a);
      if (sn != nullptr && sn->daemon) sn->daemon->pause();
      break;
    }
    case ChaosEventKind::kResumeDaemon: {
      vod::Deployment::ServerNode* sn = dep_->find_server(e.a);
      if (sn != nullptr && sn->daemon) sn->daemon->resume();
      break;
    }
  }
}

}  // namespace ftvod::testing
