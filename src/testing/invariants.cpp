#include "testing/invariants.hpp"

#include <sstream>

#include "util/log.hpp"

namespace ftvod::testing {

namespace {
constexpr std::string_view kLog = "invariant";
}

InvariantMonitor::InvariantMonitor(vod::Deployment& dep, InvariantOptions opts)
    : dep_(&dep),
      opts_(opts),
      timer_(dep.scheduler(), opts.check_period, [this] { check_now(); }) {}

void InvariantMonitor::start() { timer_.start(); }

void InvariantMonitor::record(const std::string& what) {
  ++total_violations_;
  if (violations_.size() < opts_.max_recorded) {
    violations_.push_back(Violation{dep_->scheduler().now(), what});
  }
  util::log_warn(kLog, "VIOLATION at t=",
                 static_cast<double>(dep_->scheduler().now()) / 1e6, "s: ",
                 what);
}

bool InvariantMonitor::server_healthy(
    const vod::Deployment::ServerNode& sn) const {
  // "Healthy" mirrors what the rest of the group can rely on: the host is
  // up, the server process runs, and its control plane (the GCS daemon) is
  // neither dead nor frozen. A server with a paused daemon still streams,
  // but its peers rightfully treat it as failed — overlap with such a
  // server is the expected takeover duplication, not a violation.
  return sn.server && !sn.server->halted() && dep_->network().alive(sn.node) &&
         sn.daemon && !sn.daemon->halted() && !sn.daemon->paused();
}

void InvariantMonitor::check_now() {
  ++checks_run_;
  check_ownership_and_liveness();
  if (opts_.check_assignment_agreement) check_assignment_agreement();
  if (opts_.check_buffers) check_buffers();
  if (opts_.replication_floor > 0) check_replication();
}

void InvariantMonitor::check_replication() {
  // Invariant 5: every actively watched title keeps its k-tolerance floor
  // of healthy replicas — the placement controller's core promise. Brief
  // dips are legitimate (a crash takes a replica; the repair takes failure
  // detection plus a control period), so only a dip outliving the grace
  // window is a violation.
  const sim::Time now = dep_->scheduler().now();
  std::map<std::string, std::size_t> watched;  // title -> watching clients
  for (auto& cn : dep_->clients()) {
    const vod::VodClient& c = *cn->client;
    if (c.watching() && !c.at_end() && dep_->network().alive(cn->node)) {
      ++watched[c.movie()];
    }
  }
  std::size_t healthy_servers = 0;
  for (auto& sn : dep_->servers()) {
    if (server_healthy(*sn)) ++healthy_servers;
  }
  const std::size_t required =
      std::min(opts_.replication_floor, healthy_servers);

  for (const auto& [title, viewers] : watched) {
    std::size_t replicas = 0;
    for (auto& sn : dep_->servers()) {
      if (server_healthy(*sn) && sn->server->catalog().contains(title)) {
        ++replicas;
      }
    }
    if (replicas >= required) {
      under_replicated_since_.erase(title);
      continue;
    }
    const auto [it, fresh] = under_replicated_since_.try_emplace(title, now);
    if (!fresh && now - it->second > opts_.under_replicated_grace) {
      std::ostringstream os;
      os << "title '" << title << "' with " << viewers
         << " watching clients under-replicated: " << replicas << " < "
         << required << " healthy replicas for more than "
         << static_cast<double>(opts_.under_replicated_grace) / 1e6 << "s";
      record(os.str());
      it->second = now;  // rate-limit: one report per grace window
    }
  }
}

void InvariantMonitor::check_ownership_and_liveness() {
  const sim::Time now = dep_->scheduler().now();
  net::Network& net = dep_->network();

  for (auto& cn : dep_->clients()) {
    const vod::VodClient& client = *cn->client;
    if (!net.alive(cn->node)) continue;
    const std::uint64_t id = client.client_id();
    ClientTrack& track = tracks_[id];

    // ---- invariant 1: at most one healthy server per client ------------
    std::vector<net::NodeId> owners;
    for (auto& sn : dep_->servers()) {
      if (server_healthy(*sn) && sn->server->serves(id)) {
        owners.push_back(sn->node);
      }
    }
    if (owners.size() <= 1) {
      track.multi_since = -1;
    } else if (track.multi_since < 0) {
      track.multi_since = now;
    } else if (now - track.multi_since > opts_.multi_serve_grace) {
      std::ostringstream os;
      os << "client " << id << " served by " << owners.size()
         << " healthy servers (";
      for (std::size_t i = 0; i < owners.size(); ++i) {
        os << (i ? "," : "") << "n" << owners[i];
      }
      os << ") for more than "
         << static_cast<double>(opts_.multi_serve_grace) / 1e6 << "s";
      record(os.str());
      track.multi_since = now;  // rate-limit: one report per grace window
    }

    // ---- invariant 3: bounded stall while servable ----------------------
    const std::uint64_t displayed = client.counters().displayed;
    const bool progressing = displayed > track.last_displayed;
    track.last_displayed = displayed;

    bool servable = client.playing() && !client.paused() && !client.at_end();
    if (servable) {
      bool reachable_replica = false;
      for (auto& sn : dep_->servers()) {
        if (server_healthy(*sn) &&
            sn->server->catalog().contains(client.movie()) &&
            net.reachable(cn->node, sn->node)) {
          reachable_replica = true;
          break;
        }
      }
      servable = reachable_replica;
    }
    if (progressing || !servable) {
      track.stall_since = now;
    } else if (now - track.stall_since > opts_.stall_bound) {
      std::ostringstream os;
      os << "client " << id << " stalled at frame "
         << (client.buffers() ? client.buffers()->last_displayed() : -1)
         << " for more than "
         << static_cast<double>(opts_.stall_bound) / 1e6
         << "s despite a reachable replica";
      record(os.str());
      track.stall_since = now;
    }
  }
}

void InvariantMonitor::check_assignment_agreement() {
  // Movie-group members that completed the same table exchange (equal tag,
  // hence the same position of the totally-ordered message stream) and saw
  // the same view must have computed identical assignments. Fallback-timer
  // rebalances (authoritative == false) ran on possibly-partial inputs and
  // are skipped — the protocol itself repairs those on the next change.
  struct Entry {
    net::NodeId node;
    const vod::RebalanceSnapshot* snap;
  };
  std::map<std::string, std::vector<Entry>> by_movie;
  for (auto& sn : dep_->servers()) {
    if (!server_healthy(*sn)) continue;
    for (const std::string& title : sn->server->catalog().titles()) {
      const vod::RebalanceSnapshot* snap =
          sn->server->rebalance_snapshot(title);
      if (snap != nullptr && snap->authoritative) {
        by_movie[title].push_back(Entry{sn->node, snap});
      }
    }
  }
  for (const auto& [title, entries] : by_movie) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (std::size_t j = i + 1; j < entries.size(); ++j) {
        const auto& a = *entries[i].snap;
        const auto& b = *entries[j].snap;
        if (a.exchange_tag != b.exchange_tag) continue;
        if (a.view_servers != b.view_servers) continue;
        // Members rebalance on their live owner tables, which in-flight
        // syncs may have nudged apart; §5.2's determinism claim is about
        // identical inputs producing identical assignments.
        if (a.input_owners != b.input_owners) continue;
        if (a.assignment != b.assignment) {
          std::ostringstream os;
          os << "movie '" << title << "': servers n" << entries[i].node
             << " and n" << entries[j].node
             << " disagree on the re-distribution for exchange tag "
             << a.exchange_tag << " (" << a.assignment.size() << " vs "
             << b.assignment.size() << " clients)";
          record(os.str());
        }
      }
    }
  }
}

void InvariantMonitor::check_buffers() {
  for (auto& cn : dep_->clients()) {
    const vod::ClientBuffers* buf = cn->client->buffers();
    if (buf == nullptr) continue;
    if (buf->sw_frames() > buf->sw_capacity()) {
      std::ostringstream os;
      os << "client " << cn->client->client_id() << " software buffer over "
         << "capacity: " << buf->sw_frames() << " > " << buf->sw_capacity();
      record(os.str());
    }
    if (buf->hw_bytes() > buf->hw_capacity_bytes()) {
      std::ostringstream os;
      os << "client " << cn->client->client_id() << " hardware buffer over "
         << "capacity: " << buf->hw_bytes() << " > "
         << buf->hw_capacity_bytes();
      record(os.str());
    }
  }
}

std::string InvariantMonitor::report() const {
  std::ostringstream os;
  for (const Violation& v : violations_) {
    os << "t=" << static_cast<double>(v.at) / 1e6 << "s: " << v.what << "\n";
  }
  if (total_violations_ > violations_.size()) {
    os << "... and " << total_violations_ - violations_.size() << " more\n";
  }
  return os.str();
}

}  // namespace ftvod::testing
