// System-wide invariant monitoring for chaos runs. The monitor rides the
// deployment's scheduler on a fine periodic tick and checks, across every
// host of the simulation:
//
//  1. single-owner   — no client is served by more than one *healthy*
//                      server for longer than a bounded hand-off window
//                      (the paper expects duplicate transmission during a
//                      takeover, never steady-state dual ownership);
//  2. agreement      — movie-group members that completed the same table
//                      exchange computed identical re-distribution
//                      assignments (§5.2's determinism claim);
//  3. liveness       — a playing client whose movie is held by at least
//                      one healthy, reachable server never stalls longer
//                      than the takeover bound;
//  4. bounded buffers— client occupancy never exceeds capacity.
//
// All bounds are configurable; a violation records the virtual time and a
// human-readable description, and the soak harness prints them together
// with the chaos plan's seed and event trace.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/timer.hpp"
#include "vod/service.hpp"

namespace ftvod::testing {

struct InvariantOptions {
  sim::Duration check_period = sim::msec(100);
  /// Invariant 3: max time a servable client's display may fail to advance.
  sim::Duration stall_bound = sim::sec(10.0);
  /// Invariant 1: max time a client may be served by two healthy servers.
  sim::Duration multi_serve_grace = sim::sec(8.0);
  bool check_assignment_agreement = true;
  bool check_buffers = true;
  /// Invariant 5 (no under-replicated title): a title with at least one
  /// watching client must be held by at least min(replication_floor,
  /// healthy-server count) healthy servers. 0 disables the check (the
  /// default — deployments without a placement controller pin replicas by
  /// hand and legitimately run titles at one copy).
  std::size_t replication_floor = 0;
  /// How long a title may sit under its floor before it counts as a
  /// violation: the placement controller needs a control period or two
  /// (plus failure detection) to direct a repair.
  sim::Duration under_replicated_grace = sim::sec(6.0);
  /// Stop recording (but keep counting) beyond this many violations.
  std::size_t max_recorded = 64;
};

struct Violation {
  sim::Time at = 0;
  std::string what;
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(vod::Deployment& dep, InvariantOptions opts = {});

  /// Begins periodic checking on the deployment's scheduler.
  void start();
  /// Runs one check immediately (also called by the periodic tick).
  void check_now();

  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t total_violations() const {
    return total_violations_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }

  /// All recorded violations, one per line (empty string when ok()).
  [[nodiscard]] std::string report() const;

 private:
  struct ClientTrack {
    std::uint64_t last_displayed = 0;
    sim::Time stall_since = 0;
    sim::Time multi_since = -1;  // -1: not currently multi-served
  };

  void record(const std::string& what);
  [[nodiscard]] bool server_healthy(
      const vod::Deployment::ServerNode& sn) const;
  void check_ownership_and_liveness();
  void check_assignment_agreement();
  void check_buffers();
  void check_replication();

  vod::Deployment* dep_;
  InvariantOptions opts_;
  sim::PeriodicTimer timer_;
  std::map<std::uint64_t, ClientTrack> tracks_;  // by client id
  /// Title -> time it first dipped below the replication floor (invariant 5).
  std::map<std::string, sim::Time> under_replicated_since_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t checks_run_ = 0;
};

}  // namespace ftvod::testing
