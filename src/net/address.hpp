// Addressing for the simulated packet network.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace ftvod::net {

using NodeId = std::uint32_t;
using Port = std::uint16_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

struct Endpoint {
  NodeId node = kInvalidNode;
  Port port = 0;

  auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] bool valid() const { return node != kInvalidNode; }
};

inline std::ostream& operator<<(std::ostream& os, const Endpoint& e) {
  return os << "n" << e.node << ":" << e.port;
}

}  // namespace ftvod::net

template <>
struct std::hash<ftvod::net::Endpoint> {
  std::size_t operator()(const ftvod::net::Endpoint& e) const noexcept {
    return (static_cast<std::size_t>(e.node) << 16) ^ e.port;
  }
};
