// Link quality parameters and canned profiles for the two environments the
// paper evaluates: a 100 Mbps switched-Ethernet LAN and a 7-hop small-scale
// WAN (Hebrew University <-> Tel Aviv University) without QoS reservation.
//
// Beyond clean i.i.d. loss the model covers the hostile behaviours real
// Internet paths exhibit (the paper's §5 WAN numbers, and Kanrar's VoD
// traffic studies, both show damage and bursts dominating clean loss):
//  * corruption  — per-packet probability of flipping a few payload bits;
//  * truncation  — per-packet probability of cutting the datagram short;
//  * reordering  — per-packet probability of an extra delivery delay large
//                  enough to land the packet behind its successors;
//  * bursty loss — a two-state Gilbert–Elliott channel: per-packet
//                  transitions between a good state (loss = `loss`) and a
//                  bad state (loss = `loss_bad`), giving loss bursts with a
//                  mean length of 1/p_bad_to_good packets.
// All of it draws from the one seeded network RNG, so a hostile run is as
// reproducible as a clean one.
#pragma once

#include "sim/time.hpp"

namespace ftvod::net {

struct LinkQuality {
  sim::Duration base_delay = sim::usec(200);  // one-way propagation
  sim::Duration jitter = 0;      // uniform extra delay in [0, jitter]
  double loss = 0.0;             // i.i.d. packet drop probability (good state)
  double duplicate = 0.0;        // probability the packet arrives twice

  // --- payload damage (detected and dropped by the integrity framing) ----
  double corrupt = 0.0;          // probability of bit-flips in the payload
  int corrupt_bits = 3;          // flipped bits per corrupted packet
  double truncate = 0.0;         // probability the packet is cut short

  // --- reordering ---------------------------------------------------------
  double reorder = 0.0;          // probability of the extra reorder delay
  /// Extra delay for a reordered packet, uniform in [0, reorder_span]; 0
  /// means "derive from the link": 4 * (base_delay + jitter).
  sim::Duration reorder_span = 0;

  // --- Gilbert–Elliott bursty loss (off while p_good_to_bad == 0) --------
  double p_good_to_bad = 0.0;    // per-packet good -> bad transition
  double p_bad_to_good = 0.0;    // per-packet bad -> good transition
  double loss_bad = 0.0;         // drop probability while in the bad state

  [[nodiscard]] bool bursty() const { return p_good_to_bad > 0.0; }
};

struct HostConfig {
  double uplink_bps = 100e6;            // serialization rate at the sender
  std::size_t queue_limit_bytes = 512 * 1024;  // tail-drop threshold
  /// Receive-side (last-mile) capacity: arriving datagrams serialize at
  /// this rate and tail-drop beyond the queue limit. Models the ADSL/cable
  /// downlinks the paper's introduction targets; competing traffic on the
  /// same downlink congests the video unless capacity is reserved (the
  /// paper's QoS-reservation discussion). Effectively unlimited by default.
  double downlink_bps = 1e9;
  std::size_t downlink_queue_bytes = 512 * 1024;
};

/// Switched Ethernet: sub-millisecond delay, no loss, tiny jitter.
inline LinkQuality lan_quality() {
  return LinkQuality{.base_delay = sim::usec(300),
                     .jitter = sim::usec(400),
                     .loss = 0.0,
                     .duplicate = 0.0};
}

/// Seven-hop Internet path: tens of ms delay, real jitter, ~1% loss, plus
/// the hostile behaviours measured on such paths — occasional bit damage
/// and truncation, mild reordering beyond what jitter causes, and
/// congestion-driven loss bursts (~4 packets mean, 40% loss while bursting)
/// on top of the i.i.d. floor.
inline LinkQuality wan_quality(double loss = 0.01) {
  return LinkQuality{.base_delay = sim::msec(18),
                     .jitter = sim::msec(12),
                     .loss = loss,
                     .duplicate = 0.0005,
                     .corrupt = 0.002,
                     .corrupt_bits = 3,
                     .truncate = 0.0005,
                     .reorder = 0.005,
                     .reorder_span = 0,
                     .p_good_to_bad = 0.002,
                     .p_bad_to_good = 0.25,
                     .loss_bad = 0.4};
}

}  // namespace ftvod::net
