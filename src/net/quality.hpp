// Link quality parameters and canned profiles for the two environments the
// paper evaluates: a 100 Mbps switched-Ethernet LAN and a 7-hop small-scale
// WAN (Hebrew University <-> Tel Aviv University) without QoS reservation.
#pragma once

#include "sim/time.hpp"

namespace ftvod::net {

struct LinkQuality {
  sim::Duration base_delay = sim::usec(200);  // one-way propagation
  sim::Duration jitter = 0;      // uniform extra delay in [0, jitter]
  double loss = 0.0;             // i.i.d. packet drop probability
  double duplicate = 0.0;        // probability the packet arrives twice
};

struct HostConfig {
  double uplink_bps = 100e6;            // serialization rate at the sender
  std::size_t queue_limit_bytes = 512 * 1024;  // tail-drop threshold
  /// Receive-side (last-mile) capacity: arriving datagrams serialize at
  /// this rate and tail-drop beyond the queue limit. Models the ADSL/cable
  /// downlinks the paper's introduction targets; competing traffic on the
  /// same downlink congests the video unless capacity is reserved (the
  /// paper's QoS-reservation discussion). Effectively unlimited by default.
  double downlink_bps = 1e9;
  std::size_t downlink_queue_bytes = 512 * 1024;
};

/// Switched Ethernet: sub-millisecond delay, no loss, tiny jitter.
inline LinkQuality lan_quality() {
  return LinkQuality{.base_delay = sim::usec(300),
                     .jitter = sim::usec(400),
                     .loss = 0.0,
                     .duplicate = 0.0};
}

/// Seven-hop Internet path: tens of ms delay, real jitter, ~1% loss.
inline LinkQuality wan_quality(double loss = 0.01) {
  return LinkQuality{.base_delay = sim::msec(18),
                     .jitter = sim::msec(12),
                     .loss = loss,
                     .duplicate = 0.0005};
}

}  // namespace ftvod::net
