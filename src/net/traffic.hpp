// Constant-bit-rate background traffic generator: competes with the video
// stream for the receiver's downlink. Used by the congestion experiments
// that quantify the paper's QoS-reservation discussion (§2: the service is
// "best provided using QoS reservation mechanisms", but buffers and flow
// control cover moderate contention).
#pragma once

#include <memory>

#include "net/network.hpp"
#include "sim/timer.hpp"

namespace ftvod::net {

class TrafficGenerator {
 public:
  /// Sends `rate_bps` of junk from `src` (port 9999) to `dst`:9998 in
  /// `datagram_bytes` datagrams. Starts immediately.
  TrafficGenerator(sim::Scheduler& sched, Network& net, NodeId src,
                   NodeId dst, double rate_bps,
                   std::size_t datagram_bytes = 1400)
      : dst_{dst, 9998},
        datagram_bytes_(datagram_bytes),
        socket_(net.bind(src, 9999, nullptr)),
        timer_(sched,
               static_cast<sim::Duration>(
                   static_cast<double>(datagram_bytes) * 8e6 / rate_bps),
               [this] { tick(); }) {
    if (rate_bps > 0) timer_.start();
  }

  void stop() { timer_.stop(); }
  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }

 private:
  void tick() {
    util::Bytes header{std::byte{0xFF}};  // not a valid protocol message
    socket_->send(dst_, std::move(header), datagram_bytes_ - 1);
    ++sent_;
  }

  Endpoint dst_;
  std::size_t datagram_bytes_;
  std::uint64_t sent_ = 0;
  std::unique_ptr<Socket> socket_;
  sim::PeriodicTimer timer_;
};

}  // namespace ftvod::net
