#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.hpp"

namespace ftvod::net {

namespace {
constexpr std::string_view kLog = "net";
}

Socket::~Socket() {
  if (net_ != nullptr) net_->unbind(*this);
}

void Socket::send(const Endpoint& to, util::Bytes payload,
                  std::size_t padding_bytes) {
  net_->send_from_socket(*this, to, std::move(payload), padding_bytes);
}

NodeId Network::add_host(std::string name, HostConfig cfg) {
  Host h;
  h.name = std::move(name);
  h.cfg = cfg;
  hosts_.push_back(std::move(h));
  return static_cast<NodeId>(hosts_.size() - 1);
}

const std::string& Network::host_name(NodeId id) const {
  return hosts_.at(id).name;
}

std::unique_ptr<Socket> Network::bind(NodeId node, Port port,
                                      Socket::RecvHandler handler) {
  Host& h = hosts_.at(node);
  if (h.sockets.contains(port)) {
    throw std::runtime_error("port already bound: node " +
                             std::to_string(node) + " port " +
                             std::to_string(port));
  }
  auto sock = std::unique_ptr<Socket>(
      new Socket(*this, Endpoint{node, port}, std::move(handler)));
  h.sockets[port] = sock.get();
  return sock;
}

void Network::unbind(const Socket& s) {
  Host& h = hosts_.at(s.local().node);
  auto it = h.sockets.find(s.local().port);
  if (it != h.sockets.end() && it->second == &s) h.sockets.erase(it);
}

void Network::set_quality(NodeId a, NodeId b, const LinkQuality& q) {
  quality_overrides_[std::minmax(a, b)] = q;
}

void Network::clear_quality(NodeId a, NodeId b) {
  quality_overrides_.erase(std::minmax(a, b));
}

const LinkQuality& Network::quality(NodeId a, NodeId b) const {
  auto it = quality_overrides_.find(std::minmax(a, b));
  return it != quality_overrides_.end() ? it->second : default_quality_;
}

void Network::partition(const std::vector<std::set<NodeId>>& components) {
  partition_ = components;
}

void Network::heal() { partition_.clear(); }

bool Network::reachable(NodeId a, NodeId b) const {
  if (!alive(a) || !alive(b)) return false;
  if (partition_.empty() || a == b) return true;
  // Hosts absent from every listed component form one implicit component.
  auto component_of = [&](NodeId n) -> int {
    for (std::size_t i = 0; i < partition_.size(); ++i) {
      if (partition_[i].contains(n)) return static_cast<int>(i);
    }
    return -1;
  };
  return component_of(a) == component_of(b);
}

void Network::crash_host(NodeId node) {
  Host& h = hosts_.at(node);
  if (!h.alive) return;
  h.alive = false;
  util::log_info(kLog, "host ", h.name, " (n", node, ") crashed");
  // Listeners may re-register during iteration; work on a copy.
  auto listeners = std::move(h.crash_listeners);
  h.crash_listeners.clear();
  for (auto& fn : listeners) fn();
}

void Network::restore_host(NodeId node) {
  Host& h = hosts_.at(node);
  h.alive = true;
  h.uplink_free_at = sched_->now();
  util::log_info(kLog, "host ", h.name, " (n", node, ") restored");
}

bool Network::alive(NodeId node) const { return hosts_.at(node).alive; }

void Network::on_crash(NodeId node, std::function<void()> listener) {
  hosts_.at(node).crash_listeners.push_back(std::move(listener));
}

const HostStats& Network::stats(NodeId node) const {
  return hosts_.at(node).stats;
}

void Network::send_from_socket(Socket& src, const Endpoint& to,
                               util::Bytes payload,
                               std::size_t padding_bytes) {
  const Endpoint from = src.local();
  Host& h = hosts_.at(from.node);
  const std::size_t wire_size =
      payload.size() + padding_bytes + kHeaderBytes;

  if (!h.alive) return;  // a dead host transmits nothing

  ++h.stats.datagrams_sent;
  h.stats.bytes_sent += wire_size;
  ++src.stats_.datagrams_sent;
  src.stats_.bytes_sent += wire_size;
  total_wire_bytes_ += wire_size;

  // Serialization at the uplink: the packet departs when the queue ahead of
  // it has drained. Tail-drop if the queue (in bytes) exceeds the limit.
  const sim::Time now = sched_->now();
  const sim::Time start = std::max(now, h.uplink_free_at);
  const double queued_bytes =
      static_cast<double>(start - now) * h.cfg.uplink_bps / 8e6;
  if (queued_bytes > static_cast<double>(h.cfg.queue_limit_bytes)) {
    ++h.stats.dropped_queue;
    return;
  }
  const auto serialize_us = static_cast<sim::Duration>(
      static_cast<double>(wire_size) * 8e6 / h.cfg.uplink_bps);
  h.uplink_free_at = start + std::max<sim::Duration>(serialize_us, 1);
  const sim::Time departure = h.uplink_free_at;

  if (!reachable(from.node, to.node)) {
    ++h.stats.dropped_unreachable;
    return;
  }

  const LinkQuality& q = quality(from.node, to.node);
  if (rng_->bernoulli(q.loss)) {
    ++h.stats.dropped_loss;
    return;
  }

  auto data = std::make_shared<util::Bytes>(std::move(payload));
  const int copies = rng_->bernoulli(q.duplicate) ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    const sim::Duration jitter =
        q.jitter > 0 ? static_cast<sim::Duration>(
                           rng_->uniform(0.0, static_cast<double>(q.jitter)))
                     : 0;
    const sim::Time arrival = departure + q.base_delay + jitter;
    sched_->at(arrival, [this, from, to, data, wire_size] {
      deliver(from, to, data, wire_size);
    });
  }
}

void Network::deliver(Endpoint from, Endpoint to,
                      std::shared_ptr<util::Bytes> data,
                      std::size_t wire_size) {
  if (to.node >= hosts_.size()) return;
  Host& h = hosts_[to.node];
  // Re-check at arrival time: the destination may have crashed or been
  // partitioned away while the packet was in flight.
  if (!h.alive || !reachable(from.node, to.node)) {
    ++h.stats.dropped_unreachable;
    return;
  }
  // Downlink serialization: arriving datagrams share the receiver's
  // last-mile capacity, whatever socket (or none) they are addressed to.
  const sim::Time now = sched_->now();
  const sim::Time start = std::max(now, h.downlink_free_at);
  const double queued_bytes =
      static_cast<double>(start - now) * h.cfg.downlink_bps / 8e6;
  if (queued_bytes > static_cast<double>(h.cfg.downlink_queue_bytes)) {
    ++h.stats.dropped_queue;
    return;
  }
  const auto serialize_us = static_cast<sim::Duration>(
      static_cast<double>(wire_size) * 8e6 / h.cfg.downlink_bps);
  h.downlink_free_at = start + std::max<sim::Duration>(serialize_us, 1);
  if (h.downlink_free_at == now + 1 && start == now) {
    // Fast path: an idle, effectively-unlimited downlink.
    hand_off(from, to, std::move(data), wire_size);
    return;
  }
  sched_->at(h.downlink_free_at, [this, from, to, data, wire_size] {
    hand_off(from, to, data, wire_size);
  });
}

void Network::hand_off(Endpoint from, Endpoint to,
                       std::shared_ptr<util::Bytes> data,
                       std::size_t wire_size) {
  if (to.node >= hosts_.size()) return;
  Host& h = hosts_[to.node];
  if (!h.alive || !reachable(from.node, to.node)) {
    ++h.stats.dropped_unreachable;
    return;
  }
  auto it = h.sockets.find(to.port);
  if (it == h.sockets.end()) {
    ++h.stats.dropped_unreachable;
    return;
  }
  ++h.stats.datagrams_received;
  h.stats.bytes_received += wire_size;
  Socket* sock = it->second;
  ++sock->stats_.datagrams_received;
  sock->stats_.bytes_received += wire_size;
  if (sock->handler_) sock->handler_(from, *data);
}

}  // namespace ftvod::net
