#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.hpp"

namespace ftvod::net {

namespace {
constexpr std::string_view kLog = "net";
}

Socket::~Socket() {
  if (net_ != nullptr) net_->unbind(*this);
}

void Socket::send(const Endpoint& to, std::span<const std::byte> payload,
                  std::size_t padding_bytes) {
  net_->send_from_socket(*this, to, payload, padding_bytes);
}

NodeId Network::add_host(std::string name, HostConfig cfg) {
  Host h;
  h.name = std::move(name);
  h.cfg = cfg;
  hosts_.push_back(std::move(h));
  // Late joiners land in the implicit component of the current partition
  // (or component 0 when the network is whole).
  component_.push_back(implicit_component_);
  return static_cast<NodeId>(hosts_.size() - 1);
}

const std::string& Network::host_name(NodeId id) const {
  return hosts_.at(id).name;
}

std::unique_ptr<Socket> Network::bind(NodeId node, Port port,
                                      Socket::RecvHandler handler) {
  Host& h = hosts_.at(node);
  if (h.sockets.contains(port)) {
    throw std::runtime_error("port already bound: node " +
                             std::to_string(node) + " port " +
                             std::to_string(port));
  }
  auto sock = std::unique_ptr<Socket>(
      new Socket(*this, Endpoint{node, port}, std::move(handler)));
  h.sockets[port] = sock.get();
  return sock;
}

void Network::unbind(const Socket& s) {
  Host& h = hosts_.at(s.local().node);
  auto it = h.sockets.find(s.local().port);
  if (it != h.sockets.end() && it->second == &s) h.sockets.erase(it);
}

void Network::set_quality(NodeId a, NodeId b, const LinkQuality& q) {
  quality_overrides_[std::minmax(a, b)] = q;
}

void Network::clear_quality(NodeId a, NodeId b) {
  quality_overrides_.erase(std::minmax(a, b));
}

const LinkQuality& Network::quality(NodeId a, NodeId b) const {
  auto it = quality_overrides_.find(std::minmax(a, b));
  return it != quality_overrides_.end() ? it->second : default_quality_;
}

void Network::partition(const std::vector<std::set<NodeId>>& components) {
  partitioned_ = !components.empty();
  implicit_component_ =
      partitioned_ ? static_cast<std::uint32_t>(components.size()) : 0;
  // Hosts absent from every listed component form one implicit component.
  component_.assign(hosts_.size(), implicit_component_);
  for (std::size_t i = 0; i < components.size(); ++i) {
    for (const NodeId n : components[i]) {
      // First listing wins, matching the original component scan order.
      if (n < component_.size() && component_[n] == implicit_component_) {
        component_[n] = static_cast<std::uint32_t>(i);
      }
    }
  }
}

void Network::heal() {
  partitioned_ = false;
  implicit_component_ = 0;
  component_.assign(hosts_.size(), 0);
}

bool Network::reachable(NodeId a, NodeId b) const {
  if (!alive(a) || !alive(b)) return false;
  if (!partitioned_ || a == b) return true;
  return component_[a] == component_[b];
}

void Network::crash_host(NodeId node) {
  Host& h = hosts_.at(node);
  if (!h.alive) return;
  h.alive = false;
  util::log_info(kLog, "host ", h.name, " (n", node, ") crashed");
  // Listeners may re-register during iteration; work on a copy.
  auto listeners = std::move(h.crash_listeners);
  h.crash_listeners.clear();
  for (auto& fn : listeners) fn();
}

void Network::restore_host(NodeId node) {
  Host& h = hosts_.at(node);
  h.alive = true;
  // Both directions restart idle: traffic queued before the crash must not
  // serialize into the revived host's link budget.
  h.uplink_free_at = sched_->now();
  h.downlink_free_at = sched_->now();
  // The Gilbert–Elliott channels touching this host restart in the good
  // state too. A reboot takes seconds; carrying the pre-crash bad-burst
  // state across it would greet the revived host — typically a server
  // re-registering its catalog with the placement controller — with an
  // immediate artificial loss burst on links that were idle the whole time.
  for (auto it = burst_state_.begin(); it != burst_state_.end();) {
    if (it->first.first == node || it->first.second == node) {
      it = burst_state_.erase(it);
    } else {
      ++it;
    }
  }
  util::log_info(kLog, "host ", h.name, " (n", node, ") restored");
}

bool Network::alive(NodeId node) const { return hosts_.at(node).alive; }

void Network::on_crash(NodeId node, std::function<void()> listener) {
  hosts_.at(node).crash_listeners.push_back(std::move(listener));
}

const HostStats& Network::stats(NodeId node) const {
  return hosts_.at(node).stats;
}

Network::PayloadBuffer* Network::acquire_buffer(
    std::span<const std::byte> payload) {
  PayloadBuffer* b;
  if (!buffer_free_.empty()) {
    b = buffer_free_.back();
    buffer_free_.pop_back();
  } else {
    buffer_slab_.push_back(std::make_unique<PayloadBuffer>());
    b = buffer_slab_.back().get();
  }
  b->bytes.assign(payload.begin(), payload.end());  // reuses capacity
  b->refs = 0;
  return b;
}

void Network::release_ref(PayloadBuffer* data) {
  if (--data->refs == 0) {
    data->bytes.clear();
    buffer_free_.push_back(data);
  }
}

void Network::send_from_socket(Socket& src, const Endpoint& to,
                               std::span<const std::byte> payload,
                               std::size_t padding_bytes) {
  const Endpoint from = src.local();
  Host& h = hosts_.at(from.node);
  const std::size_t wire_size =
      payload.size() + padding_bytes + kHeaderBytes;

  if (!h.alive) return;  // a dead host transmits nothing

  ++h.stats.datagrams_sent;
  h.stats.bytes_sent += wire_size;
  ++src.stats_.datagrams_sent;
  src.stats_.bytes_sent += wire_size;
  total_wire_bytes_ += wire_size;

  // Serialization at the uplink: the packet departs when the queue ahead of
  // it has drained. Tail-drop if the queue (in bytes) exceeds the limit.
  const sim::Time now = sched_->now();
  const sim::Time start = std::max(now, h.uplink_free_at);
  const double queued_bytes =
      static_cast<double>(start - now) * h.cfg.uplink_bps / 8e6;
  if (queued_bytes > static_cast<double>(h.cfg.queue_limit_bytes)) {
    ++h.stats.dropped_queue;
    return;
  }
  const auto serialize_us = static_cast<sim::Duration>(
      static_cast<double>(wire_size) * 8e6 / h.cfg.uplink_bps);
  h.uplink_free_at = start + std::max<sim::Duration>(serialize_us, 1);
  const sim::Time departure = h.uplink_free_at;

  if (!reachable(from.node, to.node)) {
    ++h.stats.dropped_unreachable;
    return;
  }

  const LinkQuality& q = quality(from.node, to.node);
  // Loss: the Gilbert–Elliott channel (when enabled) modulates the drop
  // probability per packet — `loss` in the good state, `loss_bad` in the
  // bad state — producing the loss bursts congestion causes on real paths.
  double loss_p = q.loss;
  bool in_bad_state = false;
  if (q.bursty()) {
    bool& bad = burst_state_[std::minmax(from.node, to.node)];
    if (bad) {
      if (rng_->bernoulli(q.p_bad_to_good)) bad = false;
    } else {
      if (rng_->bernoulli(q.p_good_to_bad)) bad = true;
    }
    in_bad_state = bad;
    if (bad) loss_p = q.loss_bad;
  }
  if (rng_->bernoulli(loss_p)) {
    ++h.stats.dropped_loss;
    if (in_bad_state) ++h.stats.dropped_burst;
    return;
  }

  PayloadBuffer* data = acquire_buffer(payload);
  // Damage is applied once to the pooled copy, before duplication: a
  // duplicated packet was damaged (or not) upstream of the branch point, so
  // both copies share its fate.
  apply_damage(q, h, *data);
  const int copies = rng_->bernoulli(q.duplicate) ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    const sim::Duration jitter =
        q.jitter > 0 ? static_cast<sim::Duration>(
                           rng_->uniform(0.0, static_cast<double>(q.jitter)))
                     : 0;
    // Reordering beyond what jitter produces: occasionally a packet takes a
    // detour long enough to land behind several successors.
    sim::Duration reorder_delay = 0;
    if (rng_->bernoulli(q.reorder)) {
      const sim::Duration span = q.reorder_span > 0
                                     ? q.reorder_span
                                     : 4 * (q.base_delay + q.jitter);
      reorder_delay = static_cast<sim::Duration>(
          rng_->uniform(0.0, static_cast<double>(span)));
      ++h.stats.reordered;
    }
    const sim::Time arrival = departure + q.base_delay + jitter + reorder_delay;
    ++data->refs;
    sched_->at(arrival, [this, from, to, data, wire_size] {
      deliver(from, to, data, wire_size);
    });
  }
}

bool Network::apply_damage(const LinkQuality& q, Host& sender,
                           PayloadBuffer& data) {
  bool damaged = false;
  if (!data.bytes.empty() && rng_->bernoulli(q.corrupt)) {
    // Flip a handful of random bits, the signature of line noise or a bad
    // NIC. The integrity framing must catch every one of these.
    const auto total_bits =
        static_cast<std::int64_t>(data.bytes.size()) * 8;
    for (int i = 0; i < q.corrupt_bits; ++i) {
      const std::int64_t bit = rng_->uniform_int(0, total_bits - 1);
      data.bytes[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::byte>(1u << (bit % 8));
    }
    ++sender.stats.corrupted;
    damaged = true;
  }
  if (!data.bytes.empty() && rng_->bernoulli(q.truncate)) {
    const auto keep = rng_->uniform_int(
        0, static_cast<std::int64_t>(data.bytes.size()) - 1);
    data.bytes.resize(static_cast<std::size_t>(keep));
    ++sender.stats.truncated;
    damaged = true;
  }
  return damaged;
}

void Network::deliver(Endpoint from, Endpoint to, PayloadBuffer* data,
                      std::size_t wire_size) {
  if (to.node >= hosts_.size()) {
    release_ref(data);
    return;
  }
  Host& h = hosts_[to.node];
  // Re-check at arrival time: the destination may have crashed or been
  // partitioned away while the packet was in flight.
  if (!h.alive || !reachable(from.node, to.node)) {
    ++h.stats.dropped_unreachable;
    release_ref(data);
    return;
  }
  // Downlink serialization: arriving datagrams share the receiver's
  // last-mile capacity, whatever socket (or none) they are addressed to.
  const sim::Time now = sched_->now();
  const sim::Time start = std::max(now, h.downlink_free_at);
  const double queued_bytes =
      static_cast<double>(start - now) * h.cfg.downlink_bps / 8e6;
  if (queued_bytes > static_cast<double>(h.cfg.downlink_queue_bytes)) {
    ++h.stats.dropped_queue;
    release_ref(data);
    return;
  }
  const auto serialize_us = static_cast<sim::Duration>(
      static_cast<double>(wire_size) * 8e6 / h.cfg.downlink_bps);
  h.downlink_free_at = start + std::max<sim::Duration>(serialize_us, 1);
  if (h.downlink_free_at == now + 1 && start == now) {
    // Fast path: an idle, effectively-unlimited downlink. The reference
    // transfers to hand_off.
    hand_off(from, to, data, wire_size);
    return;
  }
  // The reference travels with the rescheduled delivery.
  sched_->at(h.downlink_free_at, [this, from, to, data, wire_size] {
    hand_off(from, to, data, wire_size);
  });
}

void Network::hand_off(Endpoint from, Endpoint to, PayloadBuffer* data,
                       std::size_t wire_size) {
  if (to.node >= hosts_.size()) {
    release_ref(data);
    return;
  }
  Host& h = hosts_[to.node];
  if (!h.alive || !reachable(from.node, to.node)) {
    ++h.stats.dropped_unreachable;
    release_ref(data);
    return;
  }
  auto it = h.sockets.find(to.port);
  if (it == h.sockets.end()) {
    ++h.stats.dropped_unreachable;
    release_ref(data);
    return;
  }
  ++h.stats.datagrams_received;
  h.stats.bytes_received += wire_size;
  Socket* sock = it->second;
  ++sock->stats_.datagrams_received;
  sock->stats_.bytes_received += wire_size;
  // Dispatch before releasing: the handler may itself send, which can pop
  // the free list, but this buffer is still referenced until after return.
  if (sock->handler_) sock->handler_(from, data->bytes);
  release_ref(data);
}

}  // namespace ftvod::net
