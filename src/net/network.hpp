// Simulated datagram network. Models, per packet:
//   * serialization delay at the sender's uplink (rate + tail-drop queue),
//   * propagation delay with uniform jitter (reordering emerges naturally),
//   * i.i.d. loss, Gilbert–Elliott bursty loss, and optional duplication,
//   * payload corruption (bit flips) and truncation in flight,
//   * explicit reordering (an occasional extra delivery delay),
//   * host crashes and network partitions.
//
// This substrate stands in for the paper's switched-Ethernet LAN and 7-hop
// WAN testbeds (DESIGN.md §2).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/quality.hpp"
#include "net/socket.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ftvod::net {

struct HostStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t dropped_unreachable = 0;  // partition/crash/no socket
  /// Subset of dropped_loss lost while the Gilbert–Elliott channel was in
  /// its bad state (i.e. attributable to a burst rather than the i.i.d.
  /// floor).
  std::uint64_t dropped_burst = 0;
  std::uint64_t corrupted = 0;   // payloads damaged by bit flips in flight
  std::uint64_t truncated = 0;   // payloads cut short in flight
  std::uint64_t reordered = 0;   // deliveries given the extra reorder delay
};

class Network {
 public:
  /// Per-datagram wire overhead charged on top of the payload (IP + UDP).
  static constexpr std::size_t kHeaderBytes = 28;

  Network(sim::Scheduler& sched, util::Rng& rng)
      : sched_(&sched), rng_(&rng) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a host and returns its id (ids are dense, starting at 0).
  NodeId add_host(std::string name, HostConfig cfg = {});
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const std::string& host_name(NodeId id) const;

  /// Binds a receive handler; at most one socket per (node, port).
  [[nodiscard]] std::unique_ptr<Socket> bind(NodeId node, Port port,
                                             Socket::RecvHandler handler);

  /// Link quality applied to every pair without an explicit override.
  void set_default_quality(const LinkQuality& q) { default_quality_ = q; }
  /// Symmetric per-pair override.
  void set_quality(NodeId a, NodeId b, const LinkQuality& q);
  /// Removes a per-pair override, reverting the pair to the default
  /// quality (used to heal transient link degradations).
  void clear_quality(NodeId a, NodeId b);
  [[nodiscard]] const LinkQuality& quality(NodeId a, NodeId b) const;

  /// Splits the network into components; packets cross components only
  /// within the same component. Hosts not mentioned form an implicit
  /// final component together.
  void partition(const std::vector<std::set<NodeId>>& components);
  void heal();

  /// Silent fail-stop: in-flight and future traffic to/from the host is
  /// dropped, and registered crash listeners fire (so co-located protocol
  /// stacks stop their timers).
  void crash_host(NodeId node);
  void restore_host(NodeId node);
  [[nodiscard]] bool alive(NodeId node) const;

  /// True when a and b are both alive and in the same partition component
  /// (a host always reaches itself while alive). Exposed so monitors can
  /// condition liveness expectations on actual connectivity.
  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;

  /// Registers a callback invoked when `node` crashes.
  void on_crash(NodeId node, std::function<void()> listener);

  [[nodiscard]] const HostStats& stats(NodeId node) const;
  [[nodiscard]] std::uint64_t total_wire_bytes() const {
    return total_wire_bytes_;
  }

  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  /// The shared deterministic randomness source. Protocol components draw
  /// their jitter (e.g. retry backoff) from it so a whole run stays
  /// reproducible from the one seed.
  [[nodiscard]] util::Rng& rng() { return *rng_; }

 private:
  friend class Socket;

  struct Host {
    std::string name;
    HostConfig cfg;
    bool alive = true;
    sim::Time uplink_free_at = 0;    // when the uplink drains its queue
    sim::Time downlink_free_at = 0;  // when the downlink drains its queue
    std::unordered_map<Port, Socket*> sockets;
    std::vector<std::function<void()>> crash_listeners;
    HostStats stats;
  };

  /// In-flight payload storage. Buffers are pooled and intrusively
  /// refcounted: each scheduled (or directly invoked) delivery holds one
  /// reference, and the buffer returns to the free list — capacity intact —
  /// when the last copy is dispatched or dropped. This keeps the per-packet
  /// path free of heap allocations in steady state (no shared_ptr control
  /// blocks, no fresh byte vectors).
  struct PayloadBuffer {
    util::Bytes bytes;
    std::uint32_t refs = 0;
  };

  void send_from_socket(Socket& src, const Endpoint& to,
                        std::span<const std::byte> payload,
                        std::size_t padding_bytes);
  /// Link arrival: applies downlink serialization/queueing, then hands off.
  /// Consumes one reference on `data`.
  void deliver(Endpoint from, Endpoint to, PayloadBuffer* data,
               std::size_t wire_size);
  /// Final dispatch to the bound socket. Consumes one reference on `data`.
  void hand_off(Endpoint from, Endpoint to, PayloadBuffer* data,
                std::size_t wire_size);
  void unbind(const Socket& s);

  PayloadBuffer* acquire_buffer(std::span<const std::byte> payload);
  void release_ref(PayloadBuffer* data);

  /// Applies in-flight damage (bit flips, truncation) to the pooled copy of
  /// a packet according to the link quality; returns true if damaged.
  bool apply_damage(const LinkQuality& q, Host& sender, PayloadBuffer& data);

  sim::Scheduler* sched_;
  util::Rng* rng_;
  std::vector<Host> hosts_;
  LinkQuality default_quality_{};
  std::map<std::pair<NodeId, NodeId>, LinkQuality> quality_overrides_;
  // Gilbert–Elliott channel state per unordered host pair: true == bad
  // (lossy) state. Lazily created on the first packet of a bursty link.
  std::map<std::pair<NodeId, NodeId>, bool> burst_state_;
  // Partition state as a per-host component id: reachable() is O(1) instead
  // of scanning component sets per packet. Hosts not named by partition()
  // share the implicit component id (== number of explicit components).
  bool partitioned_ = false;
  std::uint32_t implicit_component_ = 0;
  std::vector<std::uint32_t> component_;
  std::vector<std::unique_ptr<PayloadBuffer>> buffer_slab_;
  std::vector<PayloadBuffer*> buffer_free_;
  std::uint64_t total_wire_bytes_ = 0;
};

}  // namespace ftvod::net
