// UDP-like datagram socket bound to a (node, port). Obtained from
// Network::bind(); unbinds itself on destruction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/address.hpp"
#include "util/codec.hpp"

namespace ftvod::net {

class Network;

struct SocketStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;      // wire bytes including padding+headers
  std::uint64_t bytes_received = 0;  // wire bytes including padding+headers
  /// Datagrams that arrived but failed integrity verification (length or
  /// CRC32C mismatch) and were discarded before any decoding. Bumped by the
  /// owning protocol component via note_corrupt_dropped().
  std::uint64_t corrupt_dropped = 0;
};

class Socket {
 public:
  using RecvHandler =
      std::function<void(const Endpoint& from, std::span<const std::byte>)>;

  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Sends a datagram. The payload is copied into a network-owned pooled
  /// buffer, so the caller keeps (and may immediately reuse) its own bytes.
  /// `padding_bytes` inflates the accounted wire size without carrying real
  /// bytes (used for synthetic video frame bodies).
  void send(const Endpoint& to, std::span<const std::byte> payload,
            std::size_t padding_bytes = 0);

  [[nodiscard]] Endpoint local() const { return local_; }
  [[nodiscard]] const SocketStats& stats() const { return stats_; }

  /// Records a datagram discarded for failing integrity verification. The
  /// network cannot count this itself — damage is only detectable above the
  /// socket, where the framing layer checks the checksum.
  void note_corrupt_dropped() { ++stats_.corrupt_dropped; }

 private:
  friend class Network;
  Socket(Network& net, Endpoint local, RecvHandler handler)
      : net_(&net), local_(local), handler_(std::move(handler)) {}

  Network* net_;
  Endpoint local_;
  RecvHandler handler_;
  SocketStats stats_;
};

}  // namespace ftvod::net
