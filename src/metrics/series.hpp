// Time series and summary statistics for the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ftvod::metrics {

struct Sample {
  sim::Time t = 0;
  double value = 0.0;
};

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void append(sim::Time t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double last() const {
    return samples_.empty() ? 0.0 : samples_.back().value;
  }

  /// Samples in the half-open window [from, to).
  [[nodiscard]] std::vector<Sample> window(sim::Time from, sim::Time to) const {
    std::vector<Sample> out;
    for (const Sample& s : samples_) {
      if (s.t >= from && s.t < to) out.push_back(s);
    }
    return out;
  }

  [[nodiscard]] Summary summary() const { return summarize(samples_); }

  static Summary summarize(const std::vector<Sample>& samples) {
    Summary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    std::vector<double> v;
    v.reserve(samples.size());
    for (const Sample& x : samples) v.push_back(x.value);
    std::sort(v.begin(), v.end());
    s.min = v.front();
    s.max = v.back();
    double sum = 0.0;
    for (double x : v) sum += x;
    s.mean = sum / static_cast<double>(v.size());
    double sq = 0.0;
    for (double x : v) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(v.size()));
    auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(v.size() - 1) + 0.5);
      return v[std::min(idx, v.size() - 1)];
    };
    s.p50 = pct(0.50);
    s.p99 = pct(0.99);
    return s;
  }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace ftvod::metrics
