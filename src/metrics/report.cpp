#include "metrics/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ftvod::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
         << cell << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_csv(std::ostream& os, const TimeSeries& series) {
  os << "t_seconds," << series.name() << '\n';
  for (const Sample& s : series.samples()) {
    os << sim::to_sec(s.t) << ',' << s.value << '\n';
  }
}

void print_ascii_chart(std::ostream& os, const TimeSeries& series, int width,
                       int height) {
  const auto& samples = series.samples();
  os << "--- " << series.name() << " ---\n";
  if (samples.empty()) {
    os << "(no samples)\n";
    return;
  }
  double vmin = samples.front().value;
  double vmax = vmin;
  for (const Sample& s : samples) {
    vmin = std::min(vmin, s.value);
    vmax = std::max(vmax, s.value);
  }
  if (vmax == vmin) vmax = vmin + 1.0;
  const sim::Time tmin = samples.front().t;
  const sim::Time tmax = std::max(samples.back().t, tmin + 1);

  // Column value = last sample falling into that time bucket.
  std::vector<double> cols(static_cast<std::size_t>(width),
                           std::nan(""));
  for (const Sample& s : samples) {
    auto col = static_cast<std::size_t>(
        static_cast<double>(s.t - tmin) / static_cast<double>(tmax - tmin) *
        (width - 1));
    col = std::min(col, cols.size() - 1);
    cols[col] = s.value;
  }
  // Carry forward to fill gaps.
  double prev = samples.front().value;
  for (double& c : cols) {
    if (std::isnan(c)) {
      c = prev;
    } else {
      prev = c;
    }
  }

  for (int row = height - 1; row >= 0; --row) {
    const double lo = vmin + (vmax - vmin) * row / height;
    const double hi = vmin + (vmax - vmin) * (row + 1) / height;
    std::ostringstream label;
    label << std::setw(10) << std::fixed << std::setprecision(1) << hi;
    os << label.str() << " |";
    for (double c : cols) {
      os << (c >= lo ? (c < hi ? '*' : '|') : ' ');
    }
    os << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(width, '-') << '\n';
  std::ostringstream axis;
  axis << std::string(11, ' ') << ' ' << sim::to_sec(tmin) << "s";
  const std::string right = Table::num(sim::to_sec(tmax), 1) + "s";
  std::string line = axis.str();
  const std::size_t target = 12 + width - right.size();
  if (line.size() < target) line += std::string(target - line.size(), ' ');
  line += right;
  os << line << '\n';
}

}  // namespace ftvod::metrics
