// Recorder: named counters and time series collected during a run.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metrics/series.hpp"

namespace ftvod::metrics {

class Recorder {
 public:
  /// Named monotonically increasing counter.
  void count(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Appends to the named series (created on first use).
  void sample(const std::string& name, sim::Time t, double value) {
    series_at(name).append(t, value);
  }
  [[nodiscard]] TimeSeries& series_at(const std::string& name) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      it = series_.emplace(name, TimeSeries(name)).first;
    }
    return it->second;
  }
  [[nodiscard]] const TimeSeries* series(const std::string& name) const {
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<std::string, TimeSeries>& all_series() const {
    return series_;
  }

  void clear() {
    counters_.clear();
    series_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace ftvod::metrics
