// Console rendering for the benchmark harnesses: aligned tables, CSV dumps
// and ASCII charts that reproduce the paper's figures as printable series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/series.hpp"

namespace ftvod::metrics {

/// Fixed-column table: add_row aligns cells under headers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Emits "t_seconds,value" lines.
void print_csv(std::ostream& os, const TimeSeries& series);

/// Renders the series as a fixed-size ASCII chart (value vs time), the way
/// the paper's figures plot cumulative counters and buffer occupancy.
void print_ascii_chart(std::ostream& os, const TimeSeries& series, int width = 78,
                       int height = 16);

}  // namespace ftvod::metrics
