// VoD protocol messages. Control messages travel through GCS groups
// (server group, movie groups, session groups); video frames travel as raw
// datagrams from the server's data socket to the client's data socket.
// Every datagram carries the 8-byte integrity header (util/frame.hpp);
// decoders verify length + CRC32C before reading a single field and
// bounds-check semantic values (rates, ops, counts), so a damaged or
// hostile datagram is rejected exactly like a lost one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpeg/frame.hpp"
#include "net/address.hpp"
#include "util/codec.hpp"
#include "util/frame.hpp"

namespace ftvod::vod::wire {

enum class MsgType : std::uint8_t {
  kOpenRequest = 1,  // client -> server group
  kOpenReply = 2,    // server -> session group
  kFlow = 3,         // client -> session group
  kEmergency = 4,    // client -> session group
  kVcr = 5,          // client -> session group
  kSetQuality = 6,   // client -> session group
  kStateSync = 7,    // server -> movie group
  kFrame = 8,        // server -> client data socket
};

struct OpenRequest {
  std::uint64_t client_id = 0;
  std::string movie;
  net::Endpoint data_endpoint;
  double capability_fps = 0.0;  // 0 = full quality
};

struct OpenReply {
  std::uint64_t client_id = 0;
  std::string movie;
  double fps = 0.0;
  std::uint64_t frame_count = 0;
  std::uint32_t avg_frame_bytes = 0;
};

struct Flow {
  std::uint64_t client_id = 0;
  std::int8_t delta = 0;  // +1 increase, -1 decrease (frames per second)
};

/// tier 1 = critical (<15% occupancy), tier 2 = serious (<30%).
struct Emergency {
  std::uint64_t client_id = 0;
  std::uint8_t tier = 1;
};

enum class VcrOp : std::uint8_t { kPause = 1, kResume = 2, kSeek = 3, kStop = 4 };

struct Vcr {
  std::uint64_t client_id = 0;
  VcrOp op = VcrOp::kPause;
  std::uint64_t seek_frame = 0;
};

struct SetQuality {
  std::uint64_t client_id = 0;
  double fps = 0.0;
};

/// One served client, as shared with the movie group every sync period.
struct ClientRecord {
  std::uint64_t client_id = 0;
  net::Endpoint data_endpoint;
  std::uint64_t next_frame = 0;  // transmission offset in the movie
  double rate_fps = 0.0;
  double quality_fps = 0.0;  // 0 = full quality
  double capability_fps = 0.0;
  bool paused = false;
};

struct StateSync {
  std::string movie;
  /// 0 = periodic sync. Nonzero = table exchange for the movie-group view
  /// with this tag; every member decides the re-distribution at the moment
  /// it has delivered the tagged tables of all view members, which is the
  /// same position in the total order everywhere.
  std::uint64_t exchange_tag = 0;
  std::vector<ClientRecord> clients;
};

struct Frame {
  std::uint64_t client_id = 0;
  std::uint64_t frame_index = 0;
  mpeg::FrameType type = mpeg::FrameType::kI;
  std::uint32_t size_bytes = 0;
};

/// Encoded size of a Frame header, integrity framing included (the rest of
/// the frame's bytes are accounted as padding on the data socket).
inline constexpr std::size_t kFrameHeaderBytes =
    util::kIntegrityHeaderBytes + 1 + 8 + 8 + 1 + 4;

/// encode_into() clears `w` and encodes the message into it, reusing the
/// writer's capacity — the allocation-free path for per-frame/per-tick
/// senders that keep a long-lived scratch Writer. encode() is the
/// convenience wrapper returning a fresh buffer.
void encode_into(const OpenRequest& m, util::Writer& w);
void encode_into(const OpenReply& m, util::Writer& w);
void encode_into(const Flow& m, util::Writer& w);
void encode_into(const Emergency& m, util::Writer& w);
void encode_into(const Vcr& m, util::Writer& w);
void encode_into(const SetQuality& m, util::Writer& w);
void encode_into(const StateSync& m, util::Writer& w);
void encode_into(const Frame& m, util::Writer& w);

util::Bytes encode(const OpenRequest& m);
util::Bytes encode(const OpenReply& m);
util::Bytes encode(const Flow& m);
util::Bytes encode(const Emergency& m);
util::Bytes encode(const Vcr& m);
util::Bytes encode(const SetQuality& m);
util::Bytes encode(const StateSync& m);
util::Bytes encode(const Frame& m);

std::optional<MsgType> peek_type(std::span<const std::byte> data);
std::optional<OpenRequest> decode_open_request(std::span<const std::byte> d);
std::optional<OpenReply> decode_open_reply(std::span<const std::byte> d);
std::optional<Flow> decode_flow(std::span<const std::byte> d);
std::optional<Emergency> decode_emergency(std::span<const std::byte> d);
std::optional<Vcr> decode_vcr(std::span<const std::byte> d);
std::optional<SetQuality> decode_set_quality(std::span<const std::byte> d);
std::optional<StateSync> decode_state_sync(std::span<const std::byte> d);
std::optional<Frame> decode_frame(std::span<const std::byte> d);

}  // namespace ftvod::vod::wire
