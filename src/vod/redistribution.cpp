#include "vod/redistribution.hpp"

#include <algorithm>

namespace ftvod::vod {

namespace {

bool is_member(const std::vector<net::NodeId>& servers, net::NodeId n) {
  return std::binary_search(servers.begin(), servers.end(), n);
}

}  // namespace

Assignment rebalance(const Assignment& current,
                     const std::vector<net::NodeId>& servers,
                     RebalancePolicy policy) {
  Assignment out;
  if (servers.empty()) {
    for (const auto& [client, owner] : current) {
      out[client] = net::kInvalidNode;
    }
    return out;
  }

  // Load ceiling: clients spread to within one of each other.
  const std::size_t n_clients = current.size();
  const std::size_t n_servers = servers.size();
  const std::size_t base = n_clients / n_servers;
  std::size_t extra = n_clients % n_servers;  // first `extra` servers get +1

  // Quota per server: everyone gets the base; the remainder order depends
  // on the policy. kSpread hands it to the *least-loaded* servers first
  // (ties to the lowest id) — this is what makes a freshly started, empty
  // server attract clients, the paper's "new servers may be brought up on
  // the fly to alleviate the load". kStable keeps it with the currently
  // most-loaded servers so nothing moves unnecessarily.
  std::map<net::NodeId, std::size_t> load;
  for (net::NodeId s : servers) load[s] = 0;
  for (const auto& [client, owner] : current) {
    if (auto it = load.find(owner); it != load.end()) ++it->second;
  }
  std::vector<net::NodeId> by_load = servers;
  std::stable_sort(by_load.begin(), by_load.end(),
                   [&](net::NodeId a, net::NodeId b) {
                     if (load[a] != load[b]) {
                       return policy == RebalancePolicy::kSpread
                                  ? load[a] < load[b]
                                  : load[a] > load[b];
                     }
                     return a < b;
                   });
  std::map<net::NodeId, std::size_t> quota;
  for (net::NodeId s : servers) quota[s] = base;
  for (net::NodeId s : by_load) {
    if (extra == 0) break;
    ++quota[s];
    --extra;
  }

  // Pass 1 (stability): keep clients on their surviving owner up to quota.
  // Iterating the (ordered) map keeps the choice of which clients overflow
  // deterministic: the highest client ids of an overloaded server move.
  std::vector<std::uint64_t> orphans;
  for (const auto& [client, owner] : current) {
    if (is_member(servers, owner) && quota[owner] > 0) {
      out[client] = owner;
      --quota[owner];
    } else {
      orphans.push_back(client);
    }
  }

  // Pass 2: place orphans into remaining quota, lowest server id first.
  for (std::uint64_t client : orphans) {
    for (net::NodeId s : servers) {
      if (quota[s] > 0) {
        out[client] = s;
        --quota[s];
        break;
      }
    }
  }
  return out;
}

net::NodeId choose_for_new_client(const Assignment& current,
                                  const std::vector<net::NodeId>& servers) {
  if (servers.empty()) return net::kInvalidNode;
  std::map<net::NodeId, std::size_t> load;
  for (net::NodeId s : servers) load[s] = 0;
  for (const auto& [client, owner] : current) {
    if (auto it = load.find(owner); it != load.end()) ++it->second;
  }
  net::NodeId best = servers.front();
  for (net::NodeId s : servers) {
    if (load[s] < load[best] || (load[s] == load[best] && s < best)) best = s;
  }
  return best;
}

}  // namespace ftvod::vod
