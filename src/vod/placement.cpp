#include "vod/placement.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace ftvod::vod {

namespace {
constexpr std::string_view kLog = "vod.placement";

bool contains_sorted(const std::vector<net::NodeId>& v, net::NodeId n) {
  return std::binary_search(v.begin(), v.end(), n);
}

void insert_sorted(std::vector<net::NodeId>& v, net::NodeId n) {
  v.insert(std::lower_bound(v.begin(), v.end(), n), n);
}

void erase_sorted(std::vector<net::NodeId>& v, net::NodeId n) {
  const auto it = std::lower_bound(v.begin(), v.end(), n);
  if (it != v.end() && *it == n) v.erase(it);
}

}  // namespace

// ----------------------------------------------------------- PlacementModel

void PlacementModel::add_title(const std::string& title) {
  titles_.try_emplace(title);
}

const std::vector<net::NodeId>& PlacementModel::replicas(
    const std::string& title) const {
  static const std::vector<net::NodeId> kEmpty;
  const auto it = titles_.find(title);
  return it == titles_.end() ? kEmpty : it->second.replicas;
}

std::size_t PlacementModel::load(net::NodeId node) const {
  const auto it = load_.find(node);
  return it == load_.end() ? 0 : it->second;
}

std::size_t PlacementModel::target_replicas(std::size_t viewer_count,
                                            std::size_t live_servers) const {
  const std::size_t floor_eff =
      viewer_count > 0 ? cfg_.replication_floor : cfg_.idle_replicas;
  const std::size_t demand =
      (viewer_count + cfg_.viewers_per_replica - 1) / cfg_.viewers_per_replica;
  return std::min(std::max(floor_eff, demand), live_servers);
}

std::vector<PlacementOp> PlacementModel::step(
    const std::map<std::string, std::size_t>& viewers,
    const std::vector<net::NodeId>& live_servers) {
  std::vector<PlacementOp> ops;
  std::vector<net::NodeId> live = live_servers;
  std::sort(live.begin(), live.end());
  const double vpr = static_cast<double>(cfg_.viewers_per_replica);

  for (auto& [title, st] : titles_) {
    if (st.cooldown > 0) {
      --st.cooldown;
      continue;
    }
    const auto vit = viewers.find(title);
    const std::size_t v = vit == viewers.end() ? 0 : vit->second;
    std::size_t live_held = 0;
    for (const net::NodeId n : st.replicas) {
      if (contains_sorted(live, n)) ++live_held;
    }
    const std::size_t target = target_replicas(v, live.size());

    if (live_held < target) {
      // Grow to the target in one period: a flash crowd must not wait one
      // control period per replica. Spread new copies to the emptiest
      // servers (ties to the lowest node id — same rule on every run).
      std::size_t needed = target - live_held;
      while (needed > 0) {
        net::NodeId best = net::kInvalidNode;
        std::size_t best_load = 0;
        for (const net::NodeId n : live) {
          if (contains_sorted(st.replicas, n)) continue;
          const std::size_t l = load(n);
          if (best == net::kInvalidNode || l < best_load) {
            best = n;
            best_load = l;
          }
        }
        if (best == net::kInvalidNode) break;  // every live server holds it
        insert_sorted(st.replicas, best);
        ++load_[best];
        ops.push_back({PlacementOp::Kind::kAdd, title, best});
        --needed;
      }
      st.cooldown = cfg_.cooldown_periods;
    } else if (live_held > target && live_held > 1) {
      // Shrink at most one replica per period, and only when the survivors
      // would still be under shrink_margin of their capacity — the dead
      // band that keeps constant demand from flapping add/drop. Retire the
      // copy on the fullest server (ties to the highest id).
      const std::size_t floor_eff =
          v > 0 ? cfg_.replication_floor : cfg_.idle_replicas;
      const bool under_margin =
          static_cast<double>(v) <=
          cfg_.shrink_margin * vpr * static_cast<double>(live_held - 1);
      if (under_margin && live_held - 1 >= std::min(floor_eff, live.size())) {
        net::NodeId victim = net::kInvalidNode;
        std::size_t victim_load = 0;
        for (const net::NodeId n : st.replicas) {
          if (!contains_sorted(live, n)) continue;
          const std::size_t l = load(n);
          if (victim == net::kInvalidNode || l >= victim_load) {
            victim = n;
            victim_load = l;
          }
        }
        if (victim != net::kInvalidNode) {
          erase_sorted(st.replicas, victim);
          --load_[victim];
          ops.push_back({PlacementOp::Kind::kDrop, title, victim});
          st.cooldown = cfg_.cooldown_periods;
        }
      }
    }
  }
  return ops;
}

// ------------------------------------------------------ PlacementController

PlacementController::PlacementController(Deployment& dep, PlacementConfig cfg)
    : dep_(&dep),
      model_(cfg),
      timer_(dep.scheduler(), cfg.control_period, [this] { tick_now(); }) {}

void PlacementController::manage(std::shared_ptr<const mpeg::Movie> movie) {
  model_.add_title(movie->name());
  managed_[movie->name()] = std::move(movie);
}

void PlacementController::start() { timer_.start(); }

std::vector<net::NodeId> PlacementController::live_servers() const {
  std::vector<net::NodeId> live;
  for (const auto& sn : dep_->servers()) {
    if (sn->server && !sn->server->halted() &&
        dep_->network().alive(sn->node)) {
      live.push_back(sn->node);
    }
  }
  return live;
}

void PlacementController::collect_demand(
    std::map<std::string, std::size_t>& out) const {
  if (demand_source_) {
    demand_source_(out);
    return;
  }
  for (const auto& cn : dep_->clients()) {
    const VodClient& c = *cn->client;
    if (c.watching() && managed_.contains(c.movie())) ++out[c.movie()];
  }
}

std::size_t PlacementController::reconcile(
    const std::vector<net::NodeId>& live) {
  std::size_t restored = 0;
  for (const net::NodeId node : live) {
    Deployment::ServerNode* sn = dep_->find_server(node);
    if (sn == nullptr || !sn->server) continue;
    for (const auto& [title, movie] : managed_) {
      if (contains_sorted(model_.replicas(title), node) &&
          !sn->server->catalog().contains(title)) {
        sn->server->add_movie(movie);
        ++restored;
        util::log_info(kLog, "re-registered '", title, "' on n", node,
                       " (rejoined with empty catalog)");
      }
    }
  }
  return restored;
}

void PlacementController::tick_now() {
  ++stats_.ticks;
  const std::vector<net::NodeId> live = live_servers();
  if (live.empty()) return;

  // Desired-vs-actual first: a restarted server re-registers its catalog
  // before the model reads the world, so the demand step never double-adds.
  stats_.reregistrations += reconcile(live);

  std::map<std::string, std::size_t> demand;
  collect_demand(demand);

  const std::vector<PlacementOp> ops = model_.step(demand, live);
  for (const PlacementOp& op : ops) {
    Deployment::ServerNode* sn = dep_->find_server(op.node);
    if (sn == nullptr || !sn->server) continue;
    const auto mit = managed_.find(op.title);
    if (mit == managed_.end()) continue;
    if (op.kind == PlacementOp::Kind::kAdd) {
      ++stats_.adds;
      sn->server->add_movie(mit->second);
    } else {
      ++stats_.drops;
      sn->server->remove_movie(op.title);
    }
  }
  quiet_ticks_ = ops.empty() ? quiet_ticks_ + 1 : 0;
}

void PlacementController::handle_restart(net::NodeId node) {
  if (!dep_->network().alive(node)) return;
  stats_.reregistrations += reconcile({node});
}

}  // namespace ftvod::vod
