#include "vod/wire.hpp"

#include <cmath>

namespace ftvod::vod::wire {

namespace {

void begin(util::Writer& w, MsgType t) {
  util::frame_begin(w);  // clears w, reserves the integrity header
  w.u8(static_cast<std::uint8_t>(t));
}

/// Verifies the integrity frame and the tag, returning a reader positioned
/// on the first body field. Damaged datagrams never reach a decoder.
std::optional<util::Reader> body(std::span<const std::byte> data, MsgType t) {
  const auto opened = util::frame_open(data);
  if (!opened) return std::nullopt;
  util::Reader r(*opened);
  if (r.u8() != static_cast<std::uint8_t>(t) || !r.ok()) return std::nullopt;
  return r;
}

/// Rejects NaN/infinity and negative rates — values no honest encoder
/// produces, which would otherwise poison flow-control arithmetic.
void check_fps(util::Reader& r, double fps) {
  if (!std::isfinite(fps) || fps < 0.0) r.fail();
}

void put_endpoint(util::Writer& w, const net::Endpoint& e) {
  w.u32(e.node);
  w.u16(e.port);
}

net::Endpoint get_endpoint(util::Reader& r) {
  net::Endpoint e;
  e.node = r.u32();
  e.port = r.u16();
  return e;
}

}  // namespace

std::optional<MsgType> peek_type(std::span<const std::byte> data) {
  // Structural frame check only (no CRC): demux is on the hot path, and the
  // per-type decoder re-verifies the full checksum via body().
  const auto opened = util::frame_peek(data);
  if (!opened || opened->empty()) return std::nullopt;
  const auto t = std::to_integer<std::uint8_t>((*opened)[0]);
  if (t < static_cast<std::uint8_t>(MsgType::kOpenRequest) ||
      t > static_cast<std::uint8_t>(MsgType::kFrame)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(t);
}

void encode_into(const OpenRequest& m, util::Writer& w) {
  begin(w, MsgType::kOpenRequest);
  w.u64(m.client_id);
  w.str(m.movie);
  put_endpoint(w, m.data_endpoint);
  w.f64(m.capability_fps);
  util::frame_seal(w);
}

util::Bytes encode(const OpenRequest& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<OpenRequest> decode_open_request(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kOpenRequest);
  if (!r) return std::nullopt;
  OpenRequest m;
  m.client_id = r->u64();
  m.movie = r->str();
  m.data_endpoint = get_endpoint(*r);
  m.capability_fps = r->f64();
  check_fps(*r, m.capability_fps);
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const OpenReply& m, util::Writer& w) {
  begin(w, MsgType::kOpenReply);
  w.u64(m.client_id);
  w.str(m.movie);
  w.f64(m.fps);
  w.u64(m.frame_count);
  w.u32(m.avg_frame_bytes);
  util::frame_seal(w);
}

util::Bytes encode(const OpenReply& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<OpenReply> decode_open_reply(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kOpenReply);
  if (!r) return std::nullopt;
  OpenReply m;
  m.client_id = r->u64();
  m.movie = r->str();
  m.fps = r->f64();
  m.frame_count = r->u64();
  m.avg_frame_bytes = r->u32();
  check_fps(*r, m.fps);
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Flow& m, util::Writer& w) {
  begin(w, MsgType::kFlow);
  w.u64(m.client_id);
  w.u8(static_cast<std::uint8_t>(m.delta));
  util::frame_seal(w);
}

util::Bytes encode(const Flow& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Flow> decode_flow(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kFlow);
  if (!r) return std::nullopt;
  Flow m;
  m.client_id = r->u64();
  m.delta = static_cast<std::int8_t>(r->u8());
  if (m.delta != 1 && m.delta != -1) r->fail();  // only ±1 steps exist
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Emergency& m, util::Writer& w) {
  begin(w, MsgType::kEmergency);
  w.u64(m.client_id);
  w.u8(m.tier);
  util::frame_seal(w);
}

util::Bytes encode(const Emergency& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Emergency> decode_emergency(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kEmergency);
  if (!r) return std::nullopt;
  Emergency m;
  m.client_id = r->u64();
  m.tier = r->u8();
  if (m.tier != 1 && m.tier != 2) r->fail();  // critical or serious only
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Vcr& m, util::Writer& w) {
  begin(w, MsgType::kVcr);
  w.u64(m.client_id);
  w.u8(static_cast<std::uint8_t>(m.op));
  w.u64(m.seek_frame);
  util::frame_seal(w);
}

util::Bytes encode(const Vcr& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Vcr> decode_vcr(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kVcr);
  if (!r) return std::nullopt;
  Vcr m;
  m.client_id = r->u64();
  m.op = static_cast<VcrOp>(r->u8());
  m.seek_frame = r->u64();
  if (m.op < VcrOp::kPause || m.op > VcrOp::kStop) r->fail();
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const SetQuality& m, util::Writer& w) {
  begin(w, MsgType::kSetQuality);
  w.u64(m.client_id);
  w.f64(m.fps);
  util::frame_seal(w);
}

util::Bytes encode(const SetQuality& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<SetQuality> decode_set_quality(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kSetQuality);
  if (!r) return std::nullopt;
  SetQuality m;
  m.client_id = r->u64();
  m.fps = r->f64();
  check_fps(*r, m.fps);
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const StateSync& m, util::Writer& w) {
  begin(w, MsgType::kStateSync);
  w.str(m.movie);
  w.u64(m.exchange_tag);
  w.u32(static_cast<std::uint32_t>(m.clients.size()));
  for (const ClientRecord& c : m.clients) {
    w.u64(c.client_id);
    put_endpoint(w, c.data_endpoint);
    w.u64(c.next_frame);
    w.f64(c.rate_fps);
    w.f64(c.quality_fps);
    w.f64(c.capability_fps);
    w.boolean(c.paused);
  }
  util::frame_seal(w);
}

util::Bytes encode(const StateSync& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<StateSync> decode_state_sync(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kStateSync);
  if (!r) return std::nullopt;
  StateSync m;
  m.movie = r->str();
  m.exchange_tag = r->u64();
  const std::uint32_t n = r->u32();
  // Each encoded ClientRecord is exactly 47 bytes; a count the remaining
  // bytes cannot hold is malformed — reject before reserving anything.
  if (!r->ok() || n > r->remaining() / 47) return std::nullopt;
  m.clients.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ClientRecord c;
    c.client_id = r->u64();
    c.data_endpoint = get_endpoint(*r);
    c.next_frame = r->u64();
    c.rate_fps = r->f64();
    c.quality_fps = r->f64();
    c.capability_fps = r->f64();
    c.paused = r->boolean();
    check_fps(*r, c.rate_fps);
    check_fps(*r, c.quality_fps);
    check_fps(*r, c.capability_fps);
    m.clients.push_back(c);
  }
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Frame& m, util::Writer& w) {
  begin(w, MsgType::kFrame);
  w.u64(m.client_id);
  w.u64(m.frame_index);
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u32(m.size_bytes);
  util::frame_seal(w);
}

util::Bytes encode(const Frame& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Frame> decode_frame(std::span<const std::byte> d) {
  auto r = body(d, MsgType::kFrame);
  if (!r) return std::nullopt;
  Frame m;
  m.client_id = r->u64();
  m.frame_index = r->u64();
  m.type = static_cast<mpeg::FrameType>(r->u8());
  m.size_bytes = r->u32();
  if (m.type > mpeg::FrameType::kB) r->fail();
  if (!r->done()) return std::nullopt;
  return m;
}

}  // namespace ftvod::vod::wire
