// Tunable parameters of the VoD service. Defaults are the prototype values
// reported in the paper (§4.2, §6): 37-frame software buffer, 240 KB
// hardware buffer (~1.2 s of 1.4 Mbps video), water marks at 73%/88% of the
// total buffer space, flow-control messages every 8 received frames (4 when
// urgent), two-tier emergency bursts (q=12 below 15% occupancy, q=6 below
// 30%) decaying by 0.8 per second, and state synchronization every 0.5 s.
#pragma once

#include <cstdint>

#include "net/address.hpp"
#include "sim/time.hpp"
#include "vod/redistribution.hpp"

namespace ftvod::vod {

struct VodParams {
  // --- client buffers -----------------------------------------------------
  std::size_t sw_buffer_frames = 37;
  std::size_t hw_buffer_bytes = 240 * 1024;
  /// Display begins once the hardware buffer first holds this many frames.
  int display_prefill_frames = 2;

  // --- flow control (Figure 2) --------------------------------------------
  double low_water_frac = 0.73;
  double high_water_frac = 0.88;
  /// Below this fraction: serious emergency (tier 2, base quantity q2).
  double emergency_tier2_frac = 0.30;
  /// Below this fraction: critical emergency (tier 1, base quantity q1).
  double emergency_tier1_frac = 0.15;
  int flow_normal_every = 8;  // received frames per flow message, in-band
  int flow_urgent_every = 4;  // received frames per flow message, out-of-band
  double rate_step_fps = 1.0;  // each request adjusts by one frame/second

  // --- emergency bursts (§4.1) --------------------------------------------
  int emergency_q1 = 12;  // extra frames/s, critical tier
  int emergency_q2 = 6;   // extra frames/s, serious tier
  double emergency_decay = 0.8;  // applied (integer-truncated) every period
  sim::Duration emergency_decay_period = sim::sec(1.0);
  /// Client re-sends an emergency at most this often while still starving.
  sim::Duration emergency_resend_interval = sim::sec(1.0);
  /// Client-side occupancy watchdog (emergencies must fire even when no
  /// frames arrive to trigger receive-path checks).
  sim::Duration watchdog_period = sim::msec(100);

  // --- server -----------------------------------------------------------
  sim::Duration sync_period = sim::msec(500);  // state multicast period
  double default_rate_fps = 30.0;              // startup transmission rate
  double min_rate_fps = 5.0;
  double max_rate_fps = 60.0;
  /// After a movie-group view change, wait at most this long for the other
  /// servers' client tables (delivered by the periodic sync) before
  /// computing the new assignment. Must exceed sync_period.
  sim::Duration table_exchange_delay = sim::msec(700);
  /// Remainder policy of the deterministic re-distribution. All servers of
  /// a movie group must agree on this, or their independently computed
  /// assignments diverge (the chaos invariant monitor checks exactly that).
  RebalancePolicy rebalance_policy = RebalancePolicy::kSpread;

  // --- transport ----------------------------------------------------------
  net::Port server_data_port = 9000;
  net::Port client_data_port = 9100;
  /// Base OpenRequest retry interval. Retries back off exponentially
  /// (doubling, plus uniform jitter of up to a quarter of the current
  /// delay) up to open_retry_cap, so a long server outage is not hammered
  /// by every waiting client in lockstep.
  sim::Duration open_retry = sim::sec(1.0);
  sim::Duration open_retry_cap = sim::sec(8.0);
  /// A connected client that receives nothing for this long (while not
  /// paused and not at the end of the movie) assumes its session was lost
  /// (e.g. it was partitioned away long enough to be declared failed) and
  /// re-requests the movie from the server group.
  sim::Duration reconnect_timeout = sim::sec(4.0);
};

/// Well-known group names (Figure 3's layout).
inline std::string server_group_name() { return "vod.servers"; }
inline std::string movie_group_name(const std::string& movie) {
  return "vod.movie." + movie;
}
// The session channel is keyed by (client, title), not client alone. With a
// per-client group, a stale session left behind by a title switch would see
// the client "present" in the group — it is there, but for its *new* title —
// and the only-we-are-left view cleanup could never reclaim it; the ghost
// would stream the old movie forever. Keyed by title too, the ghost lands in
// a group the client has genuinely left and dies on its first view.
inline std::string session_group_name(std::uint64_t client_id,
                                      const std::string& movie) {
  return "vod.session." + std::to_string(client_id) + "." + movie;
}

}  // namespace ftvod::vod
