// Server-side emergency transmission quantity (§4.1). After an emergency
// request the server transmits rate + q frames per second, where q decays
// multiplicatively every second with integer truncation:
//   q=12, f=0.8:  12, 9, 7, 5, 4, 3, 2, 1, 0   (sum 43 extra frames)
// matching the paper's "resulting sequence sum is 43 frames" for a 30 fps
// movie (a peak overhead of 40% of the mean bandwidth).
// While q > 0 the server ignores ordinary flow-control requests.
#pragma once

#include <cmath>
#include <cstdint>

namespace ftvod::vod {

class EmergencyQuantity {
 public:
  EmergencyQuantity(double decay) : decay_(decay) {}

  /// Starts (or escalates) a burst; a smaller concurrent request never
  /// shrinks an ongoing larger burst.
  void trigger(int base_quantity) {
    if (base_quantity > quantity_) quantity_ = base_quantity;
  }

  /// One decay period elapsed.
  void decay_step() {
    quantity_ = static_cast<int>(std::floor(quantity_ * decay_));
  }

  [[nodiscard]] int quantity() const { return quantity_; }
  [[nodiscard]] bool active() const { return quantity_ > 0; }
  void reset() { quantity_ = 0; }

  /// Total extra frames a burst of base q injects (for capacity planning /
  /// the emergency-parameter table).
  static std::uint64_t burst_total(int q, double decay) {
    std::uint64_t total = 0;
    int v = q;
    while (v > 0) {
      total += static_cast<std::uint64_t>(v);
      v = static_cast<int>(std::floor(v * decay));
    }
    return total;
  }

  /// Number of seconds until a burst of base q fully decays.
  static int burst_duration_s(int q, double decay) {
    int v = q;
    int s = 0;
    while (v > 0) {
      ++s;
      v = static_cast<int>(std::floor(v * decay));
    }
    return s;
  }

 private:
  double decay_;
  int quantity_ = 0;
};

}  // namespace ftvod::vod
