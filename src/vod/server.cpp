#include "vod/server.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace ftvod::vod {

namespace {
constexpr std::string_view kLog = "vod.server";

/// Unique server nodes present in a movie-group view.
std::vector<net::NodeId> server_nodes(const gcs::GroupView& v) {
  std::vector<net::NodeId> nodes;
  for (const gcs::GcsEndpoint& e : v.members) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace

VodServer::VodServer(sim::Scheduler& sched, net::Network& net,
                     gcs::Daemon& daemon, VodParams params)
    : sched_(&sched),
      net_(&net),
      daemon_(&daemon),
      params_(params),
      sync_timer_(sched, params.sync_period, [this] { send_sync(); }) {
  data_socket_ = net_->bind(daemon_->self(), params_.server_data_port,
                            nullptr);  // the server only transmits video
  server_group_ = daemon_->join(
      server_group_name(),
      gcs::GroupCallbacks{
          [this](const gcs::GcsEndpoint& from, std::span<const std::byte> d) {
            on_server_group_message(from, d);
          },
          nullptr});
  net_->on_crash(daemon_->self(), [this] { halt(); });
  // De-correlate the sync phases across servers: real deployments never
  // tick in lockstep, and the takeover staleness the paper measures (frames
  // "transmitted by both servers") comes precisely from this phase offset.
  const auto phase = static_cast<sim::Duration>(
      (static_cast<std::uint64_t>(daemon_->self()) * 2654435761u) %
      static_cast<std::uint64_t>(params_.sync_period));
  sync_timer_.start(params_.sync_period + phase);
}

void VodServer::detach() {
  if (halted_) return;
  util::log_info(kLog, "server n", daemon_->self(), " detaching gracefully");
  // Send a final state sync so the survivors resume from fresh offsets,
  // then leave the movie groups: the resulting view changes trigger the
  // orderly re-distribution at the survivors.
  send_sync();
  for (auto& [name, ms] : movies_) ms->member.reset();
  server_group_.reset();
  std::vector<std::uint64_t> clients;
  clients.reserve(session_index_.size());
  for (const auto& [client, slot] : session_index_) clients.push_back(client);
  std::sort(clients.begin(), clients.end());  // id order, not hash order
  for (std::uint64_t c : clients) close_session(c, /*client_gone=*/false);
  halt();
}

void VodServer::halt() {
  if (halted_) return;
  halted_ = true;
  sync_timer_.stop();
  for (const auto& [id, slot] : session_index_) {
    session_slab_[slot]->send_timer.cancel();
  }
  for (auto& [name, ms] : movies_) ms->rebalance_timer.cancel();
  util::log_info(kLog, "server n", daemon_->self(), " halted");
}

VodServer::Session* VodServer::find_session(std::uint64_t client_id) {
  const auto it = session_index_.find(client_id);
  return it == session_index_.end() ? nullptr : session_slab_[it->second].get();
}

const VodServer::Session* VodServer::find_session(
    std::uint64_t client_id) const {
  const auto it = session_index_.find(client_id);
  return it == session_index_.end() ? nullptr : session_slab_[it->second].get();
}

std::size_t VodServer::session_count(const std::string& movie) const {
  const auto it = movies_.find(movie);
  return it == movies_.end() ? 0 : it->second->local_sessions.size();
}

void VodServer::add_movie(std::shared_ptr<const mpeg::Movie> movie) {
  const std::string name = movie->name();
  catalog_.add(movie);
  if (movies_.contains(name)) return;
  auto ms = std::make_unique<MovieState>(*sched_);
  ms->movie = std::move(movie);
  ms->member = daemon_->join(
      movie_group_name(name),
      gcs::GroupCallbacks{
          [this, name](const gcs::GcsEndpoint& from,
                       std::span<const std::byte> d) {
            on_movie_group_message(name, from, d);
          },
          [this, name](const gcs::GroupView& v) {
            on_movie_group_view(name, v);
          }});
  movies_.emplace(name, std::move(ms));
  util::log_info(kLog, "server n", daemon_->self(), " offers movie '", name,
                 "'");
}

void VodServer::remove_movie(const std::string& name) {
  catalog_.remove(name);
  auto it = movies_.find(name);
  if (it == movies_.end()) return;
  // Close local sessions for this movie; survivors will adopt the clients
  // when our leave is observed as a movie-group view change.
  const std::vector<std::uint64_t> to_close = it->second->local_sessions;
  for (std::uint64_t c : to_close) close_session(c, /*client_gone=*/false);
  movies_.erase(it);
}

// ------------------------------------------------------------ control plane

void VodServer::on_server_group_message(const gcs::GcsEndpoint& from,
                                        std::span<const std::byte> data) {
  (void)from;
  if (halted_) return;
  if (wire::peek_type(data) != wire::MsgType::kOpenRequest) {
    ++stats_.malformed_dropped;
    return;
  }
  if (auto req = wire::decode_open_request(data)) {
    handle_open_request(*req);
  } else {
    ++stats_.malformed_dropped;
  }
}

void VodServer::handle_open_request(const wire::OpenRequest& req) {
  auto it = movies_.find(req.movie);
  if (it == movies_.end()) return;  // we do not hold this movie
  MovieState& ms = *it->second;

  // Duplicate open (client retry): if we already serve it, re-send the
  // reply; if someone else owns it, stay silent.
  if (Session* existing = find_session(req.client_id)) {
    ms.open_deferrals.erase(req.client_id);
    wire::OpenReply reply{req.client_id, req.movie, ms.movie->fps(),
                          ms.movie->frame_count(),
                          ms.movie->avg_frame_bytes()};
    existing->member->send(wire::encode(reply));
    return;
  }
  // A client that had to ask twice in a row is provably unserved: a served
  // client never retries (the branch above re-sends the reply on the first
  // retry, and its owner's periodic syncs erase this counter at every
  // peer). One full retry interval without a session anywhere means the
  // owner tables are lying — either a stale claim on a live peer (nobody
  // believes they should serve), or an election over divergent tables in
  // which no member picked itself. Both deadlock without this: divergent
  // fallback rebalances keep the tables disagreeing, and every retry just
  // replays the same silent outcome. The rescue must not depend on those
  // tables (their divergence is the very failure being repaired): the
  // lowest-id member of the movie-group view serves, a choice every member
  // computes identically from the view alone. The counter survives until a
  // session exists, so a lost rescue retries on the next ask.
  bool rescue = false;
  if (++ms.open_deferrals[req.client_id] >= 2) {
    ms.open_deferrals.erase(req.client_id);
    ms.records.erase(req.client_id);
    ms.owners.erase(req.client_id);
    ms.absent_counts.erase(req.client_id);
    if (!ms.view_servers.empty() &&
        ms.view_servers.front() != daemon_->self()) {
      return;  // the rescuer's copy of this same request opens
    }
    rescue = true;
  } else if (ms.owners.contains(req.client_id) &&
             std::binary_search(ms.view_servers.begin(),
                                ms.view_servers.end(),
                                ms.owners[req.client_id]) &&
             ms.owners[req.client_id] != daemon_->self()) {
    return;  // first ask: defer to the believed live owner
  }

  // Every holder of the movie sees the same (totally ordered) request and
  // the same table, so this choice needs no extra agreement round.
  const std::vector<net::NodeId> servers =
      ms.view_servers.empty() ? std::vector<net::NodeId>{daemon_->self()}
                              : ms.view_servers;
  const net::NodeId chosen =
      rescue ? daemon_->self() : choose_for_new_client(ms.owners, servers);

  wire::ClientRecord rec;
  rec.client_id = req.client_id;
  rec.data_endpoint = req.data_endpoint;
  rec.next_frame = 0;
  rec.rate_fps = params_.default_rate_fps;
  rec.quality_fps = req.capability_fps;
  rec.capability_fps = req.capability_fps;
  ms.records[req.client_id] = rec;
  ms.owners[req.client_id] = chosen;

  if (chosen == daemon_->self()) {
    ms.open_deferrals.erase(req.client_id);
    ++stats_.sessions_opened;
    open_session(rec, ms.movie, /*is_takeover=*/false);
  }
}

void VodServer::on_movie_group_message(const std::string& movie,
                                       const gcs::GcsEndpoint& from,
                                       std::span<const std::byte> data) {
  if (halted_) return;
  if (wire::peek_type(data) != wire::MsgType::kStateSync) {
    ++stats_.malformed_dropped;
    return;
  }
  if (auto sync = wire::decode_state_sync(data)) {
    if (sync->movie == movie) {
      apply_state_sync(from.node, *sync);
    } else {
      ++stats_.malformed_dropped;  // sync addressed to a different movie
    }
  } else {
    ++stats_.malformed_dropped;
  }
}

void VodServer::apply_state_sync(net::NodeId from, const wire::StateSync& s) {
  auto it = movies_.find(s.movie);
  if (it == movies_.end()) return;
  MovieState& ms = *it->second;

  if (s.exchange_tag != 0) {
    // A table-exchange message for a redistribution round.
    if (from != daemon_->self()) {
      for (const wire::ClientRecord& rec : s.clients) {
        ms.records[rec.client_id] = rec;
        ms.owners[rec.client_id] = from;
        ms.absent_counts.erase(rec.client_id);
      }
    }
    if (ms.rebalance_pending && s.exchange_tag == ms.exchange_tag) {
      ms.pending_tables.erase(from);
      if (ms.pending_tables.empty()) {
        rebalance_now(s.movie, /*authoritative=*/true);
      }
    }
    return;
  }
  if (from == daemon_->self()) return;  // own periodic sync

  // The sync is the owner's authoritative client list: update its clients,
  // and forget clients it used to own but stopped reporting. A single
  // absence is NOT enough: a sync built just before a session opened (or
  // during a hand-off) would otherwise erase a live client's record and
  // orphan it. Absence must persist across two consecutive syncs.
  std::set<std::uint64_t> reported;
  for (const wire::ClientRecord& rec : s.clients) {
    reported.insert(rec.client_id);
    ms.records[rec.client_id] = rec;
    ms.owners[rec.client_id] = from;
    ms.absent_counts.erase(rec.client_id);
    ms.open_deferrals.erase(rec.client_id);

    // Conflict repair: divergent fallback rebalances can leave two members
    // both streaming to the same client, and nothing else ever closes the
    // losing session. When a *lower-id* member keeps claiming a client we
    // also serve, the higher id yields — both sides apply the same rule, so
    // exactly one session survives. The threshold rides out transient
    // hand-off overlap (an in-flight exchange resolves within ~2 syncs).
    const Session* local = find_session(rec.client_id);
    if (from < daemon_->self() && local != nullptr &&
        local->movie->name() == s.movie) {
      if (++ms.conflict_counts[rec.client_id] >= 3) {
        ms.conflict_counts.erase(rec.client_id);
        ++stats_.migrations_out;
        util::log_info(kLog, "server n", daemon_->self(), " yields client ",
                       rec.client_id, " to n", from);
        close_session(rec.client_id, /*client_gone=*/false);
      }
    } else {
      ms.conflict_counts.erase(rec.client_id);
    }
  }
  for (auto oit = ms.owners.begin(); oit != ms.owners.end();) {
    if (oit->second == from && !reported.contains(oit->first)) {
      // The claimant dropped this client, so any ownership conflict is
      // over — the yield counter must only ever see *consecutive* claims.
      ms.conflict_counts.erase(oit->first);
      if (++ms.absent_counts[oit->first] >= 2) {
        ms.records.erase(oit->first);
        ms.absent_counts.erase(oit->first);
        oit = ms.owners.erase(oit);
        continue;
      }
    }
    ++oit;
  }

}

void VodServer::on_movie_group_view(const std::string& movie,
                                    const gcs::GroupView& v) {
  if (halted_) return;
  auto it = movies_.find(movie);
  if (it == movies_.end()) return;
  MovieState& ms = *it->second;
  ms.view_servers = server_nodes(v);
  ms.rebalance_pending = true;

  // §5.2: "the servers first exchange information about clients, and then
  // use it to deduce which clients each of them will serve". Each member
  // multicasts its table tagged with this view; each member decides when it
  // has delivered the tagged table of *every* view member. Because the
  // tables ride the totally-ordered channel, that decision point is the
  // same position in the message order at every member, so everyone
  // computes the assignment from identical inputs.
  ms.exchange_tag =
      (v.daemon_view_counter << 20) | static_cast<std::uint64_t>(v.change_seq);
  ms.pending_tables.clear();
  for (net::NodeId n : ms.view_servers) {
    if (n != daemon_->self()) ms.pending_tables.insert(n);
  }

  wire::StateSync table;
  table.movie = movie;
  table.exchange_tag = ms.exchange_tag;
  for (const std::uint64_t client : ms.local_sessions) {
    // Advertise the last *synced* state (see Session::synced_rec): the
    // paper's conservative approach, so a takeover re-sends (duplicates)
    // rather than skips frames.
    table.clients.push_back(find_session(client)->synced_rec);
  }
  ms.member->send(wire::encode(table));

  // Fallback only for pathological cases (a member crashing mid-round is
  // resolved by the next view change; this timer is belt and braces).
  const std::string name = movie;
  ms.rebalance_timer.arm(params_.table_exchange_delay, [this, name] {
    rebalance_now(name, /*authoritative=*/false);
  });
}

void VodServer::rebalance_now(const std::string& movie, bool authoritative) {
  auto it = movies_.find(movie);
  if (it == movies_.end() || halted_) return;
  MovieState& ms = *it->second;
  if (!ms.rebalance_pending) return;
  ms.rebalance_pending = false;
  ms.rebalance_timer.cancel();
  ms.conflict_counts.clear();  // the new assignment supersedes old conflicts
  ++stats_.rebalances;

  const Assignment next =
      rebalance(ms.owners, ms.view_servers, params_.rebalance_policy);
  ms.last_rebalance = RebalanceSnapshot{ms.exchange_tag, authoritative,
                                        ms.view_servers, ms.owners, next};
  for (const auto& [client, owner] : next) {
    const bool serving = session_index_.contains(client);
    if (owner == daemon_->self() && !serving) {
      ++stats_.takeovers;
      util::log_info(kLog, "server n", daemon_->self(), " takes over client ",
                     client, " at frame ", ms.records[client].next_frame);
      open_session(ms.records[client], ms.movie, /*is_takeover=*/true);
    } else if (owner != daemon_->self() && serving) {
      ++stats_.migrations_out;
      util::log_info(kLog, "server n", daemon_->self(), " hands client ",
                     client, " to n", owner);
      close_session(client, /*client_gone=*/false);
    }
  }
  ms.owners = next;
}

const RebalanceSnapshot* VodServer::rebalance_snapshot(
    const std::string& movie) const {
  auto it = movies_.find(movie);
  if (it == movies_.end() || it->second->last_rebalance.exchange_tag == 0) {
    return nullptr;
  }
  return &it->second->last_rebalance;
}

bool VodServer::rebalance_pending(const std::string& movie) const {
  auto it = movies_.find(movie);
  return it != movies_.end() && it->second->rebalance_pending;
}

// --------------------------------------------------------- session handling

void VodServer::open_session(const wire::ClientRecord& rec,
                             std::shared_ptr<const mpeg::Movie> movie,
                             bool is_takeover) {
  // Acquire a slab slot: recycle a freed one (its Session object survives,
  // so open/close churn allocates nothing once the slab is warm) or grow.
  std::uint32_t slot;
  if (!session_free_.empty()) {
    slot = session_free_.back();
    session_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(session_slab_.size());
    session_slab_.push_back(
        std::make_unique<Session>(*sched_, params_.emergency_decay));
  }
  Session* s = session_slab_[slot].get();
  s->in_use = true;
  s->eq.reset();
  s->burst_base = 0;
  s->next_decay_at = 0;
  s->finished = false;
  s->quality.reset();
  s->rec = rec;
  // Resume at the last-heard rate (Â§5.2), but never below the default: a
  // takeover that resumes slower than real time can only drain the client
  // further, and the flow-control loop would take seconds to say so.
  if (is_takeover) {
    s->rec.rate_fps = std::max(s->rec.rate_fps, params_.default_rate_fps);
  }
  s->synced_rec = s->rec;
  s->movie = movie;
  if (rec.quality_fps > 0.0 && rec.quality_fps < movie->fps()) {
    s->quality.emplace(*movie, rec.quality_fps);
  }
  const std::uint64_t client_id = rec.client_id;
  s->member = daemon_->join(
      session_group_name(client_id, movie->name()),
      gcs::GroupCallbacks{
          [this, client_id](const gcs::GcsEndpoint& from,
                            std::span<const std::byte> d) {
            on_session_message(client_id, from, d);
          },
          [this, client_id](const gcs::GroupView& v) {
            on_session_view(client_id, v);
          }});
  if (!is_takeover) {
    wire::OpenReply reply{client_id, movie->name(), movie->fps(),
                          movie->frame_count(), movie->avg_frame_bytes()};
    s->member->send(wire::encode(reply));
  }
  session_index_[client_id] = slot;
  if (auto mit = movies_.find(movie->name()); mit != movies_.end()) {
    mit->second->local_sessions.push_back(client_id);
  }
  if (!s->rec.paused) arm_send_timer(*s);
}

void VodServer::close_session(std::uint64_t client_id, bool client_gone) {
  const auto it = session_index_.find(client_id);
  if (it == session_index_.end()) return;
  const std::uint32_t slot = it->second;
  Session& s = *session_slab_[slot];
  s.send_timer.cancel();
  s.member.reset();  // leaves the session group
  s.quality.reset();
  s.in_use = false;
  const std::string movie = s.movie->name();
  s.movie.reset();
  session_index_.erase(it);
  session_free_.push_back(slot);
  if (auto mit = movies_.find(movie); mit != movies_.end()) {
    std::vector<std::uint64_t>& ls = mit->second->local_sessions;
    if (auto lit = std::find(ls.begin(), ls.end(), client_id);
        lit != ls.end()) {
      ls.erase(lit);
    }
    if (client_gone) {
      mit->second->records.erase(client_id);
      mit->second->owners.erase(client_id);
    }
    mit->second->open_deferrals.erase(client_id);
  }
}

void VodServer::on_session_message(std::uint64_t client_id,
                                   const gcs::GcsEndpoint& from,
                                   std::span<const std::byte> data) {
  if (halted_) return;
  Session* sp = find_session(client_id);
  if (sp == nullptr) return;
  Session& s = *sp;
  // Our own OpenReply echoes back on the session channel; filter by the
  // member's full endpoint so co-tenants of a shared daemon are not dropped.
  if (s.member && from == s.member->endpoint()) return;
  const auto type = wire::peek_type(data);
  if (!type) {
    ++stats_.malformed_dropped;
    return;
  }

  switch (*type) {
    case wire::MsgType::kFlow: {
      const auto m = wire::decode_flow(data);
      if (!m || m->client_id != client_id) {
        ++stats_.malformed_dropped;
        return;
      }
      // §4.1: flow-control requests are ignored during an emergency burst.
      if (s.eq.active()) return;
      s.rec.rate_fps =
          std::clamp(s.rec.rate_fps + m->delta * params_.rate_step_fps,
                     params_.min_rate_fps, params_.max_rate_fps);
      break;
    }
    case wire::MsgType::kEmergency: {
      const auto m = wire::decode_emergency(data);
      if (!m || m->client_id != client_id) {
        ++stats_.malformed_dropped;
        return;
      }
      // §4.1: while the emergency quantity is greater than zero, the server
      // ignores all flow control requests — including repeated emergencies,
      // which would otherwise re-inflate the burst and overflow the client.
      // §4.1: while the emergency quantity is greater than zero, the
      // server ignores repeated requests of the same (or lesser) severity —
      // a re-send would re-inflate the burst and overflow the client. An
      // *escalation* (tier 2 worsening into tier 1, e.g. the software
      // buffer emptying completely while a small burst is under way) is
      // accepted: the situation became critical.
      {
        const int q =
            m->tier == 1 ? params_.emergency_q1 : params_.emergency_q2;
        if (s.eq.active() && q <= s.burst_base) return;
        const bool was_active = s.eq.active();
        s.eq.trigger(q);
        s.burst_base = q;
        if (!was_active) {
          s.next_decay_at = sched_->now() + params_.emergency_decay_period;
        }
      }
      // Refill starts immediately at the boosted rate.
      if (!s.rec.paused && !s.finished) arm_send_timer(s);
      break;
    }
    case wire::MsgType::kVcr: {
      const auto m = wire::decode_vcr(data);
      if (!m || m->client_id != client_id) {
        ++stats_.malformed_dropped;
        return;
      }
      switch (m->op) {
        case wire::VcrOp::kPause:
          s.rec.paused = true;
          s.send_timer.cancel();
          break;
        case wire::VcrOp::kResume:
          s.rec.paused = false;
          if (!s.finished) arm_send_timer(s);
          break;
        case wire::VcrOp::kSeek:
          s.rec.next_frame =
              std::min(m->seek_frame, s.movie->frame_count() - 1);
          s.finished = false;
          if (!s.rec.paused) arm_send_timer(s);
          break;
        case wire::VcrOp::kStop:
          close_session(client_id, /*client_gone=*/true);
          return;
      }
      break;
    }
    case wire::MsgType::kSetQuality: {
      const auto m = wire::decode_set_quality(data);
      if (!m || m->client_id != client_id) {
        ++stats_.malformed_dropped;
        return;
      }
      s.rec.quality_fps = m->fps;
      if (m->fps > 0.0 && m->fps < s.movie->fps()) {
        s.quality.emplace(*s.movie, m->fps);
      } else {
        s.quality.reset();
      }
      break;
    }
    default:
      // Another server's OpenReply (session takeover) is legitimate here;
      // anything else does not belong on a session channel.
      if (*type != wire::MsgType::kOpenReply) ++stats_.malformed_dropped;
      break;
  }
}

void VodServer::on_session_view(std::uint64_t client_id,
                                const gcs::GroupView& v) {
  if (halted_) return;
  // When the only members left are our own endpoints, the client has left:
  // tear the session down.
  const Session* s = find_session(client_id);
  if (s == nullptr) return;
  const bool client_present =
      std::any_of(v.members.begin(), v.members.end(),
                  [&](const gcs::GcsEndpoint& e) {
                    return e.node != daemon_->self();
                  });
  if (!client_present && v.daemon_view_counter > 0 && !v.members.empty()) {
    // Only react when the view is non-trivial: the client may simply not
    // have joined yet right after takeover; distinguish via record age is
    // overkill here — a client that never joins sends nothing and times out
    // with the whole group when it leaves.
    if (v.members.size() == 1 && v.members[0].node == daemon_->self() &&
        s->rec.next_frame > 0) {
      util::log_info(kLog, "client ", client_id, " left; closing session");
      close_session(client_id, /*client_gone=*/true);
    }
  }
}

// -------------------------------------------------------------- data plane

double VodServer::effective_rate(const Session& s) const {
  double rate = std::clamp(s.rec.rate_fps, params_.min_rate_fps,
                           params_.max_rate_fps);
  if (s.quality) {
    // The tick rate must equal the filter's actual kept-frame rate, or the
    // movie would play too fast/slow (each tick advances past the frames
    // the filter skips).
    rate = std::min(rate, s.quality->effective_fps(s.movie->fps()));
  }
  rate += s.eq.quantity();
  return std::min(rate, params_.max_rate_fps + params_.emergency_q1);
}

void VodServer::arm_send_timer(Session& s) {
  const double rate = effective_rate(s);
  const auto period = static_cast<sim::Duration>(1e6 / rate);
  const std::uint64_t client_id = s.rec.client_id;
  s.send_timer.arm(period, [this, client_id] { send_tick(client_id); });
}

void VodServer::send_tick(std::uint64_t client_id) {
  if (halted_) return;
  Session* sp = find_session(client_id);
  if (sp == nullptr) return;
  Session& s = *sp;
  if (s.rec.paused || s.finished) return;

  // Emergency decay is evaluated on the send path (§4.1: once per second).
  while (s.eq.active() && sched_->now() >= s.next_decay_at) {
    s.eq.decay_step();
    s.next_decay_at += params_.emergency_decay_period;
  }

  // Quality adaptation: transmit only the frames the filter keeps (all I
  // frames plus as many P/B as the client's capability allows).
  while (s.rec.next_frame < s.movie->frame_count() && s.quality &&
         !s.quality->should_send(s.rec.next_frame)) {
    ++s.rec.next_frame;
  }
  if (s.rec.next_frame >= s.movie->frame_count()) {
    s.finished = true;
    return;
  }

  const mpeg::FrameInfo frame = s.movie->frame(s.rec.next_frame);
  wire::Frame msg{client_id, frame.index, frame.type, frame.size_bytes};
  // Encode into the server-lifetime scratch writer: the per-frame hot path
  // touches no heap once the writer and the network's buffer pool are warm.
  wire::encode_into(msg, frame_writer_);
  const std::size_t padding = frame.size_bytes > frame_writer_.size()
                                  ? frame.size_bytes - frame_writer_.size()
                                  : 0;
  data_socket_->send(s.rec.data_endpoint, frame_writer_.buffer(), padding);
  ++stats_.frames_sent;
  ++s.rec.next_frame;
  arm_send_timer(s);
}

void VodServer::send_sync() {
  if (halted_) return;
  // A periodic sync is a freshness report. While the control plane is
  // frozen it cannot leave this host anyway; submitting it would only queue
  // it in the daemon, to be flushed as a burst of *stale* claims after the
  // resume-and-merge — which peers would misread as live ownership.
  if (daemon_->paused()) return;
  for (auto& [name, ms] : movies_) {
    wire::StateSync sync;
    sync.movie = name;
    for (const std::uint64_t client : ms->local_sessions) {
      Session& s = *find_session(client);
      s.synced_rec = s.rec;  // checkpoint: what the group now knows
      sync.clients.push_back(s.rec);
    }
    ms->member->send(wire::encode(sync));
    ++stats_.syncs_sent;
  }
}

}  // namespace ftvod::vod
