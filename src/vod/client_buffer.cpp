#include "vod/client_buffer.hpp"

#include <algorithm>

namespace ftvod::vod {

void ClientBuffers::insert(const mpeg::FrameInfo& frame) {
  ++counters_.received;
  const auto idx = static_cast<std::int64_t>(frame.index);

  // Too late to re-order in (the decoder moved past it), or a duplicate.
  if (idx <= hw_horizon_ || software_.contains(frame.index)) {
    ++counters_.late;
    return;
  }

  if (software_.size() >= sw_capacity_) {
    // Overflow: make room by discarding the furthest-from-display
    // incremental frame; fall back to an I frame only when the whole buffer
    // is I frames (§3: "when possible we discard an incremental frame").
    auto victim = software_.end();
    for (auto it = software_.rbegin(); it != software_.rend(); ++it) {
      if (it->second.type != mpeg::FrameType::kI) {
        victim = std::prev(it.base());
        break;
      }
    }
    ++counters_.overflow_discards;
    if (victim == software_.end()) {
      // All buffered frames are I frames. Keep them: if the incoming frame
      // is incremental, discard it instead; otherwise evict the furthest I.
      if (frame.type != mpeg::FrameType::kI) {
        return;  // incoming frame dropped
      }
      victim = std::prev(software_.end());
      ++counters_.overflow_discarded_i_frames;
    }
    software_.erase(victim);
  }

  software_.emplace(frame.index, frame);
  transfer_to_hardware();
}

void ClientBuffers::transfer_to_hardware() {
  while (!software_.empty()) {
    const mpeg::FrameInfo& head = software_.begin()->second;
    if (hw_bytes_ + head.size_bytes > hw_capacity_bytes_ &&
        !hardware_.empty()) {
      break;  // decoder buffer full
    }
    hardware_.push_back(head);
    hw_bytes_ += head.size_bytes;
    hw_horizon_ = static_cast<std::int64_t>(head.index);
    software_.erase(software_.begin());
  }
}

std::optional<mpeg::FrameInfo> ClientBuffers::consume() {
  if (hardware_.empty()) {
    ++counters_.starvation_ticks;
    return std::nullopt;
  }
  const mpeg::FrameInfo frame = hardware_.front();
  hardware_.pop_front();
  hw_bytes_ -= frame.size_bytes;

  const auto idx = static_cast<std::int64_t>(frame.index);
  if (last_displayed_ >= 0 && idx > last_displayed_ + 1) {
    // Display-order gap: those frames will never be shown.
    counters_.skipped += static_cast<std::uint64_t>(idx - last_displayed_ - 1);
  }
  last_displayed_ = idx;
  ++counters_.displayed;

  transfer_to_hardware();
  return frame;
}

void ClientBuffers::flush_to(std::uint64_t next_expected_frame) {
  software_.clear();
  hardware_.clear();
  hw_bytes_ = 0;
  hw_horizon_ = static_cast<std::int64_t>(next_expected_frame) - 1;
  last_displayed_ = static_cast<std::int64_t>(next_expected_frame) - 1;
}

}  // namespace ftvod::vod
