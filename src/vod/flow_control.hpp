// The client's flow-control policy, exactly Figure 2 of the paper plus the
// two-tier emergency thresholds of §4.1:
//
//   condition                     check freq   request
//   sw occupancy < 15%            f_urgent     emergency tier 1 (q = 12)
//   sw occupancy < 30%            f_urgent     emergency tier 2 (q = 6)
//   total < low water             f_urgent     increase
//   [low, high), occ < prev       f_normal     increase
//   [low, high), occ > prev       f_normal     decrease
//   [low, high), occ = prev       f_normal     (nothing)
//   total >= high water           f_urgent     decrease
//
// The water marks are fractions of the *total* buffer space (software +
// hardware), while the emergency thresholds watch the *software* buffer:
// it is the stage that empties first in an outage — the paper's crash run
// drains it to zero (tier 1) and the load-balance run to about a quarter
// (tier 2, the "less serious emergency situation").
//
// Frequencies are in *received frames*: a check fires every
// flow_normal_every (8) frames in the in-band zone and every
// flow_urgent_every (4) frames outside it. The policy is a pure state
// machine so it can be unit-tested and swept in ablations.
#pragma once

#include <cstdint>
#include <optional>

#include "vod/params.hpp"

namespace ftvod::vod {

enum class FlowAction : std::uint8_t {
  kIncrease,
  kDecrease,
  kEmergencyTier1,
  kEmergencyTier2,
};

class FlowController {
 public:
  explicit FlowController(const VodParams& params) : p_(params) {}

  /// Evaluates the policy table, ignoring send frequency (used by
  /// on_frame_received and by tests). `total` and `software` are occupancy
  /// fractions of the respective buffer capacities.
  [[nodiscard]] std::optional<FlowAction> classify(double total,
                                                   double software) const {
    if (software < p_.emergency_tier1_frac) return FlowAction::kEmergencyTier1;
    if (software < p_.emergency_tier2_frac) return FlowAction::kEmergencyTier2;
    // Out-of-band corrections are trend-damped: keep pushing only while the
    // occupancy is not already moving back toward the band. Without this,
    // the ±1 fps steps at the urgent frequency over-correct (the buffer is
    // a slow plant) and the loop rings: deep rate dips, then an emergency,
    // then overflow, forever.
    if (total < p_.low_water_frac) {
      return total <= prev_occupancy_ ? std::optional(FlowAction::kIncrease)
                                      : std::nullopt;
    }
    if (total >= p_.high_water_frac) {
      return total >= prev_occupancy_ ? std::optional(FlowAction::kDecrease)
                                      : std::nullopt;
    }
    // In the water-mark band: react to the trend since the last request.
    if (total < prev_occupancy_) return FlowAction::kIncrease;
    if (total > prev_occupancy_) return FlowAction::kDecrease;
    return std::nullopt;
  }

  /// Called for every received frame with the current occupancy fractions.
  /// Returns the request to send now, if the policy's frequency is due.
  std::optional<FlowAction> on_frame_received(double total, double software) {
    ++frames_since_request_;
    const bool in_band = total >= p_.low_water_frac &&
                         total < p_.high_water_frac &&
                         software >= p_.emergency_tier2_frac;
    const int due = in_band ? p_.flow_normal_every : p_.flow_urgent_every;
    if (frames_since_request_ < due) return std::nullopt;
    const std::optional<FlowAction> action = classify(total, software);
    frames_since_request_ = 0;
    prev_occupancy_ = total;
    return action;
  }

  /// Resets the frequency counter (after a seek or reconnect).
  void reset() {
    frames_since_request_ = 0;
    prev_occupancy_ = 0.0;
  }

  [[nodiscard]] double prev_occupancy() const { return prev_occupancy_; }

 private:
  VodParams p_;
  int frames_since_request_ = 0;
  double prev_occupancy_ = 0.0;
};

}  // namespace ftvod::vod
