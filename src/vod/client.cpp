#include "vod/client.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace ftvod::vod {

namespace {
constexpr std::string_view kLog = "vod.client";

std::uint64_t make_client_id(net::NodeId node) {
  static std::uint64_t counter = 0;
  return (static_cast<std::uint64_t>(node) << 32) | ++counter;
}

}  // namespace

VodClient::VodClient(sim::Scheduler& sched, net::Network& net,
                     gcs::Daemon& daemon, VodParams params,
                     net::NodeId data_node)
    : sched_(&sched),
      net_(&net),
      daemon_(&daemon),
      params_(params),
      node_(data_node),
      client_id_(make_client_id(data_node)),
      flow_(params),
      display_timer_(sched, sim::msec(33), [this] { display_tick(); }),
      watchdog_timer_(sched, params.watchdog_period,
                      [this] { watchdog_tick(); }),
      open_retry_timer_(sched) {
  data_socket_ = net_->bind(node_, params_.client_data_port,
                            [this](const net::Endpoint& from,
                                   std::span<const std::byte> d) {
                              on_datagram(from, d);
                            });
  net_->on_crash(node_, [this] {
    halted_ = true;
    display_timer_.stop();
    watchdog_timer_.stop();
    open_retry_timer_.cancel();
  });
}

const BufferCounters& VodClient::counters() const {
  return buffers_ ? buffers_->counters() : empty_counters_;
}

double VodClient::low_water_frames() const {
  return buffers_ ? params_.low_water_frac *
                        static_cast<double>(buffers_->total_capacity_frames())
                  : 0.0;
}

double VodClient::high_water_frames() const {
  return buffers_ ? params_.high_water_frac *
                        static_cast<double>(buffers_->total_capacity_frames())
                  : 0.0;
}

void VodClient::watch(const std::string& movie, double capability_fps) {
  if (halted_) return;
  // watch() starts a fresh viewing session. Clear every remnant of a
  // previous one first: a stop()ed session leaves the old movie's buffers
  // and display position behind, and the reconnect logic in
  // on_session_message() would "helpfully" seek the *new* session to the
  // *old* movie's offset. (This is the reuse bug the workload driver's
  // client pool tripped over.)
  if (session_member_) {
    session_member_->leave();
    session_member_.reset();
  }
  display_timer_.stop();
  open_retry_timer_.cancel();
  open_retry_delay_ = 0;
  buffers_.reset();
  flow_.reset();
  connected_ = false;
  playing_ = false;
  paused_ = false;
  movie_frames_ = 0;
  last_progress_frame_ = -1;
  resync_attempts_ = 0;
  last_emergency_tier_ = 255;
  last_emergency_at_ = -1'000'000'000;

  movie_ = movie;
  capability_fps_ = capability_fps;
  // Join the session group before announcing it: the reply arrives there.
  session_member_ = daemon_->join(
      session_group_name(client_id_, movie_),
      gcs::GroupCallbacks{
          [this](const gcs::GcsEndpoint& from, std::span<const std::byte> d) {
            on_session_message(from, d);
          },
          [this](const gcs::GroupView&) { ++control_stats_.session_views; }});
  send_open_request();
  watchdog_timer_.start();
}

void VodClient::send_open_request() {
  if (halted_ || connected_) return;
  wire::OpenRequest req{client_id_, movie_, data_socket_->local(),
                        capability_fps_};
  daemon_->send_to_group(server_group_name(), wire::encode(req));
  // Exponential backoff with jitter: during a long outage every waiting
  // client would otherwise re-ask the server group in lockstep at a fixed
  // interval, turning the recovery instant into a thundering herd.
  if (open_retry_delay_ == 0) open_retry_delay_ = params_.open_retry;
  const auto jitter = static_cast<sim::Duration>(net_->rng().uniform(
      0.0, static_cast<double>(open_retry_delay_) / 4.0));
  open_retry_timer_.arm(open_retry_delay_ + jitter, [this] {
    ++control_stats_.open_retries;
    send_open_request();
  });
  open_retry_delay_ = std::min(2 * open_retry_delay_, params_.open_retry_cap);
}

void VodClient::on_session_message(const gcs::GcsEndpoint& from,
                                   std::span<const std::byte> d) {
  if (halted_) return;
  // Precise self-filter: compare full endpoints, not nodes. On a shared
  // gateway daemon every local member reports the gateway's node id, so a
  // node-level check would also drop messages from legitimate senders that
  // happen to share the daemon.
  if (session_member_ && from == session_member_->endpoint()) return;
  if (wire::peek_type(d) != wire::MsgType::kOpenReply) {
    ++control_stats_.malformed_dropped;
    return;
  }
  const auto reply = wire::decode_open_reply(d);
  if (!reply || reply->client_id != client_id_) {
    ++control_stats_.malformed_dropped;
    return;
  }
  if (connected_) return;  // duplicate reply to a retried open

  connected_ = true;
  open_retry_timer_.cancel();
  open_retry_delay_ = 0;  // the next outage backs off from the base again
  last_frame_at_ = sched_->now();
  last_progress_at_ = sched_->now();  // a (re)connect restarts the clock
  movie_fps_ = reply->fps;
  movie_frames_ = reply->frame_count;
  if (!buffers_) {
    // Keep existing buffers (and their counters) across a reconnect.
    buffers_.emplace(params_.sw_buffer_frames, params_.hw_buffer_bytes,
                     reply->avg_frame_bytes);
  }
  update_display_rate();
  util::log_info(kLog, "client ", client_id_, " connected for '", movie_,
                 "' (", reply->fps, " fps, ", reply->frame_count, " frames)");
  if (buffers_ && buffers_->last_displayed() >= 0 && !at_end()) {
    // Reconnect mid-movie: the responding server may have (re)opened the
    // session at an arbitrary offset. Align it with our actual position.
    seek(static_cast<std::uint64_t>(buffers_->last_displayed()) + 1);
  }
}

void VodClient::on_datagram(const net::Endpoint& from,
                            std::span<const std::byte> d) {
  (void)from;  // deliberately ignored: the client must not track servers
  if (halted_ || !buffers_) return;
  // Integrity gate: the data socket is the one channel exposed to raw wire
  // damage (frames bypass GCS), so verify before any decoding.
  if (!util::frame_open(d)) {
    data_socket_->note_corrupt_dropped();
    ++control_stats_.malformed_dropped;
    return;
  }
  if (wire::peek_type(d) != wire::MsgType::kFrame) {
    ++control_stats_.malformed_dropped;
    return;
  }
  if (const auto f = wire::decode_frame(d)) {
    if (f->client_id == client_id_) on_frame(*f);
  } else {
    ++control_stats_.malformed_dropped;
  }
}

void VodClient::on_frame(const wire::Frame& f) {
  last_frame_at_ = sched_->now();
  buffers_->insert(mpeg::FrameInfo{f.frame_index, f.type, f.size_bytes});

  // Start the display loop once the decoder has a little material.
  if (!playing_ &&
      buffers_->hw_frames() >=
          static_cast<std::size_t>(params_.display_prefill_frames)) {
    playing_ = true;
    if (!paused_) display_timer_.start();
  }

  if (const auto action = flow_.on_frame_received(
          buffers_->occupancy_fraction(), buffers_->sw_occupancy_fraction())) {
    send_flow(*action);
  }
}

void VodClient::send_flow(FlowAction action) {
  if (!session_member_ || !connected_) return;
  switch (action) {
    case FlowAction::kIncrease:
      ++control_stats_.increases_sent;
      session_member_->send(wire::encode(wire::Flow{client_id_, +1}));
      break;
    case FlowAction::kDecrease:
      ++control_stats_.decreases_sent;
      session_member_->send(wire::encode(wire::Flow{client_id_, -1}));
      break;
    case FlowAction::kEmergencyTier1:
    case FlowAction::kEmergencyTier2: {
      const std::uint8_t tier =
          action == FlowAction::kEmergencyTier1 ? 1 : 2;
      // Rate-limit same-severity emergencies (the server ignores them while
      // a burst is active anyway), but let an escalation through at once.
      if (tier >= last_emergency_tier_ &&
          sched_->now() - last_emergency_at_ <
              params_.emergency_resend_interval) {
        return;
      }
      last_emergency_at_ = sched_->now();
      last_emergency_tier_ = tier;
      ++control_stats_.emergencies_sent;
      session_member_->send(wire::encode(wire::Emergency{client_id_, tier}));
      break;
    }
  }
}

void VodClient::watchdog_tick() {
  if (halted_ || !connected_ || paused_ || !buffers_) return;
  // Session-loss recovery: if nothing has arrived for much longer than any
  // takeover needs (e.g. this client was partitioned away long enough for
  // the servers to declare it failed and tear the session down), go back
  // to the server group and ask again.
  const bool at_end =
      movie_frames_ > 0 &&
      buffers_->last_displayed() + 1 >=
          static_cast<std::int64_t>(movie_frames_);
  if (!at_end &&
      sched_->now() - last_frame_at_ > params_.reconnect_timeout) {
    util::log_info(kLog, "client ", client_id_,
                   " lost its stream; re-requesting '", movie_, "'");
    connected_ = false;
    last_frame_at_ = sched_->now();
    send_open_request();
    return;
  }
  // Wedged-stream recovery: a session can look alive on the wire — frames
  // arriving and resetting the clock above — while every frame is stale
  // (a server left transmitting from an old offset after a chaotic run of
  // view changes, so everything is dropped as late). Key on *display*
  // progress instead: first try to re-synchronise the existing session
  // with a seek to our true position; if repeated resyncs go unheard (no
  // live server in the session group), fall back to a full re-open.
  if (playing_) {
    const std::int64_t shown = buffers_->last_displayed();
    if (shown != last_progress_frame_) {
      last_progress_frame_ = shown;
      last_progress_at_ = sched_->now();
      resync_attempts_ = 0;
    } else if (!at_end &&
               sched_->now() - last_progress_at_ > params_.reconnect_timeout) {
      last_progress_at_ = sched_->now();
      if (++resync_attempts_ <= 2) {
        util::log_info(kLog, "client ", client_id_,
                       " sees no display progress; resyncing at frame ",
                       shown + 1);
        seek(static_cast<std::uint64_t>(shown + 1));
      } else {
        util::log_info(kLog, "client ", client_id_,
                       " resyncs went unheard; re-requesting '", movie_, "'");
        resync_attempts_ = 0;
        connected_ = false;
        last_frame_at_ = sched_->now();
        send_open_request();
      }
      return;
    }
  }
  // Emergencies must fire even when no frames arrive (migration outages,
  // startup, post-seek refills) — the receive path alone cannot see them.
  const double sw = buffers_->sw_occupancy_fraction();
  if (sw < params_.emergency_tier1_frac) {
    send_flow(FlowAction::kEmergencyTier1);
  } else if (sw < params_.emergency_tier2_frac) {
    send_flow(FlowAction::kEmergencyTier2);
  }
}

void VodClient::display_tick() {
  if (halted_ || paused_ || !buffers_) return;
  (void)buffers_->consume();
}

// ------------------------------------------------------------- VCR control

void VodClient::pause() {
  if (!session_member_) return;
  paused_ = true;
  display_timer_.stop();
  session_member_->send(
      wire::encode(wire::Vcr{client_id_, wire::VcrOp::kPause, 0}));
}

void VodClient::resume() {
  if (!session_member_) return;
  paused_ = false;
  if (playing_) display_timer_.start();
  session_member_->send(
      wire::encode(wire::Vcr{client_id_, wire::VcrOp::kResume, 0}));
}

void VodClient::seek(std::uint64_t frame) {
  if (!session_member_) return;
  session_member_->send(
      wire::encode(wire::Vcr{client_id_, wire::VcrOp::kSeek, frame}));
  if (buffers_) buffers_->flush_to(frame);
  flow_.reset();
  last_emergency_at_ = -1'000'000'000;  // a seek is an emergency situation
}

void VodClient::set_quality(double fps) {
  if (!session_member_) return;
  capability_fps_ = fps;
  update_display_rate();
  session_member_->send(
      wire::encode(wire::SetQuality{client_id_, fps}));
}

void VodClient::update_display_rate() {
  // A reduced-quality client shows each received frame longer (frame
  // repeat in the decoder): the buffer is consumed at the *delivered* rate,
  // while movie time still advances at the native rate because the server
  // skips the in-between frames.
  const double display_fps =
      capability_fps_ > 0.0 ? std::min(capability_fps_, movie_fps_)
                            : movie_fps_;
  display_timer_.set_period(static_cast<sim::Duration>(1e6 / display_fps));
}

void VodClient::stop() {
  if (!session_member_) return;
  session_member_->send(
      wire::encode(wire::Vcr{client_id_, wire::VcrOp::kStop, 0}));
  session_member_->leave();
  session_member_.reset();
  display_timer_.stop();
  watchdog_timer_.stop();
  open_retry_timer_.cancel();
  open_retry_delay_ = 0;
  // Drop the decoder state too, not just the control plane: the server
  // keeps streaming for a round trip after the Stop, and a late frame
  // landing in still-live buffers would re-arm the display loop on a
  // session that no longer exists — a zombie client that plays its buffer
  // tail and then "stalls" forever. With the buffers gone, on_datagram()
  // discards the stragglers at the door.
  buffers_.reset();
  flow_.reset();
  connected_ = false;
  playing_ = false;
  paused_ = false;
  movie_frames_ = 0;
  last_progress_frame_ = -1;
  resync_attempts_ = 0;
  last_emergency_tier_ = 255;
}

}  // namespace ftvod::vod
