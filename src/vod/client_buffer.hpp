// The client's two-stage buffering (§3): received frames enter a software
// buffer (fixed frame capacity; also the re-ordering window), from which
// they are streamed in display order into a hardware decoder buffer (fixed
// byte capacity). The decoder consumes one frame per display period.
//
// Accounting matches the paper's figures:
//  * late frames   — arrived after a later frame was already streamed into
//                    the decoder, or duplicates (Fig 4b),
//  * overflow      — discarded because the software buffer was full; the
//                    victim is an incremental frame when possible (Fig 5b),
//  * skipped       — never displayed (gaps observed at display time: lost,
//                    late-dropped or overflow-discarded; Figs 4a/5a).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "mpeg/frame.hpp"

namespace ftvod::vod {

struct BufferCounters {
  std::uint64_t received = 0;
  std::uint64_t late = 0;
  std::uint64_t overflow_discards = 0;
  std::uint64_t overflow_discarded_i_frames = 0;
  std::uint64_t skipped = 0;
  std::uint64_t displayed = 0;
  std::uint64_t starvation_ticks = 0;
};

class ClientBuffers {
 public:
  ClientBuffers(std::size_t sw_capacity_frames, std::size_t hw_capacity_bytes,
                std::uint32_t avg_frame_bytes)
      : sw_capacity_(sw_capacity_frames),
        hw_capacity_bytes_(hw_capacity_bytes),
        avg_frame_bytes_(avg_frame_bytes == 0 ? 1 : avg_frame_bytes) {}

  /// A frame arrived from the network.
  void insert(const mpeg::FrameInfo& frame);

  /// One display period elapsed: the decoder consumes the next frame.
  /// Returns the displayed frame, or nullopt on starvation.
  std::optional<mpeg::FrameInfo> consume();

  /// Drops everything and repositions the stream (VCR random access).
  void flush_to(std::uint64_t next_expected_frame);

  // --- occupancy ----------------------------------------------------------
  [[nodiscard]] std::size_t sw_frames() const { return software_.size(); }
  [[nodiscard]] std::size_t hw_frames() const { return hardware_.size(); }
  [[nodiscard]] std::size_t hw_bytes() const { return hw_bytes_; }
  [[nodiscard]] std::size_t sw_capacity() const { return sw_capacity_; }
  [[nodiscard]] std::size_t hw_capacity_bytes() const {
    return hw_capacity_bytes_;
  }
  /// Total capacity expressed in frames (hardware estimated at the mean
  /// frame size), the denominator of the flow-control occupancy fraction.
  [[nodiscard]] std::size_t total_capacity_frames() const {
    return sw_capacity_ + hw_capacity_bytes_ / avg_frame_bytes_;
  }
  [[nodiscard]] std::size_t total_frames() const {
    return software_.size() + hardware_.size();
  }
  [[nodiscard]] double occupancy_fraction() const {
    return static_cast<double>(total_frames()) /
           static_cast<double>(total_capacity_frames());
  }
  /// Software-stage occupancy: the emergency thresholds watch this.
  [[nodiscard]] double sw_occupancy_fraction() const {
    return static_cast<double>(software_.size()) /
           static_cast<double>(sw_capacity_);
  }

  [[nodiscard]] const BufferCounters& counters() const { return counters_; }
  /// Index of the last frame handed to the display, or -1.
  [[nodiscard]] std::int64_t last_displayed() const { return last_displayed_; }

 private:
  void transfer_to_hardware();

  std::size_t sw_capacity_;
  std::size_t hw_capacity_bytes_;
  std::uint32_t avg_frame_bytes_;

  std::map<std::uint64_t, mpeg::FrameInfo> software_;  // keyed by index
  std::deque<mpeg::FrameInfo> hardware_;               // display order
  std::size_t hw_bytes_ = 0;
  /// Highest frame index ever streamed into the hardware decoder; frames at
  /// or below it can no longer be re-ordered in and count as late.
  std::int64_t hw_horizon_ = -1;
  std::int64_t last_displayed_ = -1;

  BufferCounters counters_;
};

}  // namespace ftvod::vod
