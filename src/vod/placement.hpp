// Demand-driven replica placement for a city-scale catalog. The paper fixes
// one replica set per movie at configuration time; at hundreds of titles
// under a shifting Zipf demand curve that choice dominates both
// availability (k-tolerance) and load, so a controller moves replicas as
// demand moves (cf. the Markov-chain replication strategy of
// arXiv:0912.1011 — add replicas where requests concentrate, retire them as
// interest fades, never below the fault-tolerance floor).
//
// The logic is split in two layers:
//
//  * PlacementModel — a pure, deterministic state machine: demand counts and
//    the live-server set in, add/drop operations out. Hysteresis (grow at
//    demand > viewers_per_replica per replica, shrink only below a margin of
//    the post-shrink capacity) plus a per-title cooldown make it provably
//    oscillation-free under constant demand, which the property test checks
//    over randomized trajectories.
//  * PlacementController — binds the model to a Deployment: measures demand
//    from the clients, applies ops through VodServer::add_movie /
//    remove_movie (the movie-group membership change *is* the replica
//    add/drop — §5's redistribution machinery does the client moves), and
//    reconciles desired-vs-actual holdings every period, which is also what
//    re-registers a restarted server's catalog when it rejoins empty.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/timer.hpp"
#include "vod/service.hpp"

namespace ftvod::vod {

struct PlacementConfig {
  /// k-tolerance floor: a title with at least one active viewer keeps at
  /// least this many live replicas (capped by the live-server count).
  std::size_t replication_floor = 2;
  /// Replicas kept for a title nobody watches (the archival copy).
  std::size_t idle_replicas = 1;
  /// Capacity model: one replica comfortably serves this many viewers.
  std::size_t viewers_per_replica = 50;
  /// Shrink hysteresis: drop a replica only when the remaining ones would
  /// still sit below this fraction of their capacity. Together with the
  /// grow rule this leaves a dead band, so constant demand never oscillates.
  double shrink_margin = 0.7;
  /// Periods a title rests after any op before the next op on it.
  int cooldown_periods = 2;
  sim::Duration control_period = sim::sec(1.0);
};

struct PlacementOp {
  enum class Kind : std::uint8_t { kAdd, kDrop };
  Kind kind = Kind::kAdd;
  std::string title;
  net::NodeId node = net::kInvalidNode;
};

class PlacementModel {
 public:
  explicit PlacementModel(PlacementConfig cfg) : cfg_(cfg) {}

  /// Registers a title with an empty replica set; the first step() places it.
  void add_title(const std::string& title);

  /// One control period: returns the ops that move every title toward its
  /// demand target, applying them to the model's own desired state.
  /// Deterministic in (current state, viewers, live_servers).
  std::vector<PlacementOp> step(
      const std::map<std::string, std::size_t>& viewers,
      const std::vector<net::NodeId>& live_servers);

  /// Desired replica nodes of a title (sorted; may include dead nodes —
  /// they stop counting toward availability until they come back).
  [[nodiscard]] const std::vector<net::NodeId>& replicas(
      const std::string& title) const;
  [[nodiscard]] std::size_t title_count() const { return titles_.size(); }
  /// Desired replicas held per node (load-balance metric).
  [[nodiscard]] std::size_t load(net::NodeId node) const;
  [[nodiscard]] const PlacementConfig& config() const { return cfg_; }

  /// The target replica count the next step() steers toward (for tests).
  [[nodiscard]] std::size_t target_replicas(std::size_t viewer_count,
                                            std::size_t live_servers) const;

 private:
  struct TitleState {
    std::vector<net::NodeId> replicas;  // sorted
    int cooldown = 0;
  };

  PlacementConfig cfg_;
  std::map<std::string, TitleState> titles_;
  std::map<net::NodeId, std::size_t> load_;
};

struct PlacementStats {
  std::uint64_t ticks = 0;
  std::uint64_t adds = 0;
  std::uint64_t drops = 0;
  /// Titles re-pushed to a live server that should hold them but did not —
  /// the restart-recovery path (a rebooted server rejoins with an empty
  /// catalog; reconciliation restores it).
  std::uint64_t reregistrations = 0;
};

class PlacementController {
 public:
  PlacementController(Deployment& dep, PlacementConfig cfg);

  /// Registers a title under management. Placement happens on the next
  /// tick (or tick_now()).
  void manage(std::shared_ptr<const mpeg::Movie> movie);

  /// Starts the periodic control loop on the deployment's scheduler.
  void start();
  /// Runs one control period immediately.
  void tick_now();

  /// Immediate reconciliation for one node (e.g. right after a restart —
  /// wire this as the ChaosInjector's restart delegate). The periodic tick
  /// would repair it anyway; this just closes the gap faster.
  void handle_restart(net::NodeId node);

  /// Replaces the demand source (default: count watching deployment
  /// clients per title). The workload driver supplies exact per-title
  /// session counts this way at 10k-client scale.
  void set_demand_source(
      std::function<void(std::map<std::string, std::size_t>&)> fn) {
    demand_source_ = std::move(fn);
  }

  [[nodiscard]] const PlacementModel& model() const { return model_; }
  [[nodiscard]] const PlacementStats& stats() const { return stats_; }
  /// Consecutive ticks without any op (convergence signal for benchmarks).
  [[nodiscard]] std::uint64_t quiet_ticks() const { return quiet_ticks_; }

 private:
  void collect_demand(std::map<std::string, std::size_t>& out) const;
  [[nodiscard]] std::vector<net::NodeId> live_servers() const;
  /// Pushes every desired title missing from a live server's catalog back
  /// to it. Returns the number of re-registrations performed.
  std::size_t reconcile(const std::vector<net::NodeId>& live);

  Deployment* dep_;
  PlacementModel model_;
  std::map<std::string, std::shared_ptr<const mpeg::Movie>> managed_;
  std::function<void(std::map<std::string, std::size_t>&)> demand_source_;
  sim::PeriodicTimer timer_;
  PlacementStats stats_;
  std::uint64_t quiet_ticks_ = 0;
};

}  // namespace ftvod::vod
