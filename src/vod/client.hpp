// The VoD client (§3, §4). It contacts the anonymous server group, joins
// its own session group, and from then on only ever talks to "whoever is in
// my session group" — server crashes and load-balancing migrations are
// invisible to it, exactly the transparency the paper demonstrates.
//
// The client runs the Figure-2 flow-control policy on every received frame,
// a watchdog that raises emergencies even when nothing arrives (outages),
// and a display loop consuming one frame per period from the decoder model.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "gcs/daemon.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"
#include "vod/client_buffer.hpp"
#include "vod/flow_control.hpp"
#include "vod/params.hpp"
#include "vod/wire.hpp"

namespace ftvod::vod {

struct ClientControlStats {
  std::uint64_t increases_sent = 0;
  std::uint64_t decreases_sent = 0;
  std::uint64_t emergencies_sent = 0;
  std::uint64_t session_views = 0;  // membership changes observed
  std::uint64_t open_retries = 0;
  /// Datagrams/messages this client rejected: integrity-check failures on
  /// the data socket (also counted in SocketStats::corrupt_dropped) plus
  /// decoder refusals and client-id mismatches on either channel.
  std::uint64_t malformed_dropped = 0;
};

class VodClient {
 public:
  /// `data_node` is the host the client's data socket (and crash hook) bind
  /// to. At city scale the client lives on its own edge host but shares a
  /// *gateway* daemon with thousands of peers (Spread's model: daemons on a
  /// few well-connected nodes, lightweight members everywhere), so the
  /// control-plane daemon and the data-plane host are distinct nodes.
  VodClient(sim::Scheduler& sched, net::Network& net, gcs::Daemon& daemon,
            VodParams params, net::NodeId data_node);
  /// Convenience: client co-located with its own daemon.
  VodClient(sim::Scheduler& sched, net::Network& net, gcs::Daemon& daemon,
            VodParams params)
      : VodClient(sched, net, daemon, params, daemon.self()) {}
  ~VodClient() = default;
  VodClient(const VodClient&) = delete;
  VodClient& operator=(const VodClient&) = delete;

  /// Requests the movie from the service. capability_fps > 0 asks for
  /// reduced quality (§4.3).
  void watch(const std::string& movie, double capability_fps = 0.0);

  // --- full VCR control (§3, per the ATM Forum VoD spec) -------------------
  void pause();
  void resume();
  void seek(std::uint64_t frame);
  void set_quality(double fps);
  void stop();

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] bool playing() const { return playing_; }
  [[nodiscard]] bool paused() const { return paused_; }
  /// True between watch() and stop(): the client wants (or receives) a
  /// stream right now. Placement and the under-replication invariant key on
  /// this, not on connected(), which flaps during takeovers.
  [[nodiscard]] bool watching() const { return session_member_ != nullptr; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }
  /// The title requested by watch(), empty before the first watch().
  [[nodiscard]] const std::string& movie() const { return movie_; }
  /// True once the display has reached the last frame of the movie.
  [[nodiscard]] bool at_end() const {
    return movie_frames_ > 0 && buffers_ &&
           buffers_->last_displayed() + 1 >=
               static_cast<std::int64_t>(movie_frames_);
  }
  [[nodiscard]] const ClientBuffers* buffers() const {
    return buffers_ ? &*buffers_ : nullptr;
  }
  [[nodiscard]] const BufferCounters& counters() const;
  [[nodiscard]] const ClientControlStats& control_stats() const {
    return control_stats_;
  }
  [[nodiscard]] double occupancy_fraction() const {
    return buffers_ ? buffers_->occupancy_fraction() : 0.0;
  }
  [[nodiscard]] const VodParams& params() const { return params_; }
  [[nodiscard]] const net::SocketStats& data_socket_stats() const {
    return data_socket_->stats();
  }
  /// Water marks in frames, for plotting Fig 4(c).
  [[nodiscard]] double low_water_frames() const;
  [[nodiscard]] double high_water_frames() const;

 private:
  void on_datagram(const net::Endpoint& from, std::span<const std::byte> d);
  void on_session_message(const gcs::GcsEndpoint& from,
                          std::span<const std::byte> d);
  void on_frame(const wire::Frame& f);
  void display_tick();
  void watchdog_tick();
  void send_open_request();
  void send_flow(FlowAction action);
  void update_display_rate();

  sim::Scheduler* sched_;
  net::Network* net_;
  gcs::Daemon* daemon_;
  VodParams params_;
  net::NodeId node_;  // data-plane host; may differ from daemon_->self()

  std::uint64_t client_id_;
  std::string movie_;
  double capability_fps_ = 0.0;

  std::unique_ptr<net::Socket> data_socket_;
  std::unique_ptr<gcs::GroupMember> session_member_;
  std::optional<ClientBuffers> buffers_;
  FlowController flow_;

  bool connected_ = false;  // OpenReply received
  bool playing_ = false;    // display loop running
  bool paused_ = false;
  bool halted_ = false;
  double movie_fps_ = 30.0;
  std::uint64_t movie_frames_ = 0;

  sim::PeriodicTimer display_timer_;
  sim::PeriodicTimer watchdog_timer_;
  sim::OneShotTimer open_retry_timer_;
  /// Current open-retry backoff delay; 0 means "start over at the base
  /// interval". Doubles (with jitter) per retry up to params_.open_retry_cap
  /// and resets on a successful connect.
  sim::Duration open_retry_delay_ = 0;
  sim::Time last_emergency_at_ = -1'000'000'000;
  std::uint8_t last_emergency_tier_ = 255;  // 255 = none outstanding
  sim::Time last_frame_at_ = 0;
  /// Display-progress tracking for wedged-stream recovery: a session can be
  /// alive on the wire (frames arriving, resetting last_frame_at_) yet
  /// useless, e.g. a server left re-transmitting from a stale offset after
  /// a chaotic sequence of view changes. The watchdog re-synchronises via a
  /// seek to the actual position, and falls back to a full re-open when the
  /// resyncs go unheard.
  std::int64_t last_progress_frame_ = -1;
  sim::Time last_progress_at_ = 0;
  int resync_attempts_ = 0;

  ClientControlStats control_stats_;
  BufferCounters empty_counters_;  // returned before connection
};

}  // namespace ftvod::vod
