// Convenience assembly of a complete VoD deployment inside one simulation:
// hosts, GCS daemons, servers and clients. This is the entry point the
// examples and benchmarks use; library users who need finer control can
// instantiate VodServer / VodClient / gcs::Daemon directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gcs/daemon.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "vod/client.hpp"
#include "vod/params.hpp"
#include "vod/server.hpp"

namespace ftvod::vod {

/// One simulated deployment: a network, a GCS configuration spanning all
/// hosts, and any number of servers and clients created on demand.
class Deployment {
 public:
  explicit Deployment(std::uint64_t seed = 42,
                      net::LinkQuality quality = net::lan_quality(),
                      VodParams params = {})
      : rng_(seed), net_(sched_, rng_), params_(params) {
    net_.set_default_quality(quality);
  }

  struct ServerNode {
    net::NodeId node;
    std::unique_ptr<gcs::Daemon> daemon;
    std::unique_ptr<VodServer> server;
  };

  struct ClientNode {
    net::NodeId node;
    std::unique_ptr<gcs::Daemon> daemon;  // null when attached to a gateway
    std::unique_ptr<VodClient> client;
  };

  /// A gateway host runs a GCS daemon that thousands of edge clients attach
  /// to as lightweight local members (Spread's daemons-on-few-nodes model):
  /// daemon-level traffic — heartbeats, ordered fan-out — stays O(daemons),
  /// not O(clients), which is what makes a 10k-client run feasible.
  struct GatewayNode {
    net::NodeId node;
    std::unique_ptr<gcs::Daemon> daemon;
  };

  /// Pre-registers a host so the GCS peer list covers servers brought up
  /// later ("on the fly"). Call for all hosts before creating any daemon.
  /// `cfg` sets the host's NIC provisioning: the default models the paper's
  /// 100 Mbps switched Ethernet, which tops out around 70 concurrent
  /// 1.4 Mbps streams — city-scale scenarios must pass datacenter-class
  /// rates or the video traffic starves the control plane on the same
  /// uplink and every protocol deadline slips.
  net::NodeId add_host(const std::string& name, net::HostConfig cfg = {}) {
    const net::NodeId id = net_.add_host(name, cfg);
    gcs_cfg_.peers.push_back(id);
    return id;
  }

  /// Registers an edge host that runs *no* daemon (its clients attach to a
  /// gateway). Edge hosts stay out of the GCS peer list: with 10k of them,
  /// every daemon heartbeating every edge host each 75 ms would be the
  /// quadratic blow-up the gateway architecture exists to avoid.
  net::NodeId add_edge_host(const std::string& name,
                            net::HostConfig cfg = {}) {
    return net_.add_host(name, cfg);
  }

  ServerNode& start_server(net::NodeId node) {
    return start_server(node, params_);
  }

  /// Starts a server with its own parameter set (e.g. a mis-configured
  /// rebalance policy — how the chaos tests provoke assignment divergence).
  ServerNode& start_server(net::NodeId node, const VodParams& params) {
    auto sn = std::make_unique<ServerNode>();
    sn->node = node;
    sn->daemon = std::make_unique<gcs::Daemon>(sched_, net_, node, gcs_cfg_);
    sn->server =
        std::make_unique<VodServer>(sched_, net_, *sn->daemon, params);
    servers_.push_back(std::move(sn));
    return *servers_.back();
  }

  ClientNode& start_client(net::NodeId node) {
    auto cn = std::make_unique<ClientNode>();
    cn->node = node;
    cn->daemon = std::make_unique<gcs::Daemon>(sched_, net_, node, gcs_cfg_);
    cn->client =
        std::make_unique<VodClient>(sched_, net_, *cn->daemon, params_);
    clients_.push_back(std::move(cn));
    return *clients_.back();
  }

  GatewayNode& start_gateway(net::NodeId node) {
    auto gn = std::make_unique<GatewayNode>();
    gn->node = node;
    gn->daemon = std::make_unique<gcs::Daemon>(sched_, net_, node, gcs_cfg_);
    gateways_.push_back(std::move(gn));
    return *gateways_.back();
  }

  /// Starts a client on edge host `node`, attached to `gateway`'s daemon
  /// for the control plane; video flows to the edge host directly.
  ClientNode& start_client(net::NodeId node, GatewayNode& gateway) {
    auto cn = std::make_unique<ClientNode>();
    cn->node = node;
    cn->client = std::make_unique<VodClient>(sched_, net_, *gateway.daemon,
                                             params_, node);
    clients_.push_back(std::move(cn));
    return *clients_.back();
  }

  void crash(net::NodeId node) { net_.crash_host(node); }

  /// The server slot running on `node`, or nullptr.
  ServerNode* find_server(net::NodeId node) {
    for (auto& sn : servers_) {
      if (sn->node == node) return sn.get();
    }
    return nullptr;
  }

  /// Tears down the server process (and its GCS daemon) on `node`,
  /// freeing its ports. The slot in servers() is kept so indices stay
  /// stable; restart_server() re-populates it.
  void stop_server(net::NodeId node) {
    ServerNode* sn = find_server(node);
    if (sn == nullptr) return;
    if (sn->server) sn->server->halt();
    sn->server.reset();  // before the daemon: it holds group handles
    sn->daemon.reset();
  }

  /// Crash recovery ("restart-after-crash"): brings the host back and
  /// starts a brand-new server process with a fresh GCS daemon on it. The
  /// old incarnation's state is gone — exactly a reboot. The caller must
  /// re-add the movies (their bits survived on disk). No-op with nullptr
  /// result when the node never ran a server.
  ServerNode* restart_server(net::NodeId node) {
    ServerNode* sn = find_server(node);
    if (sn == nullptr) return nullptr;
    stop_server(node);
    net_.restore_host(node);
    sn->daemon = std::make_unique<gcs::Daemon>(sched_, net_, node, gcs_cfg_);
    sn->server =
        std::make_unique<VodServer>(sched_, net_, *sn->daemon, params_);
    return sn;
  }

  sim::Scheduler& scheduler() { return sched_; }
  net::Network& network() { return net_; }
  util::Rng& rng() { return rng_; }
  const VodParams& params() const { return params_; }
  gcs::GcsConfig& gcs_config() { return gcs_cfg_; }
  std::vector<std::unique_ptr<ServerNode>>& servers() { return servers_; }
  std::vector<std::unique_ptr<ClientNode>>& clients() { return clients_; }
  std::vector<std::unique_ptr<GatewayNode>>& gateways() { return gateways_; }

  void run_for(sim::Duration d) { sched_.run_for(d); }
  void run_until(sim::Time t) { sched_.run_until(t); }

 private:
  sim::Scheduler sched_;
  util::Rng rng_;
  net::Network net_;
  VodParams params_;
  gcs::GcsConfig gcs_cfg_;
  std::vector<std::unique_ptr<ServerNode>> servers_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  std::vector<std::unique_ptr<GatewayNode>> gateways_;
};

}  // namespace ftvod::vod
