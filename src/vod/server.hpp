// The VoD server (§3, §5). One per host. Movies are added to its catalog on
// the fly; for each movie it joins the movie group and shares its clients'
// positions every sync period. On every movie-group view change the
// surviving servers deterministically re-distribute the clients
// (redistribution.hpp) and the new owner of a client simply joins the
// client's session group and resumes transmission from the last-synced
// offset — the client never learns which server is sending.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "gcs/daemon.hpp"
#include "mpeg/catalog.hpp"
#include "mpeg/quality.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"
#include "vod/emergency.hpp"
#include "vod/params.hpp"
#include "vod/redistribution.hpp"
#include "vod/wire.hpp"

namespace ftvod::vod {

struct ServerStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t sessions_opened = 0;   // fresh client connections
  std::uint64_t takeovers = 0;         // sessions adopted from another server
  std::uint64_t migrations_out = 0;    // sessions handed to another server
  std::uint64_t syncs_sent = 0;
  std::uint64_t rebalances = 0;
  /// Group-delivered control messages this server rejected: unknown type
  /// for the channel, decoder refusal, or a client-id mismatch.
  std::uint64_t malformed_dropped = 0;
};

/// The last re-distribution this server computed for one movie, exposed so
/// an external monitor can assert that all surviving movie-group members
/// reached the same assignment for the same view (§5.2's determinism
/// claim). `authoritative` is false when the fallback timer fired before
/// every member's table arrived — then the inputs were not guaranteed
/// identical across members and the outputs are not comparable.
struct RebalanceSnapshot {
  std::uint64_t exchange_tag = 0;
  bool authoritative = false;
  std::vector<net::NodeId> view_servers;
  /// The owner table the computation ran on. Members may legitimately hold
  /// slightly different tables for the same exchange (periodic syncs keep
  /// flowing while the exchange is in flight), so monitors must only
  /// compare assignments whose inputs were identical.
  Assignment input_owners;
  Assignment assignment;
};

class VodServer {
 public:
  VodServer(sim::Scheduler& sched, net::Network& net, gcs::Daemon& daemon,
            VodParams params);
  ~VodServer() = default;
  VodServer(const VodServer&) = delete;
  VodServer& operator=(const VodServer&) = delete;

  /// Stores a movie locally and joins its movie group ("replication done").
  void add_movie(std::shared_ptr<const mpeg::Movie> movie);
  /// Drops a movie: existing sessions migrate away at the next view change.
  void remove_movie(const std::string& name);

  [[nodiscard]] net::NodeId node() const { return daemon_->self(); }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] bool serves(std::uint64_t client_id) const {
    return sessions_.contains(client_id);
  }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const net::SocketStats& data_socket_stats() const {
    return data_socket_->stats();
  }
  [[nodiscard]] const mpeg::Catalog& catalog() const { return catalog_; }
  [[nodiscard]] bool halted() const { return halted_; }
  /// Monitor accessor: last computed re-distribution for `movie`, or
  /// nullptr when none ran yet (or the movie is unknown here).
  [[nodiscard]] const RebalanceSnapshot* rebalance_snapshot(
      const std::string& movie) const;
  /// Monitor accessor: true while a view change's table exchange is still
  /// in flight for `movie` (the assignment is about to be recomputed).
  [[nodiscard]] bool rebalance_pending(const std::string& movie) const;

  /// Graceful detach (§3: a server "crashes or detaches"): leaves the
  /// server group and every movie group, so the remaining servers observe
  /// an orderly membership change and take the clients over *without*
  /// waiting for failure detection. Sessions are closed after the groups
  /// are left. The server can not be re-attached; start a new one.
  void detach();

  /// Hard stop: ceases all activity without leaving groups (also wired to
  /// host crash; peers discover the failure via the failure detector).
  void halt();

 private:
  struct Session {
    Session(sim::Scheduler& sched, double decay)
        : eq(decay), send_timer(sched) {}
    wire::ClientRecord rec;
    /// Snapshot of rec as of the last periodic sync: the state the rest of
    /// the movie group is known to have. Table exchanges advertise this,
    /// not the live offset — the paper's conservative approach, which makes
    /// a takeover re-send (duplicate) rather than skip frames.
    wire::ClientRecord synced_rec;
    std::shared_ptr<const mpeg::Movie> movie;
    std::unique_ptr<gcs::GroupMember> member;  // session group
    std::optional<mpeg::QualityFilter> quality;
    EmergencyQuantity eq;
    /// Base quantity of the burst in progress (escalation gate).
    int burst_base = 0;
    sim::OneShotTimer send_timer;
    /// The emergency quantity decays when the send loop passes this time.
    sim::Time next_decay_at = 0;
    bool finished = false;  // reached the end of the movie
  };

  struct MovieState {
    explicit MovieState(sim::Scheduler& sched) : rebalance_timer(sched) {}
    std::shared_ptr<const mpeg::Movie> movie;
    std::unique_ptr<gcs::GroupMember> member;  // movie group
    /// Last-synced record per client watching this movie (self + remote).
    std::map<std::uint64_t, wire::ClientRecord> records;
    /// Last known owner per client.
    Assignment owners;
    /// Consecutive owner-syncs that failed to report a client.
    std::map<std::uint64_t, int> absent_counts;
    /// Consecutive syncs in which a lower-id member claimed a client this
    /// server is also streaming to. Divergent fallback rebalances can leave
    /// two members believing they own the same client; after the count
    /// passes a small threshold the higher-id member yields, restoring the
    /// single-server invariant deterministically.
    std::map<std::uint64_t, int> conflict_counts;
    /// Redistribution round state for the current group view. A round is
    /// identified by the exchange tag (derived from the group view); every
    /// member rebalances when it has delivered the tagged table of every
    /// view member — the same point of the total order at all members.
    std::vector<net::NodeId> view_servers;
    std::uint64_t exchange_tag = 0;
    std::set<net::NodeId> pending_tables;
    bool rebalance_pending = false;
    sim::OneShotTimer rebalance_timer;
    RebalanceSnapshot last_rebalance;
  };

  // control-plane handlers
  void on_server_group_message(const gcs::GcsEndpoint& from,
                               std::span<const std::byte> data);
  void on_movie_group_message(const std::string& movie,
                              const gcs::GcsEndpoint& from,
                              std::span<const std::byte> data);
  void on_movie_group_view(const std::string& movie, const gcs::GroupView& v);
  void on_session_message(std::uint64_t client_id,
                          const gcs::GcsEndpoint& from,
                          std::span<const std::byte> data);
  void on_session_view(std::uint64_t client_id, const gcs::GroupView& v);

  void handle_open_request(const wire::OpenRequest& req);
  void apply_state_sync(net::NodeId from, const wire::StateSync& sync);
  void rebalance_now(const std::string& movie, bool authoritative);

  // session lifecycle
  void open_session(const wire::ClientRecord& rec,
                    std::shared_ptr<const mpeg::Movie> movie,
                    bool is_takeover);
  void close_session(std::uint64_t client_id, bool client_gone);
  void send_tick(std::uint64_t client_id);
  void arm_send_timer(Session& s);
  void send_sync();

  [[nodiscard]] double effective_rate(const Session& s) const;

  sim::Scheduler* sched_;
  net::Network* net_;
  gcs::Daemon* daemon_;
  VodParams params_;
  bool halted_ = false;

  mpeg::Catalog catalog_;
  std::unique_ptr<net::Socket> data_socket_;
  /// Reused per-frame encode buffer for send_tick; the socket copies the
  /// span into the network's pooled storage, so this stays warm forever.
  util::Writer frame_writer_;
  std::unique_ptr<gcs::GroupMember> server_group_;
  std::map<std::string, std::unique_ptr<MovieState>> movies_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::map<std::uint64_t, std::string> session_movie_;  // client -> movie

  sim::PeriodicTimer sync_timer_;
  ServerStats stats_;
};

}  // namespace ftvod::vod
