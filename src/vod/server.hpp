// The VoD server (§3, §5). One per host. Movies are added to its catalog on
// the fly; for each movie it joins the movie group and shares its clients'
// positions every sync period. On every movie-group view change the
// surviving servers deterministically re-distribute the clients
// (redistribution.hpp) and the new owner of a client simply joins the
// client's session group and resumes transmission from the last-synced
// offset — the client never learns which server is sending.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "gcs/daemon.hpp"
#include "mpeg/catalog.hpp"
#include "mpeg/quality.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"
#include "vod/emergency.hpp"
#include "vod/params.hpp"
#include "vod/redistribution.hpp"
#include "vod/wire.hpp"

namespace ftvod::vod {

struct ServerStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t sessions_opened = 0;   // fresh client connections
  std::uint64_t takeovers = 0;         // sessions adopted from another server
  std::uint64_t migrations_out = 0;    // sessions handed to another server
  std::uint64_t syncs_sent = 0;
  std::uint64_t rebalances = 0;
  /// Group-delivered control messages this server rejected: unknown type
  /// for the channel, decoder refusal, or a client-id mismatch.
  std::uint64_t malformed_dropped = 0;
};

/// The last re-distribution this server computed for one movie, exposed so
/// an external monitor can assert that all surviving movie-group members
/// reached the same assignment for the same view (§5.2's determinism
/// claim). `authoritative` is false when the fallback timer fired before
/// every member's table arrived — then the inputs were not guaranteed
/// identical across members and the outputs are not comparable.
struct RebalanceSnapshot {
  std::uint64_t exchange_tag = 0;
  bool authoritative = false;
  std::vector<net::NodeId> view_servers;
  /// The owner table the computation ran on. Members may legitimately hold
  /// slightly different tables for the same exchange (periodic syncs keep
  /// flowing while the exchange is in flight), so monitors must only
  /// compare assignments whose inputs were identical.
  Assignment input_owners;
  Assignment assignment;
};

class VodServer {
 public:
  VodServer(sim::Scheduler& sched, net::Network& net, gcs::Daemon& daemon,
            VodParams params);
  ~VodServer() = default;
  VodServer(const VodServer&) = delete;
  VodServer& operator=(const VodServer&) = delete;

  /// Stores a movie locally and joins its movie group ("replication done").
  void add_movie(std::shared_ptr<const mpeg::Movie> movie);
  /// Drops a movie: existing sessions migrate away at the next view change.
  void remove_movie(const std::string& name);

  [[nodiscard]] net::NodeId node() const { return daemon_->self(); }
  [[nodiscard]] std::size_t session_count() const {
    return session_index_.size();
  }
  [[nodiscard]] bool serves(std::uint64_t client_id) const {
    return session_index_.contains(client_id);
  }
  /// Local sessions currently streaming `movie` (monitor / placement use).
  [[nodiscard]] std::size_t session_count(const std::string& movie) const;
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const net::SocketStats& data_socket_stats() const {
    return data_socket_->stats();
  }
  [[nodiscard]] const mpeg::Catalog& catalog() const { return catalog_; }
  [[nodiscard]] bool halted() const { return halted_; }
  /// Monitor accessor: last computed re-distribution for `movie`, or
  /// nullptr when none ran yet (or the movie is unknown here).
  [[nodiscard]] const RebalanceSnapshot* rebalance_snapshot(
      const std::string& movie) const;
  /// Monitor accessor: true while a view change's table exchange is still
  /// in flight for `movie` (the assignment is about to be recomputed).
  [[nodiscard]] bool rebalance_pending(const std::string& movie) const;

  /// Graceful detach (§3: a server "crashes or detaches"): leaves the
  /// server group and every movie group, so the remaining servers observe
  /// an orderly membership change and take the clients over *without*
  /// waiting for failure detection. Sessions are closed after the groups
  /// are left. The server can not be re-attached; start a new one.
  void detach();

  /// Hard stop: ceases all activity without leaving groups (also wired to
  /// host crash; peers discover the failure via the failure detector).
  void halt();

 private:
  /// Per-client serving state. Sessions live in a slab (`session_slab_`):
  /// slots are recycled through a free list so steady-state churn re-uses
  /// the allocation, and the dense id→slot map keeps every per-frame lookup
  /// O(1) instead of a red-black-tree walk per sent frame.
  struct Session {
    Session(sim::Scheduler& sched, double decay)
        : eq(decay), send_timer(sched) {}
    wire::ClientRecord rec;
    /// Snapshot of rec as of the last periodic sync: the state the rest of
    /// the movie group is known to have. Table exchanges advertise this,
    /// not the live offset — the paper's conservative approach, which makes
    /// a takeover re-send (duplicate) rather than skip frames.
    wire::ClientRecord synced_rec;
    std::shared_ptr<const mpeg::Movie> movie;
    std::unique_ptr<gcs::GroupMember> member;  // session group
    std::optional<mpeg::QualityFilter> quality;
    EmergencyQuantity eq;
    /// Base quantity of the burst in progress (escalation gate).
    int burst_base = 0;
    sim::OneShotTimer send_timer;
    /// The emergency quantity decays when the send loop passes this time.
    sim::Time next_decay_at = 0;
    bool finished = false;  // reached the end of the movie
    bool in_use = false;    // slab slot occupancy
  };

  struct MovieState {
    explicit MovieState(sim::Scheduler& sched) : rebalance_timer(sched) {}
    std::shared_ptr<const mpeg::Movie> movie;
    std::unique_ptr<gcs::GroupMember> member;  // movie group
    /// Last-synced record per client watching this movie (self + remote).
    std::map<std::uint64_t, wire::ClientRecord> records;
    /// Last known owner per client.
    Assignment owners;
    /// Consecutive owner-syncs that failed to report a client.
    std::map<std::uint64_t, int> absent_counts;
    /// Consecutive syncs in which a lower-id member claimed a client this
    /// server is also streaming to. Divergent fallback rebalances can leave
    /// two members believing they own the same client; after the count
    /// passes a small threshold the higher-id member yields, restoring the
    /// single-server invariant deterministically.
    std::map<std::uint64_t, int> conflict_counts;
    /// Consecutive OpenRequests deferred to a live peer the owner table
    /// claims is serving the client. A genuinely served client never asks
    /// twice (the owner re-sends its reply on the first retry), so a second
    /// ask proves the claim is stale — divergent fallback rebalances can
    /// otherwise strand a client with every member deferring to another.
    std::map<std::uint64_t, int> open_deferrals;
    /// Redistribution round state for the current group view. A round is
    /// identified by the exchange tag (derived from the group view); every
    /// member rebalances when it has delivered the tagged table of every
    /// view member — the same point of the total order at all members.
    std::vector<net::NodeId> view_servers;
    std::uint64_t exchange_tag = 0;
    std::set<net::NodeId> pending_tables;
    bool rebalance_pending = false;
    sim::OneShotTimer rebalance_timer;
    RebalanceSnapshot last_rebalance;
    /// Client ids of the local sessions streaming this movie, in open order.
    /// Periodic syncs and table exchanges walk this list, so their cost is
    /// O(sessions of this movie), not O(movies × all sessions).
    std::vector<std::uint64_t> local_sessions;
  };

  // control-plane handlers
  void on_server_group_message(const gcs::GcsEndpoint& from,
                               std::span<const std::byte> data);
  void on_movie_group_message(const std::string& movie,
                              const gcs::GcsEndpoint& from,
                              std::span<const std::byte> data);
  void on_movie_group_view(const std::string& movie, const gcs::GroupView& v);
  void on_session_message(std::uint64_t client_id,
                          const gcs::GcsEndpoint& from,
                          std::span<const std::byte> data);
  void on_session_view(std::uint64_t client_id, const gcs::GroupView& v);

  void handle_open_request(const wire::OpenRequest& req);
  void apply_state_sync(net::NodeId from, const wire::StateSync& sync);
  void rebalance_now(const std::string& movie, bool authoritative);

  // session lifecycle
  void open_session(const wire::ClientRecord& rec,
                    std::shared_ptr<const mpeg::Movie> movie,
                    bool is_takeover);
  void close_session(std::uint64_t client_id, bool client_gone);
  void send_tick(std::uint64_t client_id);
  void arm_send_timer(Session& s);
  void send_sync();

  [[nodiscard]] double effective_rate(const Session& s) const;
  [[nodiscard]] Session* find_session(std::uint64_t client_id);
  [[nodiscard]] const Session* find_session(std::uint64_t client_id) const;
  /// Runs f for every live session (any movie).
  template <typename F>
  void for_each_session(F&& f) {
    for (const auto& [id, slot] : session_index_) f(id, *session_slab_[slot]);
  }

  sim::Scheduler* sched_;
  net::Network* net_;
  gcs::Daemon* daemon_;
  VodParams params_;
  bool halted_ = false;

  mpeg::Catalog catalog_;
  std::unique_ptr<net::Socket> data_socket_;
  /// Reused per-frame encode buffer for send_tick; the socket copies the
  /// span into the network's pooled storage, so this stays warm forever.
  util::Writer frame_writer_;
  std::unique_ptr<gcs::GroupMember> server_group_;
  std::map<std::string, std::unique_ptr<MovieState>> movies_;
  /// Session slab: slots are stable (Session is non-movable — it owns a
  /// OneShotTimer), recycled through `session_free_`, and addressed by the
  /// dense id→slot index. A freed slot keeps its allocation, so open/close
  /// churn stops allocating once the slab reaches its high-water mark.
  std::vector<std::unique_ptr<Session>> session_slab_;
  std::vector<std::uint32_t> session_free_;
  std::unordered_map<std::uint64_t, std::uint32_t> session_index_;

  sim::PeriodicTimer sync_timer_;
  ServerStats stats_;
};

}  // namespace ftvod::vod
