// Deterministic client re-distribution (§5.2). After every movie-group
// membership change, each surviving server runs this pure function on the
// shared client table and the new view; because the inputs are identical at
// every member (the table is built from totally-ordered state syncs and the
// view is agreed), every server reaches the same assignment without any
// extra coordination round.
//
// The algorithm is *stable*: clients keep their current server whenever the
// load allows, so a view change moves the minimum number of sessions
// (crashed servers' orphans first, then overflow from overloaded servers).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/address.hpp"

namespace ftvod::vod {

/// client id -> serving node (net::kInvalidNode for "currently unserved").
using Assignment = std::map<std::uint64_t, net::NodeId>;

/// How the remainder (when clients don't divide evenly) is allocated.
enum class RebalancePolicy {
  /// Extra quota goes to the currently least-loaded servers: a freshly
  /// started (empty) server always attracts work. This reproduces the
  /// paper's measured run, where the single client migrated to the server
  /// brought up on the fly. Not idempotent for the remainder clients.
  kSpread,
  /// Extra quota stays with the currently most-loaded servers: minimal
  /// session movement, idempotent, but a new server relieves load only
  /// when the imbalance exceeds one. (Ablation alternative.)
  kStable,
};

/// Computes the new assignment.
///   current  — last known owner per client (owners not in `servers` are
///              treated as failed; their clients are orphans)
///   servers  — the movie group's new membership, sorted ascending
/// Postconditions: every client is assigned to a member of `servers`
/// (unless `servers` is empty), and the load is balanced to within one.
Assignment rebalance(const Assignment& current,
                     const std::vector<net::NodeId>& servers,
                     RebalancePolicy policy = RebalancePolicy::kSpread);

/// Chooses the server that must serve a brand-new client, given the current
/// per-server session counts. Deterministic: least-loaded, ties to the
/// lowest node id. Returns net::kInvalidNode when `servers` is empty.
net::NodeId choose_for_new_client(const Assignment& current,
                                  const std::vector<net::NodeId>& servers);

}  // namespace ftvod::vod
