// View-change half of the GCS daemon: failure detection, merge discovery,
// the propose/flush/install protocol, and its failure/retry paths.
#include <algorithm>

#include "gcs/daemon.hpp"
#include "util/log.hpp"

namespace ftvod::gcs {

namespace {
constexpr std::string_view kLog = "gcs";
constexpr int kMaxProposalRounds = 3;
constexpr int kInstallResends = 2;

std::vector<net::NodeId> sorted_unique(std::vector<net::NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

// ---------------------------------------------------------- heartbeats & FD

void Daemon::on_heartbeat_timer() {
  if (halted_) return;
  wire::Heartbeat hb;
  hb.view = view_.id;
  hb.members = view_.members;
  hb.delivered_upto = next_deliver_gseq_ - 1;
  if (view_.id.coord == self_ && state_ == State::kNormal) {
    // Stability horizon: everything every member has delivered.
    std::uint64_t safe = next_deliver_gseq_ - 1;
    for (net::NodeId m : view_.members) {
      if (m == self_) continue;
      auto it = member_delivered_.find(m);
      safe = std::min(safe, it == member_delivered_.end() ? 0 : it->second);
    }
    safe_upto_ = safe;
    trim_retention(safe_upto_);
  }
  hb.safe_upto = safe_upto_;
  wire::encode_into(hb, scratch_);
  for (net::NodeId peer : cfg_.peers) {
    if (peer != self_) send_to(peer, scratch_.buffer());
  }
}

void Daemon::handle_heartbeat(net::NodeId from, const wire::Heartbeat& m) {
  max_counter_seen_ = std::max(max_counter_seen_, m.view.counter);
  if (m.view == view_.id) {
    member_delivered_[from] = m.delivered_upto;
    if (from == view_.id.coord && m.safe_upto > safe_upto_ &&
        state_ == State::kNormal) {
      safe_upto_ = m.safe_upto;
      trim_retention(safe_upto_);
    }
    // Tail-loss repair: NACKs only fire when a *later* message reveals a
    // gap. When the coordinator sees a member lagging behind the ordering
    // horizon, it pushes the missing suffix.
    if (view_.id.coord == self_ && state_ == State::kNormal &&
        m.delivered_upto < next_order_gseq_ - 1) {
      const wire::RetransReq req{view_.id, m.delivered_upto + 1,
                                 next_order_gseq_ - 1};
      handle_retrans_req(from, req);
    }
    foreign_.erase(from);
    return;
  }
  if (!view_.contains(from)) {
    // A daemon in a different view: candidate for a merge.
    foreign_[from] = m;
    consider_view_change();
    return;
  }
  // A member of our view advertising a view that no longer *contains us*
  // means we were dropped while unable to notice (classic case: this daemon
  // was paused past the suspect timeout, and on resume the others' ongoing
  // heartbeats keep refreshing last_heard_, so we never self-suspect). We
  // cannot sit this out: the merge rule defers to the lowest candidate id,
  // which may well be us. Treat the sighting as foreign so the normal
  // merge path runs from our side too.
  if (std::find(m.members.begin(), m.members.end(), self_) ==
      m.members.end()) {
    foreign_[from] = m;
    consider_view_change();
  }
  // A member advertising a different view that still includes us just means
  // we missed an install; retransmission repairs that. Nothing to do here.
}

void Daemon::on_fd_check() {
  if (halted_) return;
  const sim::Time now = sched_->now();
  for (net::NodeId m : view_.members) {
    if (m == self_) continue;
    auto it = last_heard_.find(m);
    const sim::Time last = it == last_heard_.end() ? 0 : it->second;
    if (now - last > cfg_.suspect_timeout) {
      if (suspects_.insert(m).second) {
        util::log_info(kLog, "n", self_, " suspects n", m);
      }
    }
  }
  // Forget stale foreign sightings so we do not merge with the departed.
  for (auto it = foreign_.begin(); it != foreign_.end();) {
    const sim::Time last = last_heard_.contains(it->first)
                               ? last_heard_[it->first]
                               : 0;
    if (now - last > cfg_.suspect_timeout) {
      it = foreign_.erase(it);
    } else {
      ++it;
    }
  }
  consider_view_change();
}

void Daemon::consider_view_change() {
  if (halted_ || proposal_.has_value()) return;

  const sim::Time now = sched_->now();
  const bool have_suspect_member =
      std::any_of(view_.members.begin(), view_.members.end(),
                  [&](net::NodeId m) { return suspects_.contains(m); });
  const bool have_foreign = !foreign_.empty();

  if (state_ == State::kBlocked) {
    // A proposal by someone else is in progress; only interfere if the
    // proposer itself is now suspected (handled by the rescue timer).
    return;
  }
  if (!have_suspect_member && !have_foreign) return;

  // Candidate membership: survivors of our view plus everyone heard in
  // foreign views, minus suspects.
  std::vector<net::NodeId> candidate;
  for (net::NodeId m : view_.members) {
    if (!suspects_.contains(m)) candidate.push_back(m);
  }
  if (have_foreign) {
    if (now - last_proposal_time_ < cfg_.merge_backoff) return;
    for (const auto& [node, hb] : foreign_) {
      if (!suspects_.contains(node)) candidate.push_back(node);
      for (net::NodeId m : hb.members) {
        if (!suspects_.contains(m)) candidate.push_back(m);
      }
    }
  } else if (now - last_proposal_time_ < cfg_.propose_retry) {
    return;
  }
  candidate = sorted_unique(std::move(candidate));
  if (candidate.empty() || candidate.front() != self_) return;
  start_proposal(std::move(candidate));
}

// ------------------------------------------------------------- proposer side

void Daemon::start_proposal(std::vector<net::NodeId> members) {
  members = sorted_unique(std::move(members));
  if (std::find(members.begin(), members.end(), self_) == members.end()) {
    members.push_back(self_);
    std::sort(members.begin(), members.end());
  }
  Proposal p;
  p.pv = ViewId{max_counter_seen_ + 1, self_};
  p.members = members;
  max_counter_seen_ = p.pv.counter;

  util::log_info(kLog, "n", self_, " proposes ", p.pv, " with ",
                 p.members.size(), " members");

  state_ = State::kBlocked;
  blocked_since_ = sched_->now();
  last_proposal_time_ = sched_->now();
  accepted_pv_ = p.pv;
  accepted_pv_from_ = self_;
  last_proposed_members_ = p.members;
  my_flush_target_.reset();

  // Record our own ack.
  wire::ProposeAck self_ack;
  self_ack.pv = p.pv;
  self_ack.old_view = view_.id;
  self_ack.delivered_upto = next_deliver_gseq_ - 1;
  self_ack.next_submit_seq = first_pending_seq();
  self_ack.regs = local_regs_snapshot();
  p.acks.emplace(self_, std::move(self_ack));

  proposal_ = std::move(p);

  const util::Bytes bytes =
      wire::encode(wire::Propose{proposal_->pv, proposal_->members});
  for (net::NodeId m : proposal_->members) {
    if (m != self_) send_to(m, bytes);
  }
  propose_retry_timer_.arm(cfg_.propose_retry, [this] { on_propose_retry(); });
  maybe_enter_flush_phase();
}

void Daemon::handle_propose_ack(net::NodeId from, const wire::ProposeAck& m) {
  if (!proposal_ || m.pv != proposal_->pv) return;
  proposal_->acks[from] = m;
  maybe_enter_flush_phase();
}

void Daemon::maybe_enter_flush_phase() {
  if (!proposal_ || proposal_->flush_phase) return;
  for (net::NodeId m : proposal_->members) {
    if (!proposal_->acks.contains(m)) return;
  }
  proposal_->flush_phase = true;

  // Per previous view ("cluster"), everyone must reach the maximum
  // contiguous delivery any survivor achieved. The holder serves gaps.
  std::map<ViewId, wire::FlushTarget::Entry> clusters;
  for (const auto& [node, ack] : proposal_->acks) {
    auto [it, inserted] = clusters.try_emplace(
        ack.old_view,
        wire::FlushTarget::Entry{ack.old_view, ack.delivered_upto, node});
    if (!inserted && ack.delivered_upto > it->second.target) {
      it->second.target = ack.delivered_upto;
      it->second.holder = node;
    }
  }
  wire::FlushTarget ft;
  ft.pv = proposal_->pv;
  for (auto& [view, entry] : clusters) ft.entries.push_back(entry);
  proposal_->targets = ft;

  const util::Bytes bytes = wire::encode(ft);
  for (net::NodeId m : proposal_->members) {
    if (m != self_) send_to(m, bytes);
  }
  handle_flush_target(self_, ft);
  propose_retry_timer_.arm(cfg_.propose_retry, [this] { on_propose_retry(); });
}

void Daemon::handle_flush_done(net::NodeId from, const wire::FlushDone& m) {
  if (!proposal_ || m.pv != proposal_->pv) return;
  proposal_->flush_done[from] = m.delivered_upto;
  maybe_install();
}

void Daemon::maybe_install() {
  if (!proposal_ || !proposal_->flush_phase) return;
  for (net::NodeId m : proposal_->members) {
    if (!proposal_->flush_done.contains(m)) return;
  }
  build_and_send_install();
}

void Daemon::build_and_send_install() {
  wire::Install inst;
  inst.pv = proposal_->pv;
  inst.members = proposal_->members;
  for (const auto& [node, ack] : proposal_->acks) {
    inst.group_table.insert(inst.group_table.end(), ack.regs.begin(),
                            ack.regs.end());
    inst.submit_seqs.emplace_back(node, ack.next_submit_seq);
  }
  util::log_info(kLog, "n", self_, " installs ", inst.pv, " (",
                 inst.members.size(), " members)");
  const util::Bytes bytes = wire::encode(inst);
  for (net::NodeId m : inst.members) {
    if (m != self_) send_to(m, bytes);
  }
  // Best-effort resends; a member that misses all of them re-merges later.
  pending_install_ = inst;
  install_resends_left_ = kInstallResends;
  apply_install(inst);
  schedule_install_resend();
}

void Daemon::schedule_install_resend() {
  if (install_resends_left_ <= 0 || !pending_install_) return;
  --install_resends_left_;
  propose_retry_timer_.arm(cfg_.propose_retry, [this] {
    if (!pending_install_ || halted_) return;
    const util::Bytes bytes = wire::encode(*pending_install_);
    for (net::NodeId m : pending_install_->members) {
      if (m != self_) send_to(m, bytes);
    }
    schedule_install_resend();
  });
}

void Daemon::on_propose_retry() {
  if (!proposal_ || halted_) return;
  ++proposal_->round;
  if (proposal_->round > kMaxProposalRounds) {
    abandon_unresponsive_and_retry();
    return;
  }
  if (!proposal_->flush_phase) {
    const util::Bytes bytes =
        wire::encode(wire::Propose{proposal_->pv, proposal_->members});
    for (net::NodeId m : proposal_->members) {
      if (!proposal_->acks.contains(m)) send_to(m, bytes);
    }
  } else {
    const util::Bytes bytes = wire::encode(proposal_->targets);
    for (net::NodeId m : proposal_->members) {
      if (!proposal_->flush_done.contains(m)) send_to(m, bytes);
    }
  }
  propose_retry_timer_.arm(cfg_.propose_retry, [this] { on_propose_retry(); });
}

void Daemon::abandon_unresponsive_and_retry() {
  // Keep only members that progressed; everyone else is treated as failed.
  std::vector<net::NodeId> responsive;
  for (net::NodeId m : proposal_->members) {
    const bool ok = proposal_->flush_phase ? proposal_->flush_done.contains(m)
                                           : proposal_->acks.contains(m);
    if (ok) {
      responsive.push_back(m);
    } else {
      suspects_.insert(m);
      util::log_warn(kLog, "n", self_, " abandons unresponsive n", m,
                     " during view change");
    }
  }
  proposal_.reset();
  last_proposal_time_ = -1'000'000'000;  // allow immediate retry
  start_proposal(std::move(responsive));
}

// ---------------------------------------------------------- participant side

void Daemon::handle_propose(net::NodeId from, const wire::Propose& m) {
  max_counter_seen_ = std::max(max_counter_seen_, m.pv.counter);
  if (m.pv.counter <= view_.id.counter) return;  // stale
  if (std::find(m.members.begin(), m.members.end(), self_) ==
      m.members.end()) {
    return;  // not part of that proposal
  }
  if (m.pv < accepted_pv_) return;  // promised a higher proposal
  const bool duplicate = m.pv == accepted_pv_ && from == accepted_pv_from_ &&
                         state_ == State::kBlocked;
  if (!duplicate) {
    if (proposal_ && proposal_->pv < m.pv) {
      // Our own lower proposal loses; its members will adopt the higher one.
      proposal_.reset();
      propose_retry_timer_.cancel();
      pending_install_.reset();
    }
    accepted_pv_ = m.pv;
    accepted_pv_from_ = from;
    last_proposed_members_ = m.members;
    my_flush_target_.reset();
    if (state_ != State::kBlocked) {
      state_ = State::kBlocked;
      blocked_since_ = sched_->now();
    }
    rescue_timer_.arm(cfg_.blocked_rescue, [this] { on_blocked_rescue(); });
  }
  wire::ProposeAck ack;
  ack.pv = m.pv;
  ack.old_view = view_.id;
  ack.delivered_upto = next_deliver_gseq_ - 1;
  ack.next_submit_seq = first_pending_seq();
  ack.regs = local_regs_snapshot();
  if (from == self_) {
    handle_propose_ack(self_, ack);
  } else {
    send_to(from, wire::encode(ack));
  }
}

void Daemon::handle_flush_target(net::NodeId from, const wire::FlushTarget& m) {
  (void)from;
  if (m.pv != accepted_pv_ || state_ != State::kBlocked) return;
  my_flush_target_ = m;
  check_flush_progress();
  maybe_nack();
}

void Daemon::check_flush_progress() {
  if (!my_flush_target_) return;
  for (const auto& e : my_flush_target_->entries) {
    if (e.old_view != view_.id) continue;
    if (next_deliver_gseq_ - 1 < e.target) return;  // still catching up
  }
  wire::FlushDone done{my_flush_target_->pv, next_deliver_gseq_ - 1};
  if (accepted_pv_from_ == self_) {
    handle_flush_done(self_, done);
  } else {
    send_to(accepted_pv_from_, wire::encode(done));
  }
}

void Daemon::handle_install(net::NodeId from, const wire::Install& m) {
  (void)from;
  max_counter_seen_ = std::max(max_counter_seen_, m.pv.counter);
  if (m.pv.counter <= view_.id.counter) return;  // duplicate / stale
  if (std::find(m.members.begin(), m.members.end(), self_) ==
      m.members.end()) {
    return;
  }
  apply_install(m);
}

void Daemon::apply_install(const wire::Install& m) {
  ++stats_.view_changes;
  const std::map<std::string, std::set<GcsEndpoint>> old_table = group_table_;

  view_.id = m.pv;
  view_.members = m.members;
  state_ = State::kNormal;
  accepted_pv_ = m.pv;
  accepted_pv_from_ = m.pv.coord;
  my_flush_target_.reset();
  if (proposal_ && proposal_->pv != m.pv) proposal_.reset();
  if (proposal_ && proposal_->pv == m.pv) proposal_.reset();
  rescue_timer_.cancel();

  holdback_.clear();
  retention_.clear();
  next_deliver_gseq_ = 1;
  next_order_gseq_ = 1;
  safe_upto_ = 0;
  submit_buffer_.clear();
  member_delivered_.clear();
  next_submit_expected_.clear();
  for (const auto& [node, seq] : m.submit_seqs) {
    next_submit_expected_[node] = seq;
  }

  const sim::Time now = sched_->now();
  for (net::NodeId member : view_.members) {
    last_heard_[member] = now;
    suspects_.erase(member);
    foreign_.erase(member);
  }
  group_change_seq_.clear();

  group_table_.clear();
  for (const auto& reg : m.group_table) {
    group_table_[reg.group].insert(reg.member);
  }

  util::log_info(kLog, "n", self_, " now in ", view_.id, " with ",
                 view_.members.size(), " members");

  // Deliver fresh views for every locally-registered group whose membership
  // may have changed (conservatively: all of them).
  const std::vector<std::string> local_groups = [&] {
    std::vector<std::string> g;
    for (const auto& [group, handles] : local_members_) g.push_back(group);
    return g;
  }();
  for (const std::string& group : local_groups) emit_group_view(group);

  flush_pending_submits();
}

void Daemon::on_blocked_rescue() {
  if (halted_ || state_ != State::kBlocked) return;
  // The proposer has gone quiet for a long time. Suspect it and let the
  // smallest surviving candidate re-propose.
  if (accepted_pv_from_ != self_) suspects_.insert(accepted_pv_from_);
  std::vector<net::NodeId> candidate;
  for (net::NodeId m : last_proposed_members_) {
    if (!suspects_.contains(m)) candidate.push_back(m);
  }
  candidate = sorted_unique(std::move(candidate));
  if (!candidate.empty() && candidate.front() == self_) {
    proposal_.reset();
    last_proposal_time_ = -1'000'000'000;
    start_proposal(std::move(candidate));
  } else {
    rescue_timer_.arm(cfg_.blocked_rescue, [this] { on_blocked_rescue(); });
  }
}

}  // namespace ftvod::gcs
