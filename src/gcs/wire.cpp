#include "gcs/wire.hpp"

#include "util/frame.hpp"

namespace ftvod::gcs::wire {

namespace {

void put_view_id(util::Writer& w, const ViewId& v) {
  w.u64(v.counter);
  w.u32(v.coord);
}

ViewId get_view_id(util::Reader& r) {
  ViewId v;
  v.counter = r.u64();
  v.coord = r.u32();
  return v;
}

void put_endpoint(util::Writer& w, const GcsEndpoint& e) {
  w.u32(e.node);
  w.u32(e.local);
}

GcsEndpoint get_endpoint(util::Reader& r) {
  GcsEndpoint e;
  e.node = r.u32();
  e.local = r.u32();
  return e;
}

void put_nodes(util::Writer& w, const std::vector<net::NodeId>& nodes) {
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (net::NodeId n : nodes) w.u32(n);
}

std::vector<net::NodeId> get_nodes(util::Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<net::NodeId> out;
  // Each node id occupies 4 bytes, so a count the remaining bytes cannot
  // hold is definitionally malformed — reject before reserving anything.
  if (!r.ok() || n > r.remaining() / 4) {
    r.fail();
    return out;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.u32());
  return out;
}

void put_regs(util::Writer& w, const std::vector<GroupReg>& regs) {
  w.u32(static_cast<std::uint32_t>(regs.size()));
  for (const GroupReg& g : regs) {
    w.str(g.group);
    put_endpoint(w, g.member);
  }
}

std::vector<GroupReg> get_regs(util::Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<GroupReg> out;
  // Minimum encoded GroupReg: 4-byte string length + 8-byte endpoint.
  if (!r.ok() || n > r.remaining() / 12) {
    r.fail();
    return out;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GroupReg g;
    g.group = r.str();
    g.member = get_endpoint(r);
    out.push_back(std::move(g));
  }
  return out;
}

void begin(util::Writer& w, MsgType t) {
  util::frame_begin(w);  // clears w, reserves the integrity header
  w.u8(static_cast<std::uint8_t>(t));
}

/// Verifies the integrity frame and the tag, returning a reader positioned
/// on the first body field. Every decoder funnels through this, so damaged
/// datagrams are rejected before a single field is interpreted.
std::optional<util::Reader> body(std::span<const std::byte> data, MsgType t) {
  const auto opened = util::frame_open(data);
  if (!opened) return std::nullopt;
  util::Reader r(*opened);
  if (r.u8() != static_cast<std::uint8_t>(t) || !r.ok()) return std::nullopt;
  return r;
}

}  // namespace

std::optional<MsgType> peek_type(std::span<const std::byte> data) {
  // Structural frame check only (no CRC): demux is on the hot path, and the
  // per-type decoder re-verifies the full checksum via body().
  const auto opened = util::frame_peek(data);
  if (!opened || opened->empty()) return std::nullopt;
  const auto t = std::to_integer<std::uint8_t>((*opened)[0]);
  if (t < static_cast<std::uint8_t>(MsgType::kHeartbeat) ||
      t > static_cast<std::uint8_t>(MsgType::kInstall)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(t);
}

void encode_into(const Heartbeat& m, util::Writer& w) {
  begin(w, MsgType::kHeartbeat);
  put_view_id(w, m.view);
  put_nodes(w, m.members);
  w.u64(m.delivered_upto);
  w.u64(m.safe_upto);
  util::frame_seal(w);
}

util::Bytes encode(const Heartbeat& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Heartbeat> decode_heartbeat(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kHeartbeat);
  if (!r) return std::nullopt;
  Heartbeat m;
  m.view = get_view_id(*r);
  m.members = get_nodes(*r);
  m.delivered_upto = r->u64();
  m.safe_upto = r->u64();
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Submit& m, util::Writer& w) {
  begin(w, MsgType::kSubmit);
  put_view_id(w, m.view);
  w.u64(m.sender_seq);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.str(m.group);
  put_endpoint(w, m.origin);
  w.blob(m.payload);
  util::frame_seal(w);
}

util::Bytes encode(const Submit& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Submit> decode_submit(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kSubmit);
  if (!r) return std::nullopt;
  Submit m;
  m.view = get_view_id(*r);
  m.sender_seq = r->u64();
  m.kind = static_cast<PayloadKind>(r->u8());
  m.group = r->str();
  m.origin = get_endpoint(*r);
  m.payload = r->blob();
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Ordered& m, util::Writer& w) {
  begin(w, MsgType::kOrdered);
  put_view_id(w, m.view);
  w.u64(m.gseq);
  w.u32(m.sender);
  w.u64(m.sender_seq);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.str(m.group);
  put_endpoint(w, m.origin);
  w.blob(m.payload);
  util::frame_seal(w);
}

util::Bytes encode(const Ordered& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Ordered> decode_ordered(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kOrdered);
  if (!r) return std::nullopt;
  Ordered m;
  m.view = get_view_id(*r);
  m.gseq = r->u64();
  m.sender = r->u32();
  m.sender_seq = r->u64();
  m.kind = static_cast<PayloadKind>(r->u8());
  m.group = r->str();
  m.origin = get_endpoint(*r);
  m.payload = r->blob();
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const RetransReq& m, util::Writer& w) {
  begin(w, MsgType::kRetransReq);
  put_view_id(w, m.view);
  w.u64(m.from_gseq);
  w.u64(m.to_gseq);
  util::frame_seal(w);
}

util::Bytes encode(const RetransReq& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<RetransReq> decode_retrans_req(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kRetransReq);
  if (!r) return std::nullopt;
  RetransReq m;
  m.view = get_view_id(*r);
  m.from_gseq = r->u64();
  m.to_gseq = r->u64();
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Propose& m, util::Writer& w) {
  begin(w, MsgType::kPropose);
  put_view_id(w, m.pv);
  put_nodes(w, m.members);
  util::frame_seal(w);
}

util::Bytes encode(const Propose& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Propose> decode_propose(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kPropose);
  if (!r) return std::nullopt;
  Propose m;
  m.pv = get_view_id(*r);
  m.members = get_nodes(*r);
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const ProposeAck& m, util::Writer& w) {
  begin(w, MsgType::kProposeAck);
  put_view_id(w, m.pv);
  put_view_id(w, m.old_view);
  w.u64(m.delivered_upto);
  w.u64(m.next_submit_seq);
  put_regs(w, m.regs);
  util::frame_seal(w);
}

util::Bytes encode(const ProposeAck& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<ProposeAck> decode_propose_ack(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kProposeAck);
  if (!r) return std::nullopt;
  ProposeAck m;
  m.pv = get_view_id(*r);
  m.old_view = get_view_id(*r);
  m.delivered_upto = r->u64();
  m.next_submit_seq = r->u64();
  m.regs = get_regs(*r);
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const FlushTarget& m, util::Writer& w) {
  begin(w, MsgType::kFlushTarget);
  put_view_id(w, m.pv);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    put_view_id(w, e.old_view);
    w.u64(e.target);
    w.u32(e.holder);
  }
  util::frame_seal(w);
}

util::Bytes encode(const FlushTarget& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<FlushTarget> decode_flush_target(
    std::span<const std::byte> data) {
  auto r = body(data, MsgType::kFlushTarget);
  if (!r) return std::nullopt;
  FlushTarget m;
  m.pv = get_view_id(*r);
  const std::uint32_t n = r->u32();
  if (!r->ok() || n > 1'000'000) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    FlushTarget::Entry e;
    e.old_view = get_view_id(*r);
    e.target = r->u64();
    e.holder = r->u32();
    m.entries.push_back(e);
  }
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const FlushDone& m, util::Writer& w) {
  begin(w, MsgType::kFlushDone);
  put_view_id(w, m.pv);
  w.u64(m.delivered_upto);
  util::frame_seal(w);
}

util::Bytes encode(const FlushDone& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<FlushDone> decode_flush_done(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kFlushDone);
  if (!r) return std::nullopt;
  FlushDone m;
  m.pv = get_view_id(*r);
  m.delivered_upto = r->u64();
  if (!r->done()) return std::nullopt;
  return m;
}

void encode_into(const Install& m, util::Writer& w) {
  begin(w, MsgType::kInstall);
  put_view_id(w, m.pv);
  put_nodes(w, m.members);
  put_regs(w, m.group_table);
  w.u32(static_cast<std::uint32_t>(m.submit_seqs.size()));
  for (const auto& [node, seq] : m.submit_seqs) {
    w.u32(node);
    w.u64(seq);
  }
  util::frame_seal(w);
}

util::Bytes encode(const Install& m) {
  util::Writer w;
  encode_into(m, w);
  return w.take();
}

std::optional<Install> decode_install(std::span<const std::byte> data) {
  auto r = body(data, MsgType::kInstall);
  if (!r) return std::nullopt;
  Install m;
  m.pv = get_view_id(*r);
  m.members = get_nodes(*r);
  m.group_table = get_regs(*r);
  const std::uint32_t n = r->u32();
  if (!r->ok() || n > 1'000'000) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    const net::NodeId node = r->u32();
    const std::uint64_t seq = r->u64();
    m.submit_seqs.emplace_back(node, seq);
  }
  if (!r->done()) return std::nullopt;
  return m;
}

}  // namespace ftvod::gcs::wire
