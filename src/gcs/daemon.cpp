#include "gcs/daemon.hpp"

#include <algorithm>
#include <cassert>

#include "util/frame.hpp"
#include "util/log.hpp"

namespace ftvod::gcs {

namespace {
constexpr std::string_view kLog = "gcs";
/// Non-member sends use local handle 0, which join() never allocates.
constexpr std::uint32_t kNonMemberLocal = 0;
/// Upper bound on ordered messages re-sent per retransmission request.
constexpr std::size_t kMaxRetransBatch = 2000;
}  // namespace

// ---------------------------------------------------------------- GroupMember

GroupMember::~GroupMember() {
  if (daemon_ != nullptr) leave();
}

void GroupMember::send(util::Bytes payload) {
  if (daemon_ != nullptr) daemon_->member_send(*this, std::move(payload));
}

void GroupMember::leave() {
  if (daemon_ == nullptr) return;
  daemon_->member_leave(*this);
  daemon_ = nullptr;
}

// --------------------------------------------------------------------- Daemon

Daemon::Daemon(sim::Scheduler& sched, net::Network& net, net::NodeId self,
               GcsConfig cfg)
    : sched_(&sched),
      net_(&net),
      self_(self),
      cfg_(std::move(cfg)),
      heartbeat_timer_(sched, cfg_.heartbeat_interval,
                       [this] { on_heartbeat_timer(); }),
      fd_timer_(sched, cfg_.fd_check_interval, [this] { on_fd_check(); }),
      resubmit_timer_(sched, cfg_.resubmit_interval,
                      [this] { flush_pending_submits(); }),
      nack_timer_(sched, cfg_.nack_delay, [this] { maybe_nack(); }),
      propose_retry_timer_(sched),
      rescue_timer_(sched) {
  socket_ = net_->bind(self_, cfg_.port,
                       [this](const net::Endpoint& from,
                              std::span<const std::byte> data) {
                         on_datagram(from, data);
                       });
  net_->on_crash(self_, [this] { halt(); });

  view_.id = ViewId{1, self_};
  view_.members = {self_};
  max_counter_seen_ = 1;
  accepted_pv_ = view_.id;
  accepted_pv_from_ = self_;
  next_submit_expected_[self_] = 1;

  // Stagger heartbeats slightly per node so daemons created at the same
  // virtual instant do not tick in perfect lockstep.
  heartbeat_timer_.start(cfg_.heartbeat_interval + sim::usec(self_ * 7));
  fd_timer_.start(cfg_.fd_check_interval + sim::usec(self_ * 11));
  resubmit_timer_.start();
  nack_timer_.start();
}

Daemon::~Daemon() {
  for (auto& [group, handles] : local_members_) {
    for (GroupMember* h : handles) h->daemon_ = nullptr;
  }
}

void Daemon::halt() {
  if (halted_) return;
  halted_ = true;
  heartbeat_timer_.stop();
  fd_timer_.stop();
  resubmit_timer_.stop();
  nack_timer_.stop();
  propose_retry_timer_.cancel();
  rescue_timer_.cancel();
  util::log_info(kLog, "daemon n", self_, " halted");
}

void Daemon::pause() {
  if (halted_ || paused_) return;
  paused_ = true;
  heartbeat_timer_.stop();
  fd_timer_.stop();
  resubmit_timer_.stop();
  nack_timer_.stop();
  propose_retry_timer_.cancel();
  rescue_timer_.cancel();
  util::log_info(kLog, "daemon n", self_, " paused");
}

void Daemon::resume() {
  if (halted_ || !paused_) return;
  paused_ = false;
  // Deliberately leave last_heard_ stale: the first fd check suspects every
  // member the pause outlived, which drives the daemon into a fresh view of
  // its own; peers re-admit it through the merge path. An in-flight
  // proposal from before the pause is abandoned the same way.
  proposal_.reset();
  pending_install_.reset();
  heartbeat_timer_.start();
  fd_timer_.start();
  resubmit_timer_.start();
  nack_timer_.start();
  if (state_ == State::kBlocked) {
    rescue_timer_.arm(cfg_.blocked_rescue, [this] { on_blocked_rescue(); });
  }
  util::log_info(kLog, "daemon n", self_, " resumed");
}

std::unique_ptr<GroupMember> Daemon::join(std::string group,
                                          GroupCallbacks callbacks) {
  const GcsEndpoint ep{self_, next_local_id_++};
  auto handle = std::unique_ptr<GroupMember>(
      new GroupMember(*this, group, ep, std::move(callbacks)));
  local_members_[group].push_back(handle.get());
  submit(wire::PayloadKind::kJoin, group, ep, {});
  return handle;
}

void Daemon::send_to_group(const std::string& group, util::Bytes payload) {
  submit(wire::PayloadKind::kApp, group, GcsEndpoint{self_, kNonMemberLocal},
         std::move(payload));
}

std::vector<GcsEndpoint> Daemon::group_members(const std::string& group) const {
  auto it = group_table_.find(group);
  if (it == group_table_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void Daemon::member_send(GroupMember& member, util::Bytes payload) {
  submit(wire::PayloadKind::kApp, member.group_, member.endpoint_,
         std::move(payload));
}

void Daemon::member_leave(GroupMember& member) {
  auto it = local_members_.find(member.group_);
  if (it != local_members_.end()) {
    std::erase(it->second, &member);
    if (it->second.empty()) local_members_.erase(it);
  }
  submit(wire::PayloadKind::kLeave, member.group_, member.endpoint_, {});
}

// ------------------------------------------------------------------- dispatch

void Daemon::on_datagram(const net::Endpoint& from,
                         std::span<const std::byte> data) {
  if (halted_ || paused_) return;
  // Integrity gate: a datagram that fails length/CRC verification carries no
  // trustworthy information at all — not even its claimed sender — so it
  // must not refresh liveness or reach a decoder.
  if (!util::frame_open(data)) {
    socket_->note_corrupt_dropped();
    ++stats_.malformed_dropped;
    return;
  }
  const net::NodeId peer = from.node;
  last_heard_[peer] = sched_->now();
  suspects_.erase(peer);

  // An intact frame with an unknown tag or a decoder-rejected body is a
  // protocol violation (or a version skew), counted but otherwise inert.
  const auto type = wire::peek_type(data);
  if (!type) {
    ++stats_.malformed_dropped;
    return;
  }
  bool handled = false;
  switch (*type) {
    case wire::MsgType::kHeartbeat:
      if (auto m = wire::decode_heartbeat(data)) {
        handle_heartbeat(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kSubmit:
      if (auto m = wire::decode_submit(data)) {
        handle_submit(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kOrdered:
      if (auto m = wire::decode_ordered(data)) {
        handle_ordered(*m);
        handled = true;
      }
      break;
    case wire::MsgType::kRetransReq:
      if (auto m = wire::decode_retrans_req(data)) {
        handle_retrans_req(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kPropose:
      if (auto m = wire::decode_propose(data)) {
        handle_propose(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kProposeAck:
      if (auto m = wire::decode_propose_ack(data)) {
        handle_propose_ack(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kFlushTarget:
      if (auto m = wire::decode_flush_target(data)) {
        handle_flush_target(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kFlushDone:
      if (auto m = wire::decode_flush_done(data)) {
        handle_flush_done(peer, *m);
        handled = true;
      }
      break;
    case wire::MsgType::kInstall:
      if (auto m = wire::decode_install(data)) {
        handle_install(peer, *m);
        handled = true;
      }
      break;
  }
  if (!handled) ++stats_.malformed_dropped;
}

void Daemon::send_to(net::NodeId node, std::span<const std::byte> bytes) {
  if (halted_ || paused_ || node == self_) return;
  socket_->send(net::Endpoint{node, cfg_.port}, bytes);
}

// ------------------------------------------------- submission & total order

void Daemon::submit(wire::PayloadKind kind, const std::string& group,
                    GcsEndpoint origin, util::Bytes payload) {
  if (halted_) return;
  const std::uint64_t seq = submit_seq_counter_++;
  wire::Submit m{view_.id, seq, kind, group, origin, payload};
  // Register as pending *before* handing to the coordinator: when this
  // daemon is the coordinator itself, ordering and delivery happen
  // synchronously, and delivery of an own message erases its pending entry.
  pending_.emplace(seq, PendingSubmit{seq, kind, group, origin,
                                      std::move(payload)});
  // Send eagerly when unblocked; the resubmit timer covers losses and
  // coordinator changes (and drains anything queued while paused).
  if (state_ == State::kNormal && !paused_) {
    if (view_.id.coord == self_) {
      handle_submit(self_, m);
    } else {
      wire::encode_into(m, scratch_);
      send_to(view_.id.coord, scratch_.buffer());
    }
  }
}

void Daemon::flush_pending_submits() {
  if (halted_ || state_ != State::kNormal || pending_.empty()) return;
  // Snapshot first: synchronous self-delivery (when we are the coordinator)
  // erases entries from pending_ while this runs.
  std::vector<wire::Submit> snapshot;
  snapshot.reserve(pending_.size());
  for (const auto& [seq, p] : pending_) {
    snapshot.push_back(
        wire::Submit{view_.id, seq, p.kind, p.group, p.origin, p.payload});
  }
  for (wire::Submit& m : snapshot) {
    if (view_.id.coord == self_) {
      handle_submit(self_, m);
    } else {
      wire::encode_into(m, scratch_);
      send_to(view_.id.coord, scratch_.buffer());
    }
  }
}

void Daemon::handle_submit(net::NodeId from, const wire::Submit& m) {
  if (state_ != State::kNormal || m.view != view_.id ||
      view_.id.coord != self_) {
    return;  // not the coordinator for this message; sender will retry
  }
  if (!view_.contains(from)) return;
  auto exp_it = next_submit_expected_.find(from);
  if (exp_it == next_submit_expected_.end()) return;
  if (m.sender_seq < exp_it->second) return;  // duplicate
  submit_buffer_[from].emplace(m.sender_seq, m);
  try_order_buffered(from);
}

void Daemon::try_order_buffered(net::NodeId sender) {
  // order_message() can re-enter this function via application callbacks
  // (deliver -> on_message -> send -> submit). Remove each entry and advance
  // the cursor *before* ordering, and re-find on every iteration, so nested
  // calls and this loop never touch a stale iterator.
  while (true) {
    auto& buf = submit_buffer_[sender];
    const std::uint64_t exp = next_submit_expected_[sender];
    auto it = buf.find(exp);
    if (it == buf.end()) break;
    const wire::Submit m = std::move(it->second);
    buf.erase(it);
    next_submit_expected_[sender] = exp + 1;
    order_message(m, sender);
  }
}

void Daemon::order_message(const wire::Submit& m, net::NodeId sender) {
  wire::Ordered o;
  o.view = view_.id;
  o.gseq = next_order_gseq_++;
  o.sender = sender;
  o.sender_seq = m.sender_seq;
  o.kind = m.kind;
  o.group = m.group;
  o.origin = m.origin;
  o.payload = m.payload;
  ++stats_.messages_ordered;
  // Encode once, fan out from the scratch buffer; the network copies the
  // span into its own pooled storage per recipient, so no fresh buffers.
  wire::encode_into(o, scratch_);
  for (net::NodeId member : view_.members) {
    if (member != self_) send_to(member, scratch_.buffer());
  }
  handle_ordered(o);
}

void Daemon::handle_ordered(const wire::Ordered& m) {
  if (m.view != view_.id) return;
  if (m.gseq < next_deliver_gseq_) return;  // duplicate
  holdback_.emplace(m.gseq, m);
  deliver_ready();
}

void Daemon::deliver_ready() {
  // Application callbacks inside deliver_one() can send messages, which on
  // the coordinator recurses back into handle_ordered()/deliver_ready().
  // The guard makes the outermost call the only delivering loop; the
  // erase-then-deliver order keeps the holdback map safe to mutate from
  // nested arrivals.
  if (delivering_) return;
  delivering_ = true;
  while (true) {
    auto it = holdback_.find(next_deliver_gseq_);
    if (it == holdback_.end()) break;
    const wire::Ordered m = std::move(it->second);
    holdback_.erase(it);
    ++next_deliver_gseq_;
    deliver_one(m);
  }
  delivering_ = false;
  if (state_ == State::kBlocked && my_flush_target_) check_flush_progress();
}

void Daemon::deliver_one(const wire::Ordered& m) {
  retention_.emplace(m.gseq, m);
  ++stats_.messages_delivered;
  if (m.sender == self_) pending_.erase(m.sender_seq);

  switch (m.kind) {
    case wire::PayloadKind::kJoin: {
      const bool changed = group_table_[m.group].insert(m.origin).second;
      if (changed) emit_group_view(m.group);
      break;
    }
    case wire::PayloadKind::kLeave: {
      auto it = group_table_.find(m.group);
      if (it == group_table_.end()) break;
      const bool changed = it->second.erase(m.origin) > 0;
      if (it->second.empty()) group_table_.erase(it);
      if (changed) emit_group_view(m.group);
      break;
    }
    case wire::PayloadKind::kApp: {
      auto it = local_members_.find(m.group);
      if (it == local_members_.end()) break;
      // Copy: callbacks may join/leave reentrantly.
      const std::vector<GroupMember*> handles = it->second;
      for (GroupMember* h : handles) {
        if (h->callbacks_.on_message) {
          h->callbacks_.on_message(m.origin, m.payload);
        }
      }
      break;
    }
  }
}

void Daemon::emit_group_view(const std::string& group) {
  GroupView gv;
  gv.group = group;
  gv.daemon_view_counter = view_.id.counter;
  gv.change_seq = ++group_change_seq_[group];
  if (auto it = group_table_.find(group); it != group_table_.end()) {
    gv.members.assign(it->second.begin(), it->second.end());
  }
  auto it = local_members_.find(group);
  if (it == local_members_.end()) return;
  const std::vector<GroupMember*> handles = it->second;
  for (GroupMember* h : handles) {
    h->last_view_ = gv;
    if (h->callbacks_.on_view) h->callbacks_.on_view(gv);
  }
}

std::vector<wire::GroupReg> Daemon::local_regs_snapshot() const {
  std::vector<wire::GroupReg> regs;
  for (const auto& [group, handles] : local_members_) {
    for (const GroupMember* h : handles) {
      regs.push_back(wire::GroupReg{group, h->endpoint_});
    }
  }
  return regs;
}

// ------------------------------------------------------------ retransmission

void Daemon::maybe_nack() {
  if (halted_) return;
  const bool flushing = state_ == State::kBlocked && my_flush_target_;

  std::uint64_t want_upto = 0;
  if (!holdback_.empty()) {
    want_upto = holdback_.rbegin()->first;
  }
  if (flushing) {
    for (const auto& e : my_flush_target_->entries) {
      if (e.old_view == view_.id) want_upto = std::max(want_upto, e.target);
    }
  }
  if (want_upto < next_deliver_gseq_) return;  // nothing missing

  net::NodeId holder = view_.id.coord;
  if (flushing) {
    for (const auto& e : my_flush_target_->entries) {
      if (e.old_view == view_.id) holder = e.holder;
    }
  }
  if (holder == self_ || holder == net::kInvalidNode) return;
  wire::RetransReq req{view_.id, next_deliver_gseq_, want_upto};
  wire::encode_into(req, scratch_);
  send_to(holder, scratch_.buffer());
}

void Daemon::handle_retrans_req(net::NodeId from, const wire::RetransReq& m) {
  if (m.view != view_.id) return;
  std::size_t sent = 0;
  for (auto it = retention_.lower_bound(m.from_gseq);
       it != retention_.end() && it->first <= m.to_gseq &&
       sent < kMaxRetransBatch;
       ++it, ++sent) {
    wire::encode_into(it->second, scratch_);
    send_to(from, scratch_.buffer());
    ++stats_.retransmissions;
  }
}

void Daemon::trim_retention(std::uint64_t safe) {
  retention_.erase(retention_.begin(), retention_.upper_bound(safe));
}

std::uint64_t Daemon::first_pending_seq() const {
  return pending_.empty() ? submit_seq_counter_ : pending_.begin()->first;
}

}  // namespace ftvod::gcs
