// Wire messages exchanged between GCS daemons. Every datagram is one
// Envelope: the 8-byte integrity header (util/frame.hpp), a one-byte type
// tag, then the message body. Decoders verify length + CRC32C before
// reading a single field, so damaged datagrams behave exactly like loss.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gcs/types.hpp"
#include "util/codec.hpp"

namespace ftvod::gcs::wire {

enum class MsgType : std::uint8_t {
  kHeartbeat = 1,
  kSubmit = 2,
  kOrdered = 3,
  kRetransReq = 4,
  kPropose = 5,
  kProposeAck = 6,
  kFlushTarget = 7,
  kFlushDone = 8,
  kInstall = 9,
};

/// What an ordered message carries.
enum class PayloadKind : std::uint8_t { kApp = 0, kJoin = 1, kLeave = 2 };

/// Periodic liveness + state advertisement, sent to every configured peer.
struct Heartbeat {
  ViewId view;
  std::vector<net::NodeId> members;
  std::uint64_t delivered_upto = 0;  // contiguous gseq delivered in `view`
  std::uint64_t safe_upto = 0;       // coordinator's stability horizon
};

/// Sender -> coordinator: please order this message.
struct Submit {
  ViewId view;
  std::uint64_t sender_seq = 0;  // per-daemon monotonic, spans views
  PayloadKind kind = PayloadKind::kApp;
  std::string group;
  GcsEndpoint origin;
  util::Bytes payload;
};

/// Coordinator -> all view members: message with a global sequence number.
struct Ordered {
  ViewId view;
  std::uint64_t gseq = 0;
  net::NodeId sender = net::kInvalidNode;
  std::uint64_t sender_seq = 0;
  PayloadKind kind = PayloadKind::kApp;
  std::string group;
  GcsEndpoint origin;
  util::Bytes payload;
};

/// Ask `to` to re-send ordered messages [from_gseq, to_gseq] of `view`.
struct RetransReq {
  ViewId view;
  std::uint64_t from_gseq = 0;
  std::uint64_t to_gseq = 0;
};

/// Proposer -> candidate members: start a view change.
struct Propose {
  ViewId pv;  // id of the proposed view; pv.coord is the proposer
  std::vector<net::NodeId> members;
};

struct GroupReg {
  std::string group;
  GcsEndpoint member;
};

/// Candidate -> proposer: I accept pv; here is my flush state.
struct ProposeAck {
  ViewId pv;
  ViewId old_view;
  std::uint64_t delivered_upto = 0;
  std::uint64_t next_submit_seq = 0;  // lowest unordered submit I will resend
  std::vector<GroupReg> regs;         // my local group registrations
};

/// Proposer -> candidates: per previous-view flush target + a holder daemon
/// that has delivered up to the target and can serve retransmissions.
struct FlushTarget {
  ViewId pv;
  struct Entry {
    ViewId old_view;
    std::uint64_t target = 0;
    net::NodeId holder = net::kInvalidNode;
  };
  std::vector<Entry> entries;
};

/// Candidate -> proposer: I delivered everything up to my cluster's target.
struct FlushDone {
  ViewId pv;
  std::uint64_t delivered_upto = 0;
};

/// Proposer -> members: install the new view with this group table.
struct Install {
  ViewId pv;
  std::vector<net::NodeId> members;
  std::vector<GroupReg> group_table;
  /// Per-member starting submit sequence, so the new coordinator can resume
  /// per-sender FIFO ordering without duplicates.
  std::vector<std::pair<net::NodeId, std::uint64_t>> submit_seqs;
};

/// encode_into() clears `w` and encodes into it, reusing the writer's
/// capacity — the allocation-free path for the daemon's per-peer fan-out
/// (heartbeats every interval, Ordered to every view member). encode() is
/// the convenience wrapper returning a fresh buffer.
void encode_into(const Heartbeat& m, util::Writer& w);
void encode_into(const Submit& m, util::Writer& w);
void encode_into(const Ordered& m, util::Writer& w);
void encode_into(const RetransReq& m, util::Writer& w);
void encode_into(const Propose& m, util::Writer& w);
void encode_into(const ProposeAck& m, util::Writer& w);
void encode_into(const FlushTarget& m, util::Writer& w);
void encode_into(const FlushDone& m, util::Writer& w);
void encode_into(const Install& m, util::Writer& w);

util::Bytes encode(const Heartbeat& m);
util::Bytes encode(const Submit& m);
util::Bytes encode(const Ordered& m);
util::Bytes encode(const RetransReq& m);
util::Bytes encode(const Propose& m);
util::Bytes encode(const ProposeAck& m);
util::Bytes encode(const FlushTarget& m);
util::Bytes encode(const FlushDone& m);
util::Bytes encode(const Install& m);

/// Peeks the type tag; nullopt for an empty/garbage datagram.
std::optional<MsgType> peek_type(std::span<const std::byte> data);

// Decoders return nullopt on any malformed input.
std::optional<Heartbeat> decode_heartbeat(std::span<const std::byte> data);
std::optional<Submit> decode_submit(std::span<const std::byte> data);
std::optional<Ordered> decode_ordered(std::span<const std::byte> data);
std::optional<RetransReq> decode_retrans_req(std::span<const std::byte> data);
std::optional<Propose> decode_propose(std::span<const std::byte> data);
std::optional<ProposeAck> decode_propose_ack(std::span<const std::byte> data);
std::optional<FlushTarget> decode_flush_target(std::span<const std::byte> data);
std::optional<FlushDone> decode_flush_done(std::span<const std::byte> data);
std::optional<Install> decode_install(std::span<const std::byte> data);

}  // namespace ftvod::gcs::wire
