// Application-facing handle for membership in one lightweight group.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "gcs/types.hpp"
#include "util/codec.hpp"

namespace ftvod::gcs {

class Daemon;

struct GroupCallbacks {
  /// A totally-ordered multicast delivered to this group. `from` may be a
  /// non-member (the GCS supports sends into a group by outsiders, which
  /// the VoD client uses to contact the anonymous server group).
  std::function<void(const GcsEndpoint& from, std::span<const std::byte>)>
      on_message;
  /// A new membership for this group (join/leave or daemon view change).
  std::function<void(const GroupView&)> on_view;
};

/// RAII membership: destroying (or leave()-ing) the handle leaves the group.
class GroupMember {
 public:
  ~GroupMember();
  GroupMember(const GroupMember&) = delete;
  GroupMember& operator=(const GroupMember&) = delete;

  /// Multicasts to the group in agreed (total) order, self-delivery included.
  void send(util::Bytes payload);
  /// Leaves the group; the handle becomes inert.
  void leave();

  [[nodiscard]] GcsEndpoint endpoint() const { return endpoint_; }
  [[nodiscard]] const std::string& group() const { return group_; }
  /// Last delivered view of this group (empty before the join is ordered).
  [[nodiscard]] const GroupView& view() const { return last_view_; }
  [[nodiscard]] bool active() const { return daemon_ != nullptr; }

 private:
  friend class Daemon;
  GroupMember(Daemon& daemon, std::string group, GcsEndpoint endpoint,
              GroupCallbacks callbacks)
      : daemon_(&daemon),
        group_(std::move(group)),
        endpoint_(endpoint),
        callbacks_(std::move(callbacks)) {}

  Daemon* daemon_;
  std::string group_;
  GcsEndpoint endpoint_;
  GroupCallbacks callbacks_;
  GroupView last_view_;
};

}  // namespace ftvod::gcs
