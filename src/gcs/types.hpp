// Core identifiers and view types of the group communication system (GCS).
//
// The GCS follows the architecture the paper relies on in Transis (and that
// Spread later popularized): one *daemon* per host maintains a heavyweight
// daemon-level membership; application processes join lightweight named
// groups through their local daemon. Group membership changes and group
// multicasts are totally ordered, and view changes are virtually
// synchronous: all daemons that survive into the next view deliver the same
// set of messages before installing it.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace ftvod::gcs {

/// A process endpoint: the daemon's node plus a daemon-local handle id.
struct GcsEndpoint {
  net::NodeId node = net::kInvalidNode;
  std::uint32_t local = 0;

  auto operator<=>(const GcsEndpoint&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const GcsEndpoint& e) {
  return os << "n" << e.node << "/" << e.local;
}

/// Identifies a daemon-level view. Totally ordered (counter, then coord).
struct ViewId {
  std::uint64_t counter = 0;
  net::NodeId coord = net::kInvalidNode;

  auto operator<=>(const ViewId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const ViewId& v) {
  return os << "v" << v.counter << "@" << v.coord;
}

struct DaemonView {
  ViewId id;
  std::vector<net::NodeId> members;  // sorted ascending

  [[nodiscard]] bool contains(net::NodeId n) const {
    return std::binary_search(members.begin(), members.end(), n);
  }
};

/// Membership of one lightweight group as delivered to applications.
struct GroupView {
  std::string group;
  std::uint64_t daemon_view_counter = 0;
  std::uint32_t change_seq = 0;  // monotonic per group per daemon view
  std::vector<GcsEndpoint> members;  // sorted ascending

  [[nodiscard]] bool contains(const GcsEndpoint& e) const {
    return std::binary_search(members.begin(), members.end(), e);
  }
};

struct GcsConfig {
  /// All hosts that may ever run a daemon (the Spread-style segment file).
  std::vector<net::NodeId> peers;
  net::Port port = 700;

  sim::Duration heartbeat_interval = sim::msec(75);
  sim::Duration suspect_timeout = sim::msec(400);
  sim::Duration fd_check_interval = sim::msec(50);
  sim::Duration resubmit_interval = sim::msec(100);
  sim::Duration nack_delay = sim::msec(30);
  sim::Duration propose_retry = sim::msec(200);
  sim::Duration merge_backoff = sim::msec(300);
  sim::Duration blocked_rescue = sim::msec(1500);
};

}  // namespace ftvod::gcs
