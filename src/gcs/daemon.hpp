// The GCS daemon: one per host. See types.hpp for the architecture summary.
//
// Guarantees provided to applications (within one network component):
//  * Agreed (total-order) multicast with self-delivery, FIFO per sender.
//  * View synchrony: daemons that move together from view V to view V'
//    deliver the same set of messages in V before installing V'.
//  * Consistent lightweight-group membership: join/leave events are ordered
//    with regular messages, so every member sees the same message/view
//    sequence per group.
//
// The protocol is coordinator-based (the proposer of the current view orders
// all messages). Coordinator failure is handled by the next surviving member
// proposing a new view after a flush round that equalizes delivery among
// survivors. Partitions yield disjoint views; merges are proposed by the
// lowest daemon id across both sides when heartbeats cross again.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gcs/group.hpp"
#include "gcs/types.hpp"
#include "gcs/wire.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"

namespace ftvod::gcs {

struct DaemonStats {
  std::uint64_t messages_ordered = 0;    // as coordinator
  std::uint64_t messages_delivered = 0;  // to local or remote bookkeeping
  std::uint64_t retransmissions = 0;
  std::uint64_t view_changes = 0;
  /// Datagrams rejected before acting on them: integrity-check failures
  /// (also counted in SocketStats::corrupt_dropped) plus structurally or
  /// semantically invalid messages the decoders refused.
  std::uint64_t malformed_dropped = 0;
};

class Daemon {
 public:
  Daemon(sim::Scheduler& sched, net::Network& net, net::NodeId self,
         GcsConfig cfg);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Joins a lightweight group. The returned handle must not outlive the
  /// daemon. Membership becomes visible when the join is ordered; the first
  /// on_view delivered to the handle includes the caller.
  [[nodiscard]] std::unique_ptr<GroupMember> join(std::string group,
                                                  GroupCallbacks callbacks);

  /// Multicasts into a group without being a member (no self-delivery).
  void send_to_group(const std::string& group, util::Bytes payload);

  [[nodiscard]] net::NodeId self() const { return self_; }
  [[nodiscard]] const DaemonView& view() const { return view_; }
  [[nodiscard]] const GcsConfig& config() const { return cfg_; }
  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] const net::SocketStats& socket_stats() const {
    return socket_->stats();
  }
  [[nodiscard]] bool blocked() const { return state_ == State::kBlocked; }
  /// Current membership of a group as known to this daemon.
  [[nodiscard]] std::vector<GcsEndpoint> group_members(
      const std::string& group) const;

  /// Stops all activity (used on host crash; registered automatically).
  void halt();
  [[nodiscard]] bool halted() const { return halted_; }

  /// Freezes the daemon as if the process were SIGSTOPped: timers stop and
  /// arriving datagrams are dropped, but all state is kept. Peers will
  /// suspect it and exclude it from their views. resume() restarts the
  /// timers; the stale failure-detector timestamps then make the daemon
  /// install a fresh (typically singleton) view, after which the normal
  /// merge path re-admits it — exactly the partition-heal flow.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

 private:
  friend class GroupMember;

  enum class State { kNormal, kBlocked };

  struct PendingSubmit {
    std::uint64_t seq;
    wire::PayloadKind kind;
    std::string group;
    GcsEndpoint origin;
    util::Bytes payload;
  };

  struct Proposal {
    ViewId pv;
    std::vector<net::NodeId> members;        // proposed membership
    std::map<net::NodeId, wire::ProposeAck> acks;
    bool flush_phase = false;
    std::map<net::NodeId, std::uint64_t> flush_done;  // node -> delivered
    wire::FlushTarget targets;
    int round = 0;
  };

  // ---- socket / dispatch ----
  void on_datagram(const net::Endpoint& from, std::span<const std::byte> data);
  void send_to(net::NodeId node, std::span<const std::byte> bytes);

  // ---- sending / ordering ----
  void submit(wire::PayloadKind kind, const std::string& group,
              GcsEndpoint origin, util::Bytes payload);
  void flush_pending_submits();
  void handle_submit(net::NodeId from, const wire::Submit& m);
  void try_order_buffered(net::NodeId sender);
  void order_message(const wire::Submit& m, net::NodeId sender);
  void handle_ordered(const wire::Ordered& m);
  void deliver_ready();
  void deliver_one(const wire::Ordered& m);
  void handle_retrans_req(net::NodeId from, const wire::RetransReq& m);
  void maybe_nack();

  // ---- group plumbing ----
  void member_send(GroupMember& member, util::Bytes payload);
  void member_leave(GroupMember& member);
  void emit_group_view(const std::string& group);
  std::vector<wire::GroupReg> local_regs_snapshot() const;

  // ---- failure detection / membership ----
  void on_heartbeat_timer();
  void on_fd_check();
  void handle_heartbeat(net::NodeId from, const wire::Heartbeat& m);
  void consider_view_change();
  void start_proposal(std::vector<net::NodeId> members);
  void handle_propose(net::NodeId from, const wire::Propose& m);
  void handle_propose_ack(net::NodeId from, const wire::ProposeAck& m);
  void maybe_enter_flush_phase();
  void handle_flush_target(net::NodeId from, const wire::FlushTarget& m);
  void check_flush_progress();
  void handle_flush_done(net::NodeId from, const wire::FlushDone& m);
  void maybe_install();
  void build_and_send_install();
  void schedule_install_resend();
  void handle_install(net::NodeId from, const wire::Install& m);
  void apply_install(const wire::Install& m);
  void on_propose_retry();
  void on_blocked_rescue();
  void abandon_unresponsive_and_retry();

  [[nodiscard]] std::uint64_t first_pending_seq() const;
  void trim_retention(std::uint64_t safe);

  // ---- state ----
  sim::Scheduler* sched_;
  net::Network* net_;
  net::NodeId self_;
  GcsConfig cfg_;
  std::unique_ptr<net::Socket> socket_;
  /// Reused encode buffer for per-peer fan-out (heartbeats, Ordered,
  /// submits, retransmissions). All reads of it finish before any call that
  /// could re-enter the daemon, so one scratch writer suffices.
  util::Writer scratch_;
  bool halted_ = false;
  bool paused_ = false;
  DaemonStats stats_;

  State state_ = State::kNormal;
  DaemonView view_;
  std::uint64_t max_counter_seen_ = 0;

  // Ordering, as a member of view_.
  bool delivering_ = false;
  std::uint64_t next_deliver_gseq_ = 1;
  std::map<std::uint64_t, wire::Ordered> holdback_;
  std::map<std::uint64_t, wire::Ordered> retention_;
  std::uint64_t safe_upto_ = 0;

  // Ordering, as coordinator of view_.
  std::uint64_t next_order_gseq_ = 1;
  std::map<net::NodeId, std::uint64_t> next_submit_expected_;
  std::map<net::NodeId, std::map<std::uint64_t, wire::Submit>> submit_buffer_;
  std::map<net::NodeId, std::uint64_t> member_delivered_;  // from heartbeats

  // Own submissions awaiting ordering.
  std::uint64_t submit_seq_counter_ = 1;
  std::map<std::uint64_t, PendingSubmit> pending_;

  // Membership protocol.
  std::optional<Proposal> proposal_;
  ViewId accepted_pv_;
  net::NodeId accepted_pv_from_ = net::kInvalidNode;
  std::optional<wire::FlushTarget> my_flush_target_;
  std::vector<net::NodeId> last_proposed_members_;
  std::optional<wire::Install> pending_install_;
  int install_resends_left_ = 0;
  sim::Time blocked_since_ = 0;
  sim::Time last_proposal_time_ = -1'000'000'000;

  // Failure detection & discovery.
  std::map<net::NodeId, sim::Time> last_heard_;
  std::set<net::NodeId> suspects_;
  std::map<net::NodeId, wire::Heartbeat> foreign_;  // non-members' heartbeats

  // Lightweight groups.
  std::map<std::string, std::set<GcsEndpoint>> group_table_;
  std::map<std::string, std::uint32_t> group_change_seq_;
  std::map<std::string, std::vector<GroupMember*>> local_members_;
  std::uint32_t next_local_id_ = 1;

  // Timers.
  sim::PeriodicTimer heartbeat_timer_;
  sim::PeriodicTimer fd_timer_;
  sim::PeriodicTimer resubmit_timer_;
  sim::PeriodicTimer nack_timer_;
  sim::OneShotTimer propose_retry_timer_;
  sim::OneShotTimer rescue_timer_;
};

}  // namespace ftvod::gcs
