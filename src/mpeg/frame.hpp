// MPEG frame model. Only what the VoD protocol observes: frame index, type
// (I frames are full images and must be protected; P/B are incremental) and
// wire size. See DESIGN.md §2 for why this substitutes for real MPEG assets.
#pragma once

#include <cstdint>
#include <ostream>

namespace ftvod::mpeg {

enum class FrameType : std::uint8_t { kI = 0, kP = 1, kB = 2 };

inline const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kI:
      return "I";
    case FrameType::kP:
      return "P";
    case FrameType::kB:
      return "B";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, FrameType t) {
  return os << to_string(t);
}

struct FrameInfo {
  std::uint64_t index = 0;  // position in display order
  FrameType type = FrameType::kI;
  std::uint32_t size_bytes = 0;
};

}  // namespace ftvod::mpeg
