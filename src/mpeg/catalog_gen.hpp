// City-scale catalog generation: hundreds of synthetic titles whose
// popularity follows a Zipf law. VoD demand is famously Zipf-like — a few
// blockbusters draw most sessions, a long tail draws the rest — and the
// replica-placement literature (Markov-chain replication, prefix caching)
// is parameterized on exactly this exponent, so the generator makes it a
// first-class, testable knob.
//
// Everything is deterministic in (seed, spec): title order, durations and
// the popularity weights are reproducible bit-for-bit, which the workload
// statistical tests and the macro benchmark rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpeg/movie.hpp"

namespace ftvod::mpeg {

struct CatalogSpec {
  std::size_t titles = 200;
  /// Zipf exponent s: weight(rank k) ∝ 1 / k^s. Measured VoD catalogs sit
  /// around 0.7–1.0; 0.8 is the usual literature default.
  double zipf_exponent = 0.8;
  /// Title durations are drawn uniformly from [min, max] seconds. Short
  /// defaults keep a 10k-client simulation affordable while still forcing
  /// plenty of session turnover.
  double min_duration_s = 5 * 60.0;
  double max_duration_s = 15 * 60.0;
  double fps = 30.0;
  double bitrate_bps = 1.4e6;
};

/// One generated title: the movie plus its popularity weight (normalized so
/// the whole catalog sums to 1).
struct CatalogEntry {
  std::shared_ptr<const Movie> movie;
  double popularity = 0.0;
};

class GeneratedCatalog {
 public:
  /// Builds the catalog deterministically from (seed, spec). Rank 0 is the
  /// most popular title.
  static GeneratedCatalog generate(std::uint64_t seed, const CatalogSpec& spec);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<CatalogEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const CatalogEntry& entry(std::size_t rank) const {
    return entries_[rank];
  }
  [[nodiscard]] const CatalogSpec& spec() const { return spec_; }

  /// Samples a title rank from the popularity distribution using one
  /// uniform draw in [0,1) (inverse-CDF walk over the cumulative weights).
  [[nodiscard]] std::size_t sample_rank(double u) const;

 private:
  CatalogSpec spec_;
  std::vector<CatalogEntry> entries_;
  std::vector<double> cumulative_;  // cumulative_[k] = sum of weights 0..k
};

}  // namespace ftvod::mpeg
