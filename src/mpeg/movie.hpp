// Synthetic MPEG movie: a deterministic frame sequence with the classic
// IBBPBBPBBPBB GOP, frame sizes calibrated so the stream averages the
// requested bitrate (the paper's prototype used ~1.4 Mbps, 30 fps).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mpeg/frame.hpp"
#include "sim/time.hpp"

namespace ftvod::mpeg {

class Movie {
 public:
  /// Builds a movie of `duration_s` seconds at `fps` and `bitrate_bps`.
  /// Frame sizes vary deterministically (seeded by the name) around the
  /// I/P/B weight ratio 8:3:1.
  static std::shared_ptr<const Movie> synthetic(std::string name,
                                                double duration_s,
                                                double fps = 30.0,
                                                double bitrate_bps = 1.4e6);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double fps() const { return fps_; }
  [[nodiscard]] double bitrate_bps() const { return bitrate_bps_; }
  [[nodiscard]] std::uint64_t frame_count() const { return frame_count_; }
  [[nodiscard]] std::size_t gop_length() const { return kGopLength; }
  [[nodiscard]] double duration_s() const {
    return static_cast<double>(frame_count_) / fps_;
  }
  /// Display period of one frame.
  [[nodiscard]] sim::Duration frame_period() const {
    return static_cast<sim::Duration>(1e6 / fps_);
  }
  [[nodiscard]] std::uint32_t avg_frame_bytes() const {
    return static_cast<std::uint32_t>(bitrate_bps_ / 8.0 / fps_);
  }

  /// Frame metadata; index must be < frame_count().
  [[nodiscard]] FrameInfo frame(std::uint64_t index) const;
  [[nodiscard]] FrameType frame_type(std::uint64_t index) const;

  static constexpr std::size_t kGopLength = 12;  // IBBPBBPBBPBB

 private:
  Movie(std::string name, double fps, double bitrate_bps,
        std::uint64_t frame_count, std::uint64_t seed);

  std::string name_;
  double fps_;
  double bitrate_bps_;
  std::uint64_t frame_count_;
  std::uint64_t seed_;
  std::uint32_t unit_bytes_;  // size unit; I=8u, P=3u, B=1u
};

}  // namespace ftvod::mpeg
