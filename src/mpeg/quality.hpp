// Quality adaptation (paper §4.3): when a client cannot process the full
// frame rate, the server transmits all I frames plus a subset of the
// incremental frames matching the client's capability.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg/movie.hpp"

namespace ftvod::mpeg {

/// Decides which frames to transmit for a reduced target frame rate.
/// Deterministic per frame index, so a migrated server makes the same
/// choices as its predecessor. Selection priority within a GOP: the I frame
/// always, then P frames (other frames depend on them), then B frames.
class QualityFilter {
 public:
  QualityFilter(const Movie& movie, double target_fps) {
    const std::size_t gop = movie.gop_length();
    std::size_t keep = gop;
    if (target_fps < movie.fps()) {
      const double frac = target_fps / movie.fps();
      keep = static_cast<std::size_t>(frac * static_cast<double>(gop) + 0.5);
      if (keep == 0) keep = 1;  // never drop below the I frame
    }
    keep_per_gop_ = keep;
    keep_mask_.assign(gop, false);
    // Positions ranked: I first, then P in display order, then B.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < gop; ++i) {
      if (movie.frame_type(i) == FrameType::kI) order.push_back(i);
    }
    for (std::size_t i = 0; i < gop; ++i) {
      if (movie.frame_type(i) == FrameType::kP) order.push_back(i);
    }
    for (std::size_t i = 0; i < gop; ++i) {
      if (movie.frame_type(i) == FrameType::kB) order.push_back(i);
    }
    for (std::size_t r = 0; r < keep && r < order.size(); ++r) {
      keep_mask_[order[r]] = true;
    }
  }

  /// True when the frame should be transmitted.
  [[nodiscard]] bool should_send(std::uint64_t index) const {
    return keep_mask_[index % keep_mask_.size()];
  }

  [[nodiscard]] std::size_t keep_per_gop() const { return keep_per_gop_; }
  /// Effective transmitted rate given the movie's native fps.
  [[nodiscard]] double effective_fps(double native_fps) const {
    return native_fps * static_cast<double>(keep_per_gop_) /
           static_cast<double>(keep_mask_.size());
  }

 private:
  std::size_t keep_per_gop_ = 0;
  std::vector<bool> keep_mask_;
};

}  // namespace ftvod::mpeg
