#include "mpeg/movie.hpp"

#include <array>
#include <cassert>
#include <functional>

namespace ftvod::mpeg {

namespace {

// Display-order GOP pattern and per-type size weights (sum per GOP = 25).
constexpr std::array<FrameType, Movie::kGopLength> kGopPattern = {
    FrameType::kI, FrameType::kB, FrameType::kB, FrameType::kP,
    FrameType::kB, FrameType::kB, FrameType::kP, FrameType::kB,
    FrameType::kB, FrameType::kP, FrameType::kB, FrameType::kB};
constexpr std::uint32_t kGopWeightSum = 8 + 3 * 3 + 8 * 1;

constexpr std::uint32_t weight(FrameType t) {
  switch (t) {
    case FrameType::kI:
      return 8;
    case FrameType::kP:
      return 3;
    case FrameType::kB:
      return 1;
  }
  return 1;
}

/// SplitMix64: cheap stateless hash for deterministic per-frame variation.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::shared_ptr<const Movie> Movie::synthetic(std::string name,
                                              double duration_s, double fps,
                                              double bitrate_bps) {
  const auto frames = static_cast<std::uint64_t>(duration_s * fps);
  const std::uint64_t seed = std::hash<std::string>{}(name);
  return std::shared_ptr<const Movie>(
      new Movie(std::move(name), fps, bitrate_bps, frames, seed));
}

Movie::Movie(std::string name, double fps, double bitrate_bps,
             std::uint64_t frame_count, std::uint64_t seed)
    : name_(std::move(name)),
      fps_(fps),
      bitrate_bps_(bitrate_bps),
      frame_count_(frame_count),
      seed_(seed) {
  const double bytes_per_gop =
      bitrate_bps_ / 8.0 * static_cast<double>(kGopLength) / fps_;
  unit_bytes_ = static_cast<std::uint32_t>(bytes_per_gop / kGopWeightSum);
}

FrameType Movie::frame_type(std::uint64_t index) const {
  return kGopPattern[index % kGopLength];
}

FrameInfo Movie::frame(std::uint64_t index) const {
  assert(index < frame_count_);
  const FrameType type = frame_type(index);
  const std::uint32_t base = unit_bytes_ * weight(type);
  // Deterministic +/-10% content-dependent variation.
  const std::uint64_t h = mix(seed_ ^ index);
  const double factor = 0.9 + 0.2 * (static_cast<double>(h % 10'000) / 10'000);
  return FrameInfo{index, type,
                   static_cast<std::uint32_t>(static_cast<double>(base) *
                                              factor)};
}

}  // namespace ftvod::mpeg
