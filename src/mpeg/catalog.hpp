// Movie catalog: the set of titles a VoD server holds. The paper assumes a
// separate replication mechanism for the video material itself; here adding
// a movie to a server's catalog models that its bits are present locally.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpeg/movie.hpp"

namespace ftvod::mpeg {

class Catalog {
 public:
  void add(std::shared_ptr<const Movie> movie) {
    movies_[movie->name()] = std::move(movie);
  }
  void remove(const std::string& name) { movies_.erase(name); }

  [[nodiscard]] std::shared_ptr<const Movie> find(
      const std::string& name) const {
    auto it = movies_.find(name);
    return it == movies_.end() ? nullptr : it->second;
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    return movies_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> titles() const {
    std::vector<std::string> out;
    out.reserve(movies_.size());
    for (const auto& [name, movie] : movies_) out.push_back(name);
    return out;
  }
  [[nodiscard]] std::size_t size() const { return movies_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Movie>> movies_;
};

}  // namespace ftvod::mpeg
