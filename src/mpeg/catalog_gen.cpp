#include "mpeg/catalog_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ftvod::mpeg {

GeneratedCatalog GeneratedCatalog::generate(std::uint64_t seed,
                                            const CatalogSpec& spec) {
  GeneratedCatalog cat;
  cat.spec_ = spec;
  cat.entries_.reserve(spec.titles);
  cat.cumulative_.reserve(spec.titles);

  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  double total = 0.0;
  for (std::size_t k = 0; k < spec.titles; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), spec.zipf_exponent);
  }

  double running = 0.0;
  for (std::size_t k = 0; k < spec.titles; ++k) {
    const double weight =
        1.0 / std::pow(static_cast<double>(k + 1), spec.zipf_exponent) / total;
    const double duration =
        rng.uniform(spec.min_duration_s, spec.max_duration_s);
    CatalogEntry e;
    // The rank is part of the name so logs and invariant reports read
    // naturally ("m007 under-replicated" pinpoints the 8th most popular).
    std::string name = "m";
    for (std::size_t d = 100; d > 0; d /= 10) {
      name.push_back(static_cast<char>('0' + (k / d) % 10));
    }
    e.movie = Movie::synthetic(std::move(name), duration, spec.fps,
                               spec.bitrate_bps);
    e.popularity = weight;
    running += weight;
    cat.entries_.push_back(std::move(e));
    cat.cumulative_.push_back(running);
  }
  if (!cat.cumulative_.empty()) cat.cumulative_.back() = 1.0;
  return cat;
}

std::size_t GeneratedCatalog::sample_rank(double u) const {
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace ftvod::mpeg
