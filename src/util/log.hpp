// Minimal leveled logger with a pluggable simulation-time source, so log
// lines are stamped with virtual time instead of wall-clock time.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace ftvod::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Log {
 public:
  /// Global minimum level; messages below it are dropped cheaply.
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Supplies the timestamp (simulation microseconds) printed on each line.
  static void set_time_source(std::function<std::int64_t()> src);

  /// Redirects output (default: stderr). Used by tests to capture lines.
  static void set_sink(std::function<void(std::string_view)> sink);
  static void reset();

  static bool enabled(LogLevel level) { return level >= Log::level(); }
  static void write(LogLevel level, std::string_view component,
                    std::string_view message);

  template <typename... Args>
  static void log(LogLevel level, std::string_view component,
                  const Args&... args) {
    if (!enabled(level)) return;
    std::ostringstream oss;
    (oss << ... << args);
    write(level, component, oss.str());
  }
};

template <typename... Args>
void log_trace(std::string_view component, const Args&... args) {
  Log::log(LogLevel::kTrace, component, args...);
}
template <typename... Args>
void log_debug(std::string_view component, const Args&... args) {
  Log::log(LogLevel::kDebug, component, args...);
}
template <typename... Args>
void log_info(std::string_view component, const Args&... args) {
  Log::log(LogLevel::kInfo, component, args...);
}
template <typename... Args>
void log_warn(std::string_view component, const Args&... args) {
  Log::log(LogLevel::kWarn, component, args...);
}
template <typename... Args>
void log_error(std::string_view component, const Args&... args) {
  Log::log(LogLevel::kError, component, args...);
}

}  // namespace ftvod::util
