#include "util/codec.hpp"

#include <bit>
#include <cstring>

namespace ftvod::util {

namespace {

template <typename T>
void put_le(Bytes& buf, T v) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T get_le(const std::byte* p) {
  static_assert(std::is_unsigned_v<T>);
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void Writer::u8(std::uint8_t v) { put_le(buf_, v); }
void Writer::u16(std::uint16_t v) { put_le(buf_, v); }
void Writer::u32(std::uint32_t v) { put_le(buf_, v); }
void Writer::u64(std::uint64_t v) { put_le(buf_, v); }
void Writer::i32(std::int32_t v) { put_le(buf_, static_cast<std::uint32_t>(v)); }
void Writer::i64(std::int64_t v) { put_le(buf_, static_cast<std::uint64_t>(v)); }
void Writer::f64(double v) { put_le(buf_, std::bit_cast<std::uint64_t>(v)); }
void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size());
}

void Writer::blob(std::span<const std::byte> v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void Writer::raw(std::span<const std::byte> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::patch_u32(std::size_t pos, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    buf_.at(pos + i) = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

const std::byte* Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const std::byte* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() {
  const auto* p = need(1);
  return p ? get_le<std::uint8_t>(p) : 0;
}

std::uint16_t Reader::u16() {
  const auto* p = need(2);
  return p ? get_le<std::uint16_t>(p) : 0;
}

std::uint32_t Reader::u32() {
  const auto* p = need(4);
  return p ? get_le<std::uint32_t>(p) : 0;
}

std::uint64_t Reader::u64() {
  const auto* p = need(8);
  return p ? get_le<std::uint64_t>(p) : 0;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }
double Reader::f64() { return std::bit_cast<double>(u64()); }
bool Reader::boolean() { return u8() != 0; }

std::string Reader::str() {
  const std::uint32_t n = u32();
  const auto* p = need(n);
  if (p == nullptr) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

Bytes Reader::blob() {
  const std::uint32_t n = u32();
  const auto* p = need(n);
  if (p == nullptr) return {};
  return Bytes(p, p + n);
}

}  // namespace ftvod::util
