// Datagram integrity framing. Every protocol message in the library is
// wrapped in an 8-byte header written at encode time:
//
//     u32 body_length | u32 crc32c(body) | body...
//
// The header turns "arbitrary bytes on the wire" into "either the exact
// bytes that were sent, or a drop": receivers verify length and checksum
// before any decoder touches the payload, so a corrupted, truncated or
// spliced datagram is indistinguishable from a lost one — and loss is the
// failure the retransmission and emergency machinery already recovers from.
// DESIGN.md §"Hostile-network model" documents the covered fields.
#pragma once

#include <optional>

#include "util/codec.hpp"

namespace ftvod::util {

/// Wire overhead of the integrity header, in bytes.
inline constexpr std::size_t kIntegrityHeaderBytes = 8;

/// Clears `w` and reserves the header; pair with frame_seal() after the
/// body is encoded. Every wire encode_into() starts with this.
void frame_begin(Writer& w);

/// Patches the length and CRC32C over everything written since
/// frame_begin(). Must be the last step of an encode_into().
void frame_seal(Writer& w);

/// Structural check only (size and length field, no checksum): returns the
/// body span, or nullopt. Cheap enough for per-datagram type demux.
[[nodiscard]] std::optional<std::span<const std::byte>> frame_peek(
    std::span<const std::byte> datagram);

/// Full verification (length + CRC32C): returns the body span, or nullopt
/// for anything damaged. Decoders call this before reading a single field.
[[nodiscard]] std::optional<std::span<const std::byte>> frame_open(
    std::span<const std::byte> datagram);

}  // namespace ftvod::util
