#include "util/frame.hpp"

#include "util/crc32c.hpp"

namespace ftvod::util {

namespace {

std::uint32_t read_u32_le(const std::byte* p) {
  return static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[0])) |
         static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[1])) << 8 |
         static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[2])) << 16 |
         static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[3])) << 24;
}

}  // namespace

void frame_begin(Writer& w) {
  w.clear();
  w.u32(0);  // body length, patched by frame_seal
  w.u32(0);  // crc32c(body), patched by frame_seal
}

void frame_seal(Writer& w) {
  const std::span<const std::byte> body{
      w.buffer().data() + kIntegrityHeaderBytes,
      w.size() - kIntegrityHeaderBytes};
  w.patch_u32(0, static_cast<std::uint32_t>(body.size()));
  w.patch_u32(4, crc32c(body));
}

std::optional<std::span<const std::byte>> frame_peek(
    std::span<const std::byte> datagram) {
  if (datagram.size() < kIntegrityHeaderBytes) return std::nullopt;
  const std::uint32_t len = read_u32_le(datagram.data());
  if (len != datagram.size() - kIntegrityHeaderBytes) return std::nullopt;
  return datagram.subspan(kIntegrityHeaderBytes);
}

std::optional<std::span<const std::byte>> frame_open(
    std::span<const std::byte> datagram) {
  const auto body = frame_peek(datagram);
  if (!body) return std::nullopt;
  const std::uint32_t want = read_u32_le(datagram.data() + 4);
  if (crc32c(*body) != want) return std::nullopt;
  return body;
}

}  // namespace ftvod::util
