// Software CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78),
// slice-by-4: four 256-entry tables let the hot loop fold one aligned
// 32-bit word per iteration instead of one byte. No hardware intrinsics and
// no external dependencies — the checksum must behave identically on every
// platform the simulation runs on, because chaotic runs are reproduced
// bit-for-bit from their seeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ftvod::util {

/// CRC32C of `data`. `seed` chains incremental computations: pass the
/// previous return value to continue a running checksum.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data,
                                   std::uint32_t seed = 0);

}  // namespace ftvod::util
