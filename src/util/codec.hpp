// Binary wire codec used by every protocol in the library.
//
// All multi-byte integers are little-endian. Strings and byte blobs are
// length-prefixed with a u32. The Reader is fail-safe: reading past the end
// sets a sticky error flag and yields zero values instead of invoking
// undefined behaviour, so corrupted packets can be rejected with ok().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ftvod::util {

using Bytes = std::vector<std::byte>;

/// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;
  /// Adopts an existing buffer's capacity (cleared first). Pairs with
  /// take() to recycle one allocation across many encodes.
  explicit Writer(Bytes buf) : buf_(std::move(buf)) { buf_.clear(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  /// Length-prefixed (u32) string.
  void str(std::string_view v);
  /// Length-prefixed (u32) blob.
  void blob(std::span<const std::byte> v);
  /// Raw bytes, no length prefix.
  void raw(std::span<const std::byte> v);
  /// Overwrites 4 already-written bytes at `pos` (little-endian). Used to
  /// patch length/checksum headers once the body size is known.
  void patch_u32(std::size_t pos, std::uint32_t v);

  /// Empties the buffer but keeps its capacity — the reuse idiom for
  /// per-message encoding on hot paths: clear(), encode_into(), send.
  void clear() { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] const Bytes& buffer() const { return buf_; }

 private:
  Bytes buf_;
};

/// Consumes primitive values from a byte span. Never throws; check ok().
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  Bytes blob();

  /// True while no read has overrun the buffer.
  [[nodiscard]] bool ok() const { return ok_; }
  /// Forces the sticky error flag; decoders use it to reject semantically
  /// invalid fields (absurd counts, non-finite rates) through the same
  /// fail-safe path as a structural overrun.
  void fail() { ok_ = false; }
  /// True when the whole buffer was consumed without error.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  /// Returns a pointer to n readable bytes or nullptr (setting the error flag).
  const std::byte* need(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ftvod::util
