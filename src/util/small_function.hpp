// Move-only callable wrapper with small-buffer-optimized storage.
//
// std::function heap-allocates any callable larger than its tiny internal
// buffer (16 bytes in libstdc++) and deep-copies it whenever the wrapper is
// copied — on the simulation hot path that is several mallocs per scheduled
// event. SmallFunction stores callables up to `Inline` bytes in place, is
// move-only (so a misplaced copy is a compile error, not a hidden
// allocation), and falls back to the heap only for oversized or
// throwing-move callables.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ftvod::util {

template <typename Signature, std::size_t Inline = 64>
class SmallFunction;

template <typename R, typename... Args, std::size_t Inline>
class SmallFunction<R(Args...), Inline> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stored_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vt_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapOps<D>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { take(std::move(other)); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(std::move(other));
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when a callable of type F lives in the inline buffer (exposed so
  /// tests can assert the hot-path lambdas never spill to the heap).
  template <typename F>
  static constexpr bool stored_inline =
      sizeof(F) <= Inline && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* src, void* dst);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s, Args&&... a) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(a)...);
      },
      [](void* src, void* dst) {
        D* p = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*p));
        p->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s, Args&&... a) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(a)...);
      },
      [](void* src, void* dst) {
        D** p = std::launder(reinterpret_cast<D**>(src));
        ::new (dst) D*(*p);
        *p = nullptr;
      },
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); }};

  void take(SmallFunction&& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(other.storage_, storage_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Inline];
  const Ops* vt_ = nullptr;
};

}  // namespace ftvod::util
