// Deterministic pseudo-random source. Every stochastic element of the
// simulation draws from one seeded Rng so that runs are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace ftvod::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw, mean/sd.
  double normal(double mean, double sd) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Exponential draw with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ftvod::util
