#include "util/crc32c.hpp"

#include <array>
#include <bit>

namespace ftvod::util {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    // t[k][i] advances the CRC of byte i through k additional zero bytes,
    // which is what lets slice-by-4 process all four bytes of a word from
    // independent table lookups.
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

constexpr Tables kTables{};

inline std::uint8_t byte_at(const std::byte* p) {
  return std::to_integer<std::uint8_t>(*p);
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = kTables.t;
  std::uint32_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();

  // Byte-at-a-time until the cursor is 4-byte aligned (unaligned 32-bit
  // loads are UB on some targets, and the sanitized fuzz tier runs with
  // UBSan's alignment checks on).
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 3u) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ byte_at(p)) & 0xFFu];
    ++p;
    --n;
  }

  // The word-folding trick interprets the CRC as the low bytes of the next
  // word, which only lines up on little-endian targets; elsewhere the byte
  // loop below handles everything.
  while (std::endian::native == std::endian::little && n >= 4) {
    std::uint32_t word;
    __builtin_memcpy(&word, p, 4);  // p is aligned; memcpy keeps it portable
    crc ^= word;                    // little-endian layout assumed repo-wide
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][(crc >> 24) & 0xFFu];
    p += 4;
    n -= 4;
  }

  while (n > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ byte_at(p)) & 0xFFu];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace ftvod::util
