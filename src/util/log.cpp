#include "util/log.hpp"

#include <cstdio>
#include <iomanip>

namespace ftvod::util {

namespace {

struct LogState {
  LogLevel level = LogLevel::kWarn;
  std::function<std::int64_t()> time_source;
  std::function<void(std::string_view)> sink;
};

LogState& state() {
  static LogState s;
  return s;
}

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { state().level = level; }
LogLevel Log::level() { return state().level; }

void Log::set_time_source(std::function<std::int64_t()> src) {
  state().time_source = std::move(src);
}

void Log::set_sink(std::function<void(std::string_view)> sink) {
  state().sink = std::move(sink);
}

void Log::reset() { state() = LogState{}; }

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  if (!enabled(level)) return;
  std::ostringstream line;
  if (state().time_source) {
    const std::int64_t us = state().time_source();
    line << '[' << std::fixed << std::setprecision(6)
         << static_cast<double>(us) / 1e6 << "s] ";
  }
  line << level_name(level) << ' ' << component << ": " << message;
  if (state().sink) {
    state().sink(line.str());
  } else {
    std::fprintf(stderr, "%s\n", line.str().c_str());
  }
}

}  // namespace ftvod::util
