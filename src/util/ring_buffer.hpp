// Fixed-capacity FIFO ring buffer used for packet queues and frame FIFOs.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace ftvod::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  /// Appends; returns false (and drops the value) when full.
  bool push(T value) {
    if (full()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Removes and returns the oldest element.
  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T v = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return v;
  }

  /// Oldest element; undefined when empty (assert in debug).
  const T& front() const {
    assert(!empty());
    return slots_[head_];
  }

  T& front() {
    assert(!empty());
    return slots_[head_];
  }

  /// i-th oldest element, 0-based; asserts i < size().
  const T& at(std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ftvod::util
