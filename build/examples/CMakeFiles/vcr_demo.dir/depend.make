# Empty dependencies file for vcr_demo.
# This may be replaced when dependencies are built.
