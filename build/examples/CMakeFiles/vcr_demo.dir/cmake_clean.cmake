file(REMOVE_RECURSE
  "CMakeFiles/vcr_demo.dir/vcr_demo.cpp.o"
  "CMakeFiles/vcr_demo.dir/vcr_demo.cpp.o.d"
  "vcr_demo"
  "vcr_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcr_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
