file(REMOVE_RECURSE
  "CMakeFiles/wan_demo.dir/wan_demo.cpp.o"
  "CMakeFiles/wan_demo.dir/wan_demo.cpp.o.d"
  "wan_demo"
  "wan_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
