# Empty compiler generated dependencies file for wan_demo.
# This may be replaced when dependencies are built.
