file(REMOVE_RECURSE
  "CMakeFiles/detach_test.dir/integration/detach_test.cpp.o"
  "CMakeFiles/detach_test.dir/integration/detach_test.cpp.o.d"
  "detach_test"
  "detach_test.pdb"
  "detach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
