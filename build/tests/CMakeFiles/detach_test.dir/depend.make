# Empty dependencies file for detach_test.
# This may be replaced when dependencies are built.
