
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/detach_test.cpp" "tests/CMakeFiles/detach_test.dir/integration/detach_test.cpp.o" "gcc" "tests/CMakeFiles/detach_test.dir/integration/detach_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ftvod_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftvod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftvod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/ftvod_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpeg/CMakeFiles/ftvod_mpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ftvod_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/vod/CMakeFiles/ftvod_vod.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
