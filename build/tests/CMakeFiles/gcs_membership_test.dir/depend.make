# Empty dependencies file for gcs_membership_test.
# This may be replaced when dependencies are built.
