file(REMOVE_RECURSE
  "CMakeFiles/gcs_membership_test.dir/gcs/membership_test.cpp.o"
  "CMakeFiles/gcs_membership_test.dir/gcs/membership_test.cpp.o.d"
  "gcs_membership_test"
  "gcs_membership_test.pdb"
  "gcs_membership_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
