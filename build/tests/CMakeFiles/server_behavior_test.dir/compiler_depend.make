# Empty compiler generated dependencies file for server_behavior_test.
# This may be replaced when dependencies are built.
