# Empty compiler generated dependencies file for redistribution_test.
# This may be replaced when dependencies are built.
