# Empty compiler generated dependencies file for gcs_recovery_test.
# This may be replaced when dependencies are built.
