file(REMOVE_RECURSE
  "CMakeFiles/gcs_recovery_test.dir/gcs/recovery_test.cpp.o"
  "CMakeFiles/gcs_recovery_test.dir/gcs/recovery_test.cpp.o.d"
  "gcs_recovery_test"
  "gcs_recovery_test.pdb"
  "gcs_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
