file(REMOVE_RECURSE
  "CMakeFiles/gcs_daemon_test.dir/gcs/daemon_test.cpp.o"
  "CMakeFiles/gcs_daemon_test.dir/gcs/daemon_test.cpp.o.d"
  "gcs_daemon_test"
  "gcs_daemon_test.pdb"
  "gcs_daemon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_daemon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
