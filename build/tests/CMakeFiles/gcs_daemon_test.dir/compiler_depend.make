# Empty compiler generated dependencies file for gcs_daemon_test.
# This may be replaced when dependencies are built.
