# Empty dependencies file for movie_test.
# This may be replaced when dependencies are built.
