file(REMOVE_RECURSE
  "CMakeFiles/movie_test.dir/mpeg/movie_test.cpp.o"
  "CMakeFiles/movie_test.dir/mpeg/movie_test.cpp.o.d"
  "movie_test"
  "movie_test.pdb"
  "movie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
