# Empty dependencies file for vcr_quality_test.
# This may be replaced when dependencies are built.
