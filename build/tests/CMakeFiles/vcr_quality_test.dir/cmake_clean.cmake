file(REMOVE_RECURSE
  "CMakeFiles/vcr_quality_test.dir/integration/vcr_quality_test.cpp.o"
  "CMakeFiles/vcr_quality_test.dir/integration/vcr_quality_test.cpp.o.d"
  "vcr_quality_test"
  "vcr_quality_test.pdb"
  "vcr_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcr_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
