file(REMOVE_RECURSE
  "CMakeFiles/emergency_test.dir/vod/emergency_test.cpp.o"
  "CMakeFiles/emergency_test.dir/vod/emergency_test.cpp.o.d"
  "emergency_test"
  "emergency_test.pdb"
  "emergency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
