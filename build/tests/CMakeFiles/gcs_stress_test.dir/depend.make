# Empty dependencies file for gcs_stress_test.
# This may be replaced when dependencies are built.
