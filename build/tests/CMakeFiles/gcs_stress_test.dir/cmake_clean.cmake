file(REMOVE_RECURSE
  "CMakeFiles/gcs_stress_test.dir/gcs/stress_test.cpp.o"
  "CMakeFiles/gcs_stress_test.dir/gcs/stress_test.cpp.o.d"
  "gcs_stress_test"
  "gcs_stress_test.pdb"
  "gcs_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
