# Empty compiler generated dependencies file for gcs_wire_test.
# This may be replaced when dependencies are built.
