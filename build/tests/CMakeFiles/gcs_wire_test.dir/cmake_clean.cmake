file(REMOVE_RECURSE
  "CMakeFiles/gcs_wire_test.dir/gcs/wire_test.cpp.o"
  "CMakeFiles/gcs_wire_test.dir/gcs/wire_test.cpp.o.d"
  "gcs_wire_test"
  "gcs_wire_test.pdb"
  "gcs_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
