file(REMOVE_RECURSE
  "CMakeFiles/downlink_test.dir/net/downlink_test.cpp.o"
  "CMakeFiles/downlink_test.dir/net/downlink_test.cpp.o.d"
  "downlink_test"
  "downlink_test.pdb"
  "downlink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downlink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
