file(REMOVE_RECURSE
  "CMakeFiles/vod_wire_test.dir/vod/vod_wire_test.cpp.o"
  "CMakeFiles/vod_wire_test.dir/vod/vod_wire_test.cpp.o.d"
  "vod_wire_test"
  "vod_wire_test.pdb"
  "vod_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
