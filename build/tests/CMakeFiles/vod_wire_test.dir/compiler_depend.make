# Empty compiler generated dependencies file for vod_wire_test.
# This may be replaced when dependencies are built.
