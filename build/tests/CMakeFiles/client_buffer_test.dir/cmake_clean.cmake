file(REMOVE_RECURSE
  "CMakeFiles/client_buffer_test.dir/vod/client_buffer_test.cpp.o"
  "CMakeFiles/client_buffer_test.dir/vod/client_buffer_test.cpp.o.d"
  "client_buffer_test"
  "client_buffer_test.pdb"
  "client_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
