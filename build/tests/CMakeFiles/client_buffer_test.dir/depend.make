# Empty dependencies file for client_buffer_test.
# This may be replaced when dependencies are built.
