file(REMOVE_RECURSE
  "CMakeFiles/ftvod_net.dir/network.cpp.o"
  "CMakeFiles/ftvod_net.dir/network.cpp.o.d"
  "libftvod_net.a"
  "libftvod_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
