# Empty compiler generated dependencies file for ftvod_net.
# This may be replaced when dependencies are built.
