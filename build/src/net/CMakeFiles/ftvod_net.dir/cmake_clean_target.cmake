file(REMOVE_RECURSE
  "libftvod_net.a"
)
