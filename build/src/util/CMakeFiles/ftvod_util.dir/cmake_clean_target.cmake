file(REMOVE_RECURSE
  "libftvod_util.a"
)
