file(REMOVE_RECURSE
  "CMakeFiles/ftvod_util.dir/codec.cpp.o"
  "CMakeFiles/ftvod_util.dir/codec.cpp.o.d"
  "CMakeFiles/ftvod_util.dir/log.cpp.o"
  "CMakeFiles/ftvod_util.dir/log.cpp.o.d"
  "libftvod_util.a"
  "libftvod_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
