# Empty compiler generated dependencies file for ftvod_util.
# This may be replaced when dependencies are built.
