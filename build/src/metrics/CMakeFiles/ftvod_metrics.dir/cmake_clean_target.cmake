file(REMOVE_RECURSE
  "libftvod_metrics.a"
)
