file(REMOVE_RECURSE
  "CMakeFiles/ftvod_metrics.dir/report.cpp.o"
  "CMakeFiles/ftvod_metrics.dir/report.cpp.o.d"
  "libftvod_metrics.a"
  "libftvod_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
