# Empty dependencies file for ftvod_metrics.
# This may be replaced when dependencies are built.
