file(REMOVE_RECURSE
  "libftvod_vod.a"
)
