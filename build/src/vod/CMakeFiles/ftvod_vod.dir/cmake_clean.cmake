file(REMOVE_RECURSE
  "CMakeFiles/ftvod_vod.dir/client.cpp.o"
  "CMakeFiles/ftvod_vod.dir/client.cpp.o.d"
  "CMakeFiles/ftvod_vod.dir/client_buffer.cpp.o"
  "CMakeFiles/ftvod_vod.dir/client_buffer.cpp.o.d"
  "CMakeFiles/ftvod_vod.dir/redistribution.cpp.o"
  "CMakeFiles/ftvod_vod.dir/redistribution.cpp.o.d"
  "CMakeFiles/ftvod_vod.dir/server.cpp.o"
  "CMakeFiles/ftvod_vod.dir/server.cpp.o.d"
  "CMakeFiles/ftvod_vod.dir/wire.cpp.o"
  "CMakeFiles/ftvod_vod.dir/wire.cpp.o.d"
  "libftvod_vod.a"
  "libftvod_vod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_vod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
