# Empty compiler generated dependencies file for ftvod_vod.
# This may be replaced when dependencies are built.
