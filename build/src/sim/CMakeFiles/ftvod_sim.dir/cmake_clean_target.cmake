file(REMOVE_RECURSE
  "libftvod_sim.a"
)
