# Empty compiler generated dependencies file for ftvod_sim.
# This may be replaced when dependencies are built.
