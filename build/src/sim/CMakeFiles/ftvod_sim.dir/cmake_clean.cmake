file(REMOVE_RECURSE
  "CMakeFiles/ftvod_sim.dir/scheduler.cpp.o"
  "CMakeFiles/ftvod_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/ftvod_sim.dir/timer.cpp.o"
  "CMakeFiles/ftvod_sim.dir/timer.cpp.o.d"
  "libftvod_sim.a"
  "libftvod_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
