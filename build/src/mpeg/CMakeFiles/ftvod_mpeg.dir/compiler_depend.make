# Empty compiler generated dependencies file for ftvod_mpeg.
# This may be replaced when dependencies are built.
