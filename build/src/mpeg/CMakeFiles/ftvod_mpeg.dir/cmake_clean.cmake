file(REMOVE_RECURSE
  "CMakeFiles/ftvod_mpeg.dir/movie.cpp.o"
  "CMakeFiles/ftvod_mpeg.dir/movie.cpp.o.d"
  "libftvod_mpeg.a"
  "libftvod_mpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_mpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
