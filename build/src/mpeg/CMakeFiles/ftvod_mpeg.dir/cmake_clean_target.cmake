file(REMOVE_RECURSE
  "libftvod_mpeg.a"
)
