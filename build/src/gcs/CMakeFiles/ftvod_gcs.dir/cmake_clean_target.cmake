file(REMOVE_RECURSE
  "libftvod_gcs.a"
)
