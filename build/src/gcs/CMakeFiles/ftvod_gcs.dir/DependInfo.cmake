
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcs/daemon.cpp" "src/gcs/CMakeFiles/ftvod_gcs.dir/daemon.cpp.o" "gcc" "src/gcs/CMakeFiles/ftvod_gcs.dir/daemon.cpp.o.d"
  "/root/repo/src/gcs/membership.cpp" "src/gcs/CMakeFiles/ftvod_gcs.dir/membership.cpp.o" "gcc" "src/gcs/CMakeFiles/ftvod_gcs.dir/membership.cpp.o.d"
  "/root/repo/src/gcs/wire.cpp" "src/gcs/CMakeFiles/ftvod_gcs.dir/wire.cpp.o" "gcc" "src/gcs/CMakeFiles/ftvod_gcs.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ftvod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftvod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftvod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
