file(REMOVE_RECURSE
  "CMakeFiles/ftvod_gcs.dir/daemon.cpp.o"
  "CMakeFiles/ftvod_gcs.dir/daemon.cpp.o.d"
  "CMakeFiles/ftvod_gcs.dir/membership.cpp.o"
  "CMakeFiles/ftvod_gcs.dir/membership.cpp.o.d"
  "CMakeFiles/ftvod_gcs.dir/wire.cpp.o"
  "CMakeFiles/ftvod_gcs.dir/wire.cpp.o.d"
  "libftvod_gcs.a"
  "libftvod_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftvod_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
