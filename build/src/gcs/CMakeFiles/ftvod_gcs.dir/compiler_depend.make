# Empty compiler generated dependencies file for ftvod_gcs.
# This may be replaced when dependencies are built.
