file(REMOVE_RECURSE
  "CMakeFiles/tab_emergency.dir/bench/tab_emergency.cpp.o"
  "CMakeFiles/tab_emergency.dir/bench/tab_emergency.cpp.o.d"
  "bench/tab_emergency"
  "bench/tab_emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
