# Empty dependencies file for tab_emergency.
# This may be replaced when dependencies are built.
