# Empty compiler generated dependencies file for fig5_wan.
# This may be replaced when dependencies are built.
