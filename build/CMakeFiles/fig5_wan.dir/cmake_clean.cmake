file(REMOVE_RECURSE
  "CMakeFiles/fig5_wan.dir/bench/fig5_wan.cpp.o"
  "CMakeFiles/fig5_wan.dir/bench/fig5_wan.cpp.o.d"
  "bench/fig5_wan"
  "bench/fig5_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
