file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_period.dir/bench/ablation_sync_period.cpp.o"
  "CMakeFiles/ablation_sync_period.dir/bench/ablation_sync_period.cpp.o.d"
  "bench/ablation_sync_period"
  "bench/ablation_sync_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
