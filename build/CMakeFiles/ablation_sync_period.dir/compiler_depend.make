# Empty compiler generated dependencies file for ablation_sync_period.
# This may be replaced when dependencies are built.
