file(REMOVE_RECURSE
  "CMakeFiles/ablation_congestion.dir/bench/ablation_congestion.cpp.o"
  "CMakeFiles/ablation_congestion.dir/bench/ablation_congestion.cpp.o.d"
  "bench/ablation_congestion"
  "bench/ablation_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
