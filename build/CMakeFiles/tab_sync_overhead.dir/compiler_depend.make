# Empty compiler generated dependencies file for tab_sync_overhead.
# This may be replaced when dependencies are built.
