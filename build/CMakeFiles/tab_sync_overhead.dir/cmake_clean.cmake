file(REMOVE_RECURSE
  "CMakeFiles/tab_sync_overhead.dir/bench/tab_sync_overhead.cpp.o"
  "CMakeFiles/tab_sync_overhead.dir/bench/tab_sync_overhead.cpp.o.d"
  "bench/tab_sync_overhead"
  "bench/tab_sync_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sync_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
