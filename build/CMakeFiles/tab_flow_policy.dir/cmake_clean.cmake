file(REMOVE_RECURSE
  "CMakeFiles/tab_flow_policy.dir/bench/tab_flow_policy.cpp.o"
  "CMakeFiles/tab_flow_policy.dir/bench/tab_flow_policy.cpp.o.d"
  "bench/tab_flow_policy"
  "bench/tab_flow_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_flow_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
