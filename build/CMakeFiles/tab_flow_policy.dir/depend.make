# Empty dependencies file for tab_flow_policy.
# This may be replaced when dependencies are built.
