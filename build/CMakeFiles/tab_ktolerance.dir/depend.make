# Empty dependencies file for tab_ktolerance.
# This may be replaced when dependencies are built.
