file(REMOVE_RECURSE
  "CMakeFiles/tab_ktolerance.dir/bench/tab_ktolerance.cpp.o"
  "CMakeFiles/tab_ktolerance.dir/bench/tab_ktolerance.cpp.o.d"
  "bench/tab_ktolerance"
  "bench/tab_ktolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ktolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
