# Empty dependencies file for tab_takeover.
# This may be replaced when dependencies are built.
