file(REMOVE_RECURSE
  "CMakeFiles/tab_takeover.dir/bench/tab_takeover.cpp.o"
  "CMakeFiles/tab_takeover.dir/bench/tab_takeover.cpp.o.d"
  "bench/tab_takeover"
  "bench/tab_takeover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_takeover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
