file(REMOVE_RECURSE
  "CMakeFiles/micro_gcs.dir/bench/micro_gcs.cpp.o"
  "CMakeFiles/micro_gcs.dir/bench/micro_gcs.cpp.o.d"
  "bench/micro_gcs"
  "bench/micro_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
