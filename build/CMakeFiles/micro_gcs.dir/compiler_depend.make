# Empty compiler generated dependencies file for micro_gcs.
# This may be replaced when dependencies are built.
