file(REMOVE_RECURSE
  "CMakeFiles/ablation_watermarks.dir/bench/ablation_watermarks.cpp.o"
  "CMakeFiles/ablation_watermarks.dir/bench/ablation_watermarks.cpp.o.d"
  "bench/ablation_watermarks"
  "bench/ablation_watermarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_watermarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
