# Empty compiler generated dependencies file for tab_quality.
# This may be replaced when dependencies are built.
