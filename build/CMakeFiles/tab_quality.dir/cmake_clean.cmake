file(REMOVE_RECURSE
  "CMakeFiles/tab_quality.dir/bench/tab_quality.cpp.o"
  "CMakeFiles/tab_quality.dir/bench/tab_quality.cpp.o.d"
  "bench/tab_quality"
  "bench/tab_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
